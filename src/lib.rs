pub use amos_db::*;
