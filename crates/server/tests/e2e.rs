//! End-to-end tests over real TCP: protocol framing, transaction
//! isolation between two live connections, conflict-retry, and session
//! cleanup on disconnect.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use amos_db::{Amos, SharedEngine};
use amos_server::{serve, ServerConfig, ServerHandle};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        };
        // Greeting: HELLO line then READY.
        let hello = c.read_line();
        assert!(hello.starts_with("HELLO amos-pdiff"), "{hello}");
        assert_eq!(c.read_line(), "READY");
        c
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    /// Send one script line; collect responses until READY.
    fn send(&mut self, script: &str) -> Vec<String> {
        writeln!(self.writer, "{script}").unwrap();
        let mut out = Vec::new();
        loop {
            let line = self.read_line();
            if line == "READY" {
                return out;
            }
            out.push(line);
        }
    }
}

fn boot() -> ServerHandle {
    let mut db = Amos::new();
    db.execute(
        r#"
        create type item;
        create function quantity(item i) -> integer;
        create item instances :a, :b;
        set quantity(:a) = 100;
        set quantity(:b) = 200;
    "#,
    )
    .unwrap();
    serve(
        "127.0.0.1:0",
        SharedEngine::new(db),
        ServerConfig::default(),
    )
    .unwrap()
}

#[test]
fn select_rows_and_ddl_ok() {
    let handle = boot();
    let mut c = Client::connect(&handle);

    let resp = c.send("select quantity(:a);");
    assert_eq!(resp, ["ROW 100", "END 1"]);

    let resp = c.send("select quantity(i) for each item i;");
    assert_eq!(resp, ["ROW 100", "ROW 200", "END 2"]);

    // An update outside a transaction autocommits (and runs the check
    // phase) immediately.
    let resp = c.send("set quantity(:a) = 50;");
    assert_eq!(resp, ["COMMITTED rules=0 failed=0"]);
    assert_eq!(c.send("select quantity(:a);"), ["ROW 50", "END 1"]);

    // Multiple statements on one line → one response group each.
    let resp = c.send("set quantity(:a) = 60; select quantity(:a);");
    assert_eq!(resp, ["COMMITTED rules=0 failed=0", "ROW 60", "END 1"]);

    // Errors are single ERR lines.
    let resp = c.send("select nonsense(:a);");
    assert_eq!(resp.len(), 1);
    assert!(resp[0].starts_with("ERR "), "{}", resp[0]);

    // Blank lines are just re-prompted.
    assert!(c.send("").is_empty());
}

#[test]
fn transactions_isolated_between_connections() {
    let handle = boot();
    let mut c1 = Client::connect(&handle);
    let mut c2 = Client::connect(&handle);

    assert_eq!(c1.send("begin;"), ["OK"]);
    assert_eq!(c1.send("set quantity(:a) = 1;"), ["OK"]);
    // c1's buffered write is invisible to c2.
    assert_eq!(c2.send("select quantity(:a);"), ["ROW 100", "END 1"]);
    // c1 sees its own write.
    assert_eq!(c1.send("select quantity(:a);"), ["ROW 1", "END 1"]);

    let resp = c1.send("commit;");
    assert_eq!(resp.len(), 1);
    assert!(resp[0].starts_with("COMMITTED "), "{}", resp[0]);
    assert_eq!(c2.send("select quantity(:a);"), ["ROW 1", "END 1"]);
}

#[test]
fn conflict_reported_retryable_over_the_wire() {
    let handle = boot();
    let mut c1 = Client::connect(&handle);
    let mut c2 = Client::connect(&handle);

    assert_eq!(c1.send("begin; set quantity(:a) = 1;"), ["OK", "OK"]);
    assert_eq!(c2.send("begin; set quantity(:a) = 2;"), ["OK", "OK"]);

    assert!(c1.send("commit;")[0].starts_with("COMMITTED"));
    let resp = c2.send("commit;");
    assert!(resp[0].starts_with("ERR retryable "), "{}", resp[0]);

    // The conflicting transaction was aborted server-side; a plain retry
    // on the same connection succeeds.
    let resp = c2.send("begin; set quantity(:a) = 2; commit;");
    assert_eq!(resp.len(), 3);
    assert!(resp[2].starts_with("COMMITTED"), "{}", resp[2]);
    assert_eq!(c1.send("select quantity(:a);"), ["ROW 2", "END 1"]);
}

#[test]
fn disconnect_mid_transaction_rolls_back() {
    let handle = boot();
    {
        let mut c = Client::connect(&handle);
        assert_eq!(c.send("begin; set quantity(:a) = 1;"), ["OK", "OK"]);
        // Connection dropped without commit.
    }
    let mut c = Client::connect(&handle);
    // Give the server thread a moment to observe the disconnect.
    for _ in 0..50 {
        if c.send("select quantity(:a);") == ["ROW 100", "END 1"] {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("abandoned transaction leaked into shared state");
}

#[test]
fn session_cap_queues_but_serves_everyone() {
    let mut db = Amos::new();
    db.execute("create type item; create function quantity(item i) -> integer;")
        .unwrap();
    db.execute("create item instances :a; set quantity(:a) = 0;")
        .unwrap();
    let handle = serve(
        "127.0.0.1:0",
        SharedEngine::new(db),
        ServerConfig {
            max_sessions: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = Arc::new(handle);

    // 6 clients through a pool of 2: all are eventually served.
    let mut joins = Vec::new();
    for i in 0..6 {
        let handle = Arc::clone(&handle);
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(&handle);
            let resp = c.send(&format!("add quantity(:a) = {};", i + 1));
            assert!(resp[0].starts_with("COMMITTED"), "{resp:?}");
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let mut c = Client::connect(&handle);
    let resp = c.send("select quantity(i) for each item i;");
    assert_eq!(resp.last().unwrap(), "END 7"); // 0 + six adds
}
