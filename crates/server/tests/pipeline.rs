//! Statement-pipelining protocol edge cases: clients that stream many
//! lines before reading anything back. The server must execute bursts
//! strictly in arrival order, pair every input line with exactly one
//! response group + `READY` (errors included), honor the
//! `max_pipeline` backpressure cap, and roll back a transaction whose
//! connection dies mid-burst.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use amos_db::{Amos, SharedEngine};
use amos_server::{serve, ServerConfig, ServerHandle};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        };
        let hello = c.read_line();
        assert!(hello.starts_with("HELLO amos-pdiff"), "{hello}");
        assert_eq!(c.read_line(), "READY");
        c
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    /// Stream every line in one write, without reading anything back.
    fn pipeline(&mut self, lines: &[String]) {
        let burst: String = lines.iter().map(|l| format!("{l}\n")).collect();
        self.writer.write_all(burst.as_bytes()).unwrap();
        self.writer.flush().unwrap();
    }

    /// Read one response group (everything up to and including `READY`).
    fn read_group(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        loop {
            let line = self.read_line();
            if line == "READY" {
                return out;
            }
            out.push(line);
        }
    }

    /// Classic request/response send for setup and verification.
    fn send(&mut self, script: &str) -> Vec<String> {
        self.pipeline(&[script.to_string()]);
        self.read_group()
    }
}

fn boot_with(config: ServerConfig, n_items: usize) -> ServerHandle {
    let mut db = Amos::new();
    db.execute("create type item; create function quantity(item i) -> integer;")
        .unwrap();
    let names: Vec<String> = (0..n_items).map(|i| format!(":k{i}")).collect();
    db.execute(&format!("create item instances {};", names.join(", ")))
        .unwrap();
    for name in &names {
        db.execute(&format!("set quantity({name}) = 100;")).unwrap();
    }
    serve("127.0.0.1:0", SharedEngine::new(db), config).unwrap()
}

/// K clients pipeline interleaved write/read bursts concurrently; each
/// connection's responses must arrive in its own line order, so every
/// `select` observes the `set` pipelined just before it.
#[test]
fn interleaved_pipelined_clients_stay_ordered() {
    let k = 4;
    let per = 16;
    let handle = Arc::new(boot_with(ServerConfig::default(), k));

    let mut joins = Vec::new();
    for c in 0..k {
        let handle = Arc::clone(&handle);
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(&handle);
            let mut lines = Vec::new();
            for v in 0..per {
                lines.push(format!("set quantity(:k{c}) = {};", 1000 + v));
                lines.push(format!("select quantity(:k{c});"));
            }
            client.pipeline(&lines);
            for v in 0..per {
                assert_eq!(client.read_group(), ["COMMITTED rules=0 failed=0"]);
                assert_eq!(
                    client.read_group(),
                    [format!("ROW {}", 1000 + v), "END 1".to_string()],
                    "client {c}: pipelined responses out of order"
                );
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Every client's last write is the one that stuck.
    let mut c = Client::connect(&handle);
    for i in 0..k {
        assert_eq!(
            c.send(&format!("select quantity(:k{i});")),
            [format!("ROW {}", 1000 + per - 1), "END 1".to_string()]
        );
    }
}

/// A connection that dies in the middle of a pipelined burst — after
/// the server may already have executed its `begin` and buffered
/// writes — must roll its open transaction back.
#[test]
fn disconnect_mid_pipeline_rolls_back() {
    let handle = boot_with(ServerConfig::default(), 1);
    {
        let mut c = Client::connect(&handle);
        c.pipeline(&[
            "begin;".to_string(),
            "set quantity(:k0) = 1;".to_string(),
            "set quantity(:k0) = 2;".to_string(),
        ]);
        // Wait for the first response so the burst has definitely been
        // received, then vanish without ever committing.
        assert_eq!(c.read_group(), ["OK"]);
    }
    let mut c = Client::connect(&handle);
    for _ in 0..50 {
        if c.send("select quantity(:k0);") == ["ROW 100", "END 1"] {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("abandoned pipelined transaction leaked into shared state");
}

/// A burst far larger than `max_pipeline`: the server must flush at
/// least every `max_pipeline` lines (so a slow reader cannot force
/// unbounded response buffering), and still answer every line in
/// order.
#[test]
fn oversized_pipeline_is_flushed_in_bounded_bursts() {
    let handle = boot_with(
        ServerConfig {
            max_pipeline: 4,
            ..ServerConfig::default()
        },
        1,
    );
    let mut c = Client::connect(&handle);
    let total = 300;
    let lines: Vec<String> = (0..total)
        .map(|v| format!("set quantity(:k0) = {v}; select quantity(:k0);"))
        .collect();
    c.pipeline(&lines);
    for v in 0..total {
        assert_eq!(
            c.read_group(),
            [
                "COMMITTED rules=0 failed=0".to_string(),
                format!("ROW {v}"),
                "END 1".to_string()
            ],
            "line {v}: burst-capped pipeline lost response ordering"
        );
    }
    assert_eq!(
        c.send("select quantity(:k0);"),
        [format!("ROW {}", total - 1), "END 1".to_string()]
    );
}

/// Errors mid-burst don't desynchronize the stream: every line still
/// gets exactly one response group and one `READY`, in line order, and
/// statements after the failure execute normally.
#[test]
fn err_mid_pipeline_keeps_response_order() {
    let handle = boot_with(ServerConfig::default(), 1);
    let mut c = Client::connect(&handle);
    c.pipeline(&[
        "set quantity(:k0) = 1;".to_string(),
        "select nonsense(:k0);".to_string(), // unknown function
        "set quantity(:k0) = 2;".to_string(),
        "select quantity(:k0;".to_string(), // syntax error
        "select quantity(:k0);".to_string(),
    ]);
    assert_eq!(c.read_group(), ["COMMITTED rules=0 failed=0"]);
    let g = c.read_group();
    assert_eq!(g.len(), 1, "{g:?}");
    assert!(g[0].starts_with("ERR "), "{g:?}");
    assert_eq!(c.read_group(), ["COMMITTED rules=0 failed=0"]);
    let g = c.read_group();
    assert_eq!(g.len(), 1, "{g:?}");
    assert!(g[0].starts_with("ERR "), "{g:?}");
    // The last select pairs with the last line, not with a leftover
    // response from an earlier one.
    assert_eq!(c.read_group(), ["ROW 2", "END 1"]);
}
