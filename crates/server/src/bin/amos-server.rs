//! Standalone AMOSQL transaction server.
//!
//! ```sh
//! cargo run -p amos-server --bin amos-server -- --listen 127.0.0.1:4640
//! ```
//!
//! Optionally `--wal-dir <dir>` for durable commits (replays any
//! existing snapshot + WAL on startup), `--max-sessions <n>` to bound
//! the connection pool, `--script <file.osql>` to load a schema before
//! accepting connections, and the commit-pipeline knobs below.

use amos_db::{Amos, SharedEngine, WalConfig};
use amos_server::{serve, ServerConfig};

const HELP: &str = "\
amos-server — multi-session AMOSQL transaction server

USAGE:
    amos-server [FLAGS]

FLAGS:
    --listen ADDR          bind address (default 127.0.0.1:4640)
    --max-sessions N       connection-pool size (default 64)
    --wal-dir DIR          durable commits: replay snapshot + WAL from
                           DIR on startup, log every commit to it
    --script FILE          run an AMOSQL schema script before serving
    --group-commit N       WAL group-commit window: a flush leader
                           coalesces up to N framed commit batches into
                           one write + fsync (default 8; 1 syncs every
                           commit individually)
    --commit-delay-us D    max microseconds a flush leader waits for
                           stragglers before syncing a not-yet-full
                           group (default 100; 0 never waits)
    --no-pipeline          disable both statement pipelining (greedy
                           per-connection reads, batched response
                           flushes) and the commit pipeline (sessions
                           fsync under the engine write lock, one
                           commit at a time)
    --help                 print this text
";

fn main() {
    let mut listen = "127.0.0.1:4640".to_string();
    let mut config = ServerConfig::default();
    let mut wal_dir: Option<String> = None;
    let mut wal_config = WalConfig {
        group_commit: 8,
        max_delay_us: 100,
    };
    let mut pipeline = true;
    let mut scripts: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--listen" => listen = value("--listen"),
            "--max-sessions" => {
                config.max_sessions = value("--max-sessions").parse().unwrap_or_else(|_| {
                    eprintln!("--max-sessions requires a positive integer");
                    std::process::exit(2);
                })
            }
            "--wal-dir" => wal_dir = Some(value("--wal-dir")),
            "--group-commit" => {
                wal_config.group_commit = value("--group-commit").parse().unwrap_or_else(|_| {
                    eprintln!("--group-commit requires a positive integer");
                    std::process::exit(2);
                });
                if wal_config.group_commit == 0 {
                    eprintln!("--group-commit requires a positive integer");
                    std::process::exit(2);
                }
            }
            "--commit-delay-us" => {
                wal_config.max_delay_us = value("--commit-delay-us").parse().unwrap_or_else(|_| {
                    eprintln!("--commit-delay-us requires a non-negative integer");
                    std::process::exit(2);
                })
            }
            "--no-pipeline" => pipeline = false,
            "--script" => scripts.push(value("--script")),
            "--help" | "-h" => {
                print!("{HELP}");
                return;
            }
            other => {
                eprintln!("unknown flag {other} (see --help)");
                std::process::exit(2);
            }
        }
    }

    let mut db = Amos::new();
    db.options.commit_pipeline = pipeline;
    config.pipeline = pipeline;
    if let Some(dir) = wal_dir {
        if let Err(e) = db.attach_wal(&dir, wal_config) {
            eprintln!("cannot attach WAL at {dir}: {e}");
            std::process::exit(2);
        }
    }
    for path in scripts {
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        if let Err(e) = db.execute(&src) {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    }

    let engine = SharedEngine::new(db);
    match serve(&listen, engine, config) {
        Ok(handle) => {
            println!("amos-server listening on {}", handle.addr());
            // Serve until killed; the handle's Drop would stop the
            // accept loop, so keep it alive while parked.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("cannot listen on {listen}: {e}");
            std::process::exit(2);
        }
    }
}
