//! Standalone AMOSQL transaction server.
//!
//! ```sh
//! cargo run -p amos-server --bin amos-server -- --listen 127.0.0.1:4640
//! ```
//!
//! Optionally `--wal-dir <dir>` for durable commits (replays any
//! existing snapshot + WAL on startup), `--max-sessions <n>` to bound
//! the connection pool, and `--script <file.osql>` to load a schema
//! before accepting connections.

use amos_db::{Amos, SharedEngine, WalConfig};
use amos_server::{serve, ServerConfig};

fn main() {
    let mut listen = "127.0.0.1:4640".to_string();
    let mut config = ServerConfig::default();
    let mut db = Amos::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--listen" => listen = value("--listen"),
            "--max-sessions" => {
                config.max_sessions = value("--max-sessions").parse().unwrap_or_else(|_| {
                    eprintln!("--max-sessions requires a positive integer");
                    std::process::exit(2);
                })
            }
            "--wal-dir" => {
                let dir = value("--wal-dir");
                if let Err(e) = db.attach_wal(&dir, WalConfig::default()) {
                    eprintln!("cannot attach WAL at {dir}: {e}");
                    std::process::exit(2);
                }
            }
            "--script" => {
                let path = value("--script");
                let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                });
                if let Err(e) = db.execute(&src) {
                    eprintln!("{path}: {e}");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let engine = SharedEngine::new(db);
    match serve(&listen, engine, config) {
        Ok(handle) => {
            println!("amos-server listening on {}", handle.addr());
            // Serve until killed; the handle's Drop would stop the
            // accept loop, so keep it alive while parked.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("cannot listen on {listen}: {e}");
            std::process::exit(2);
        }
    }
}
