//! Multi-session AMOSQL transaction server.
//!
//! A thin TCP front end over [`amos_db::SharedEngine`]: one engine, many
//! concurrent client connections, each bound to its own
//! [`amos_db::Session`] (snapshot-isolated transactions, commit-time
//! conflict detection — see `crates/db/src/session.rs`). The server adds
//! no semantics of its own: it parses nothing, schedules nothing, and
//! trusts the session layer for all isolation guarantees. That keeps the
//! concurrency-critical surface in one place, where the stress and
//! isolation proptest suites exercise it directly.
//!
//! # Wire protocol
//!
//! Line-oriented, UTF-8. On connect the server sends a greeting followed
//! by `READY`. Each client line is a complete AMOSQL script (one or more
//! `;`-terminated statements). For every statement one response group is
//! written:
//!
//! * `OK` — DDL / update / activation succeeded.
//! * `ROW <v1>\t<v2>…` per result row, then `END <count>` — query rows.
//! * `COMMITTED rules=<n> failed=<m>` — a commit ran the deferred check
//!   phase; `n` rules executed, `m` reported failures.
//! * `INFO <text>` — `explain` output, one line per `INFO`.
//!
//! A failing statement aborts the rest of the line's script with
//! `ERR <msg>` or — for serialization conflicts the client should simply
//! retry — `ERR retryable <msg>`. After every input line the server
//! writes `READY`. Disconnecting mid-transaction rolls the transaction
//! back (the session's `Drop` unpins its snapshot).
//!
//! # Statement pipelining
//!
//! Clients may stream many lines without waiting for `READY` between
//! them. With [`ServerConfig::pipeline`] on (the default) the server
//! greedily drains every *already-buffered* line after finishing one,
//! executes them strictly in arrival order, and flushes the whole burst
//! of response groups in one write — `N` statements per round trip
//! instead of one, and `N` commits entering the engine back-to-back so
//! the WAL group-commit coordinator can coalesce their fsyncs. Response
//! order is the line order even when a mid-burst statement fails with
//! `ERR`: every line still gets its response group and its `READY`, so
//! the client can pair requests to responses by counting `READY`s. At
//! most [`ServerConfig::max_pipeline`] lines are drained per burst;
//! beyond that the server flushes and returns to the socket, so a
//! client that never reads cannot buffer responses without bound.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use amos_db::{DbError, ExecResult, SharedEngine};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently served connections; further accepts block
    /// (in the accept loop, before a session is created) until a slot
    /// frees up. The pool bounds engine-lock contention, not memory.
    pub max_sessions: usize,
    /// Statement pipelining: greedily execute every already-buffered
    /// input line and flush the burst's responses in one write.
    pub pipeline: bool,
    /// Pipelining backpressure: lines drained per burst before the
    /// server flushes and yields back to the socket.
    pub max_pipeline: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            pipeline: true,
            max_pipeline: 128,
        }
    }
}

/// Counting semaphore over `Mutex`+`Condvar` (no external deps).
struct Slots {
    free: Mutex<usize>,
    cv: Condvar,
}

impl Slots {
    fn new(n: usize) -> Arc<Slots> {
        Arc::new(Slots {
            free: Mutex::new(n.max(1)),
            cv: Condvar::new(),
        })
    }

    fn acquire(&self) {
        let mut free = self.free.lock().expect("slots lock");
        while *free == 0 {
            free = self.cv.wait(free).expect("slots lock");
        }
        *free -= 1;
    }

    fn release(&self) {
        *self.free.lock().expect("slots lock") += 1;
        self.cv.notify_one();
    }
}

/// A running server; dropping it (or calling [`stop`](Self::stop))
/// shuts the accept loop down. Connections already being served run to
/// completion on their own threads.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` and serve sessions over `engine` until
/// [`ServerHandle::stop`]. Each connection gets its own thread and its
/// own [`amos_db::Session`]; at most `config.max_sessions` run at once.
pub fn serve(
    addr: impl ToSocketAddrs,
    engine: Arc<SharedEngine>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let slots = Slots::new(config.max_sessions);
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            slots.acquire();
            let engine = Arc::clone(&engine);
            let slots = Arc::clone(&slots);
            let config = config.clone();
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &engine, &config);
                slots.release();
            });
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
    })
}

fn serve_connection(
    stream: TcpStream,
    engine: &Arc<SharedEngine>,
    config: &ServerConfig,
) -> std::io::Result<()> {
    let mut session = engine.session();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut w = BufWriter::new(stream);
    writeln!(w, "HELLO amos-pdiff {}", env!("CARGO_PKG_VERSION"))?;
    writeln!(w, "READY")?;
    w.flush()?;
    let mut line = String::new();
    let mut burst = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break; // EOF
        }
        let src = line.trim();
        if !src.is_empty() {
            match session.execute(src) {
                Ok(results) => {
                    for r in results {
                        write_result(&mut w, &r)?;
                    }
                }
                Err(e) => write_error(&mut w, &e)?,
            }
        }
        writeln!(w, "READY")?;
        burst += 1;
        // Pipelining: when the client has already streamed more lines,
        // keep executing without flushing — the whole burst's responses
        // go out in one write. `BufReader::buffer()` only inspects bytes
        // already read from the socket, so this never blocks; a complete
        // buffered line is required, since `read_line` would otherwise
        // block waiting for its terminator.
        let more_buffered =
            config.pipeline && burst < config.max_pipeline && reader.buffer().contains(&b'\n');
        if !more_buffered {
            w.flush()?;
            burst = 0;
        }
    }
    w.flush()?;
    Ok(())
    // `session` drops here: an open transaction is rolled back and its
    // snapshot pin released.
}

fn write_result(w: &mut impl Write, r: &ExecResult) -> std::io::Result<()> {
    match r {
        ExecResult::Ok => writeln!(w, "OK"),
        ExecResult::Rows(rows) => {
            for row in rows {
                let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
                writeln!(w, "ROW {}", cells.join("\t"))?;
            }
            writeln!(w, "END {}", rows.len())
        }
        ExecResult::Committed(summary) => writeln!(
            w,
            "COMMITTED rules={} failed={}",
            summary.executed.len(),
            summary.failed.len()
        ),
        ExecResult::Text(text) => {
            for l in text.lines() {
                writeln!(w, "INFO {l}")?;
            }
            Ok(())
        }
    }
}

fn write_error(w: &mut impl Write, e: &DbError) -> std::io::Result<()> {
    let msg = e.to_string().replace('\n', " | ");
    if e.is_retryable() {
        writeln!(w, "ERR retryable {msg}")
    } else {
        writeln!(w, "ERR {msg}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_block_and_release() {
        let slots = Slots::new(1);
        slots.acquire();
        let s2 = Arc::clone(&slots);
        let t = std::thread::spawn(move || {
            s2.acquire(); // blocks until main releases
            s2.release();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        slots.release();
        t.join().unwrap();
    }

    #[test]
    fn error_rendering() {
        let mut buf = Vec::new();
        write_error(
            &mut buf,
            &DbError::TxnConflict {
                relation: "quantity".into(),
            },
        )
        .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("ERR retryable "), "{s}");
        assert!(s.contains("quantity"));
    }
}
