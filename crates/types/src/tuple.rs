//! Immutable tuples (rows) of values.
//!
//! Relations in the calculus are *sets of tuples*; Δ-sets, old-state views
//! and propagation wave-fronts all move tuples around, so tuples are
//! reference-counted (`Arc<[Value]>`) and clone in O(1).

use std::fmt;
use std::ops::Index;
use std::sync::Arc;

use crate::value::Value;

/// An immutable row of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Arc<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// The empty (0-ary) tuple, used by nullary condition functions whose
    /// truth is "non-empty result".
    pub fn unit() -> Self {
        Tuple(Arc::from(Vec::new()))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the 0-ary tuple.
    pub fn is_unit(&self) -> bool {
        self.0.is_empty()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Column accessor; `None` if out of range.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// Project the given columns into a new tuple.
    ///
    /// # Panics
    /// Panics if any index is out of range — projections are produced by
    /// the compiler against known arities, so an out-of-range index is a
    /// compiler bug, not a data error.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&c| self.0[c].clone()).collect::<Vec<_>>())
    }

    /// Concatenate two tuples (used by products and joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple::new(v)
    }

    /// Iterate over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect::<Vec<_>>())
    }
}

/// Convenience constructor: `tuple![1, "a", oid]` builds a [`Tuple`] from
/// anything convertible into [`Value`].
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::from(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple![1, 2, "x"];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t.get(2), Some(&Value::str("x")));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn unit_tuple() {
        let u = Tuple::unit();
        assert!(u.is_unit());
        assert_eq!(u.arity(), 0);
        assert_eq!(u, Tuple::from(vec![]));
    }

    #[test]
    fn project_and_concat() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0]), tuple![30, 10]);
        let u = tuple![1].concat(&tuple![2, 3]);
        assert_eq!(u, tuple![1, 2, 3]);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(tuple![1, 2], tuple![1, 2]);
        assert_ne!(tuple![1, 2], tuple![2, 1]);
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, \"a\")");
        assert_eq!(Tuple::unit().to_string(), "()");
    }

    #[test]
    fn clone_is_shallow() {
        let t = tuple![1, 2, 3];
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.0, &u.0));
    }
}
