//! Immutable tuples (rows) of values.
//!
//! Relations in the calculus are *sets of tuples*; Δ-sets, old-state views
//! and propagation wave-fronts all move tuples around, so tuples are
//! reference-counted (`Arc<[Value]>`) and clone in O(1).
//!
//! Every tuple additionally carries a precomputed 64-bit *fingerprint* of
//! its values, computed once at construction with the deterministic
//! [`FxHasher`](crate::FxHasher). `Hash` writes only the fingerprint and
//! `Eq` rejects on fingerprint mismatch before comparing values, so the
//! hash-set operations that dominate propagation (Δ-set folds, old-state
//! overlays, index probes, memo lookups) cost O(1) per tuple instead of
//! re-hashing every `Value` each time the tuple enters another table.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Index;
use std::sync::Arc;

use crate::hash::FxHasher;
use crate::value::Value;

/// An immutable row of [`Value`]s with a cached fingerprint.
#[derive(Debug, Clone)]
pub struct Tuple {
    values: Arc<[Value]>,
    fingerprint: u64,
}

fn fingerprint_of(values: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    // Arity first, so () and future zero-like encodings stay distinct.
    h.write_usize(values.len());
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Arc<[Value]>>) -> Self {
        let values = values.into();
        let fingerprint = fingerprint_of(&values);
        Tuple {
            values,
            fingerprint,
        }
    }

    /// The empty (0-ary) tuple, used by nullary condition functions whose
    /// truth is "non-empty result".
    pub fn unit() -> Self {
        Tuple::new(Vec::new())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether this is the 0-ary tuple.
    pub fn is_unit(&self) -> bool {
        self.values.is_empty()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The cached 64-bit fingerprint of the values. Equal tuples have
    /// equal fingerprints; the converse holds only probabilistically.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Column accessor; `None` if out of range.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Project the given columns into a new tuple.
    ///
    /// # Panics
    /// Panics if any index is out of range — projections are produced by
    /// the compiler against known arities, so an out-of-range index is a
    /// compiler bug, not a data error.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(
            cols.iter()
                .map(|&c| self.values[c].clone())
                .collect::<Vec<_>>(),
        )
    }

    /// Concatenate two tuples (used by products and joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Iterate over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values.iter()
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        // Fingerprint fast-reject; full comparison only on (rare)
        // collision or genuine equality. Pointer equality short-circuits
        // the clone-heavy case of comparing a tuple with itself.
        self.fingerprint == other.fingerprint
            && (Arc::ptr_eq(&self.values, &other.values) || self.values == other.values)
    }
}

impl Eq for Tuple {}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint);
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Order over values only — the fingerprint is an implementation
        // detail and must not affect sorted (deterministic) output.
        self.values.cmp(&other.values)
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect::<Vec<_>>())
    }
}

/// Convenience constructor: `tuple![1, "a", oid]` builds a [`Tuple`] from
/// anything convertible into [`Value`].
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::from(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple![1, 2, "x"];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t.get(2), Some(&Value::str("x")));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn unit_tuple() {
        let u = Tuple::unit();
        assert!(u.is_unit());
        assert_eq!(u.arity(), 0);
        assert_eq!(u, Tuple::from(vec![]));
    }

    #[test]
    fn project_and_concat() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0]), tuple![30, 10]);
        let u = tuple![1].concat(&tuple![2, 3]);
        assert_eq!(u, tuple![1, 2, 3]);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(tuple![1, 2], tuple![1, 2]);
        assert_ne!(tuple![1, 2], tuple![2, 1]);
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, \"a\")");
        assert_eq!(Tuple::unit().to_string(), "()");
    }

    #[test]
    fn clone_is_shallow() {
        let t = tuple![1, 2, 3];
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.values, &u.values));
        assert_eq!(t.fingerprint(), u.fingerprint());
    }

    #[test]
    fn fingerprint_agrees_with_equality() {
        // Independently constructed equal tuples share a fingerprint.
        assert_eq!(tuple![1, "a"].fingerprint(), tuple![1, "a"].fingerprint());
        // Distinct tuples (values or arity) fingerprint apart.
        assert_ne!(tuple![1, 2].fingerprint(), tuple![2, 1].fingerprint());
        assert_ne!(tuple![0].fingerprint(), Tuple::unit().fingerprint());
        assert_ne!(tuple![0].fingerprint(), tuple![0, 0].fingerprint());
    }

    #[test]
    fn hash_uses_cached_fingerprint() {
        use std::hash::BuildHasher;
        let t = tuple![1, 2, 3];
        let s = std::collections::hash_map::RandomState::new();
        assert_eq!(s.hash_one(&t), s.hash_one(t.clone()));
        // Sets behave structurally regardless of construction path.
        let mut set = std::collections::HashSet::new();
        set.insert(t);
        assert!(set.contains(&tuple![1, 2, 3]));
    }

    #[test]
    fn ordering_ignores_fingerprint() {
        let mut v = vec![tuple![2], tuple![1], tuple![3]];
        v.sort();
        assert_eq!(v, vec![tuple![1], tuple![2], tuple![3]]);
    }
}
