//! Errors raised by value-level operations.

use std::fmt;

/// An error produced by arithmetic or comparison over [`crate::Value`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// The operands were not of the type an operator required.
    TypeMismatch {
        /// What the operation required.
        expected: &'static str,
        /// The runtime type actually found.
        found: &'static str,
    },
    /// A binary numeric operator received a non-numeric operand.
    NotNumeric {
        /// Runtime type of the left operand.
        lhs: &'static str,
        /// Runtime type of the right operand.
        rhs: &'static str,
    },
    /// Integer arithmetic overflowed (operator symbol attached).
    Overflow(&'static str),
    /// Division by zero.
    DivisionByZero,
    /// An attempt to construct a NaN real value.
    NanReal,
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ValueError::NotNumeric { lhs, rhs } => {
                write!(f, "numeric operator applied to {lhs} and {rhs}")
            }
            ValueError::Overflow(op) => write!(f, "integer overflow in `{op}`"),
            ValueError::DivisionByZero => write!(f, "division by zero"),
            ValueError::NanReal => write!(f, "NaN is not a valid real value"),
        }
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ValueError::TypeMismatch {
            expected: "integer",
            found: "boolean",
        };
        assert_eq!(
            e.to_string(),
            "type mismatch: expected integer, found boolean"
        );
        assert_eq!(ValueError::DivisionByZero.to_string(), "division by zero");
        assert_eq!(
            ValueError::Overflow("*").to_string(),
            "integer overflow in `*`"
        );
    }
}
