//! The dynamically-typed runtime value.
//!
//! AMOSQL is dynamically typed at the storage level: a stored function
//! maps tuples of values to values. [`Value`] covers the scalar types used
//! by the paper (integers and reals for quantities/thresholds, strings for
//! names, booleans for procedure results, and [`Oid`]s for surrogate
//! objects such as `item` and `supplier` instances).
//!
//! Values must be members of *sets* (the calculus is set-oriented), so
//! `Value` implements `Eq`, `Hash`, and a total `Ord`. Reals are wrapped
//! so that NaN is rejected at construction and bit-equality is total.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::ValueError;
use crate::oid::Oid;

/// A runtime value stored in base relations and produced by queries.
#[derive(Debug, Clone)]
pub enum Value {
    /// The SQL-ish `boolean` type; also the implicit result of procedures.
    Bool(bool),
    /// 64-bit integer (`integer` in AMOSQL).
    Int(i64),
    /// 64-bit IEEE real (`real` in AMOSQL). Never NaN.
    Real(f64),
    /// Interned string (`charstring` in AMOSQL).
    Str(Arc<str>),
    /// Surrogate object identifier (instances of user types).
    Oid(Oid),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Build a real value, rejecting NaN (which would break total order).
    pub fn real(r: f64) -> Result<Self, ValueError> {
        if r.is_nan() {
            Err(ValueError::NanReal)
        } else {
            Ok(Value::Real(r))
        }
    }

    /// The AMOSQL type name of this value's runtime type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Real(_) => "real",
            Value::Str(_) => "charstring",
            Value::Oid(_) => "object",
        }
    }

    /// Extract an integer, or error with context.
    pub fn as_int(&self) -> Result<i64, ValueError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(ValueError::TypeMismatch {
                expected: "integer",
                found: other.type_name(),
            }),
        }
    }

    /// Extract a boolean, or error with context.
    pub fn as_bool(&self) -> Result<bool, ValueError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ValueError::TypeMismatch {
                expected: "boolean",
                found: other.type_name(),
            }),
        }
    }

    /// Extract an object identifier, or error with context.
    pub fn as_oid(&self) -> Result<Oid, ValueError> {
        match self {
            Value::Oid(o) => Ok(*o),
            other => Err(ValueError::TypeMismatch {
                expected: "object",
                found: other.type_name(),
            }),
        }
    }

    /// Extract a string slice, or error with context.
    pub fn as_str(&self) -> Result<&str, ValueError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(ValueError::TypeMismatch {
                expected: "charstring",
                found: other.type_name(),
            }),
        }
    }

    /// Numeric promotion: integers widen to reals when mixed.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    fn numeric_pair(&self, other: &Value) -> Result<(f64, f64), ValueError> {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => Ok((a, b)),
            _ => Err(ValueError::NotNumeric {
                lhs: self.type_name(),
                rhs: other.type_name(),
            }),
        }
    }

    /// `self + other` with integer/real promotion.
    pub fn add(&self, other: &Value) -> Result<Value, ValueError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a
                .checked_add(*b)
                .map(Value::Int)
                .ok_or(ValueError::Overflow("+")),
            _ => {
                let (a, b) = self.numeric_pair(other)?;
                Value::real(a + b)
            }
        }
    }

    /// `self - other` with integer/real promotion.
    pub fn sub(&self, other: &Value) -> Result<Value, ValueError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a
                .checked_sub(*b)
                .map(Value::Int)
                .ok_or(ValueError::Overflow("-")),
            _ => {
                let (a, b) = self.numeric_pair(other)?;
                Value::real(a - b)
            }
        }
    }

    /// `self * other` with integer/real promotion.
    pub fn mul(&self, other: &Value) -> Result<Value, ValueError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a
                .checked_mul(*b)
                .map(Value::Int)
                .ok_or(ValueError::Overflow("*")),
            _ => {
                let (a, b) = self.numeric_pair(other)?;
                Value::real(a * b)
            }
        }
    }

    /// `self / other`; integer division truncates, division by zero errors.
    pub fn div(&self, other: &Value) -> Result<Value, ValueError> {
        match (self, other) {
            (Value::Int(_), Value::Int(0)) => Err(ValueError::DivisionByZero),
            (Value::Int(a), Value::Int(b)) => a
                .checked_div(*b)
                .map(Value::Int)
                .ok_or(ValueError::Overflow("/")),
            _ => {
                let (a, b) = self.numeric_pair(other)?;
                if b == 0.0 {
                    Err(ValueError::DivisionByZero)
                } else {
                    Value::real(a / b)
                }
            }
        }
    }

    /// Unary negation.
    pub fn neg(&self) -> Result<Value, ValueError> {
        match self {
            Value::Int(a) => a
                .checked_neg()
                .map(Value::Int)
                .ok_or(ValueError::Overflow("-")),
            Value::Real(r) => Value::real(-r),
            other => Err(ValueError::TypeMismatch {
                expected: "numeric",
                found: other.type_name(),
            }),
        }
    }

    /// Comparison as used by AMOSQL predicates (`<`, `<=`, …).
    ///
    /// Numeric values compare by value across `Int`/`Real`; comparing
    /// values of incomparable runtime types (e.g. an `Oid` with an `Int`)
    /// is an error at the predicate level, unlike the *total* order
    /// implemented by [`Ord`] which exists only so values can be sorted
    /// deterministically inside relations.
    pub fn compare(&self, other: &Value) -> Result<Ordering, ValueError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Oid(a), Value::Oid(b)) => Ok(a.cmp(b)),
            _ => {
                let (a, b) = self.numeric_pair(other)?;
                // Neither side is NaN by construction.
                Ok(a.partial_cmp(&b).expect("reals are never NaN"))
            }
        }
    }
}

/// Rank used to totally order values of different runtime types.
fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Bool(_) => 0,
        Value::Int(_) => 1,
        Value::Real(_) => 2,
        Value::Str(_) => 3,
        Value::Oid(_) => 4,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Oid(a), Value::Oid(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        type_rank(self).hash(state);
        match self {
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Real(r) => r.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Oid(o) => o.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// A total order across *all* values, used for deterministic sorting
    /// of result sets. Values of different runtime types order by type
    /// rank; reals order by IEEE total ordering of bits sign-adjusted.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Oid(a), Value::Oid(b)) => a.cmp(b),
            _ => type_rank(self).cmp(&type_rank(other)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Oid(o) => write!(f, "{o}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

impl From<Oid> for Value {
    fn from(o: Oid) -> Self {
        Value::Oid(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_int() {
        let a = Value::Int(6);
        let b = Value::Int(7);
        assert_eq!(a.mul(&b).unwrap(), Value::Int(42));
        assert_eq!(a.add(&b).unwrap(), Value::Int(13));
        assert_eq!(a.sub(&b).unwrap(), Value::Int(-1));
        assert_eq!(b.div(&a).unwrap(), Value::Int(1));
    }

    #[test]
    fn arithmetic_promotes_to_real() {
        let a = Value::Int(3);
        let b = Value::real(0.5).unwrap();
        assert_eq!(a.add(&b).unwrap(), Value::real(3.5).unwrap());
        assert_eq!(a.mul(&b).unwrap(), Value::real(1.5).unwrap());
    }

    #[test]
    fn overflow_is_an_error() {
        let a = Value::Int(i64::MAX);
        assert!(matches!(
            a.add(&Value::Int(1)),
            Err(ValueError::Overflow("+"))
        ));
        assert!(matches!(
            a.mul(&Value::Int(2)),
            Err(ValueError::Overflow("*"))
        ));
    }

    #[test]
    fn division_by_zero() {
        assert!(matches!(
            Value::Int(1).div(&Value::Int(0)),
            Err(ValueError::DivisionByZero)
        ));
        assert!(matches!(
            Value::real(1.0).unwrap().div(&Value::real(0.0).unwrap()),
            Err(ValueError::DivisionByZero)
        ));
    }

    #[test]
    fn nan_rejected() {
        assert!(matches!(Value::real(f64::NAN), Err(ValueError::NanReal)));
    }

    #[test]
    fn compare_mixed_numeric() {
        let a = Value::Int(2);
        let b = Value::real(2.5).unwrap();
        assert_eq!(a.compare(&b).unwrap(), Ordering::Less);
        assert_eq!(b.compare(&a).unwrap(), Ordering::Greater);
        assert_eq!(a.compare(&Value::Int(2)).unwrap(), Ordering::Equal);
    }

    #[test]
    fn compare_incomparable_types_errors() {
        let a = Value::Oid(Oid::from_raw(1));
        assert!(a.compare(&Value::Int(1)).is_err());
        assert!(Value::str("x").compare(&Value::Int(1)).is_err());
    }

    #[test]
    fn total_order_is_consistent_with_eq() {
        let vals = [
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Int(3),
            Value::real(2.5).unwrap(),
            Value::str("a"),
            Value::str("b"),
            Value::Oid(Oid::from_raw(9)),
        ];
        for a in &vals {
            for b in &vals {
                let ord = a.cmp(b);
                assert_eq!(ord == Ordering::Equal, a == b, "{a} vs {b}");
                assert_eq!(b.cmp(a), ord.reverse());
            }
        }
    }

    #[test]
    fn display_round_trips_readably() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("abc").to_string(), "\"abc\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn extractors() {
        assert_eq!(Value::Int(4).as_int().unwrap(), 4);
        assert!(Value::Bool(true).as_int().is_err());
        assert!(Value::Int(4).as_bool().is_err());
        assert_eq!(Value::str("s").as_str().unwrap(), "s");
    }
}
