//! # amos-types
//!
//! Foundational value and type system for the AMOS partial-differencing
//! reproduction (Sköld & Risch, ICDE'96).
//!
//! The paper's data model is the functional data model of Daplex/Iris:
//! everything is an *object* classified by *types*, and data is stored in
//! *functions* over objects. At the storage level a stored function is a
//! base relation of [`Tuple`]s of [`Value`]s; surrogate objects are
//! identified by [`Oid`]s.
//!
//! This crate provides:
//!
//! * [`Value`] — the dynamically-typed runtime value (integers, reals,
//!   strings, booleans, and object identifiers), hashable and totally
//!   ordered so it can live in set-oriented relations.
//! * [`Tuple`] — an immutable, cheaply-clonable row of values.
//! * [`Oid`] / [`OidGenerator`] — surrogate object identity.
//! * [`TypeRegistry`] — the named type lattice (`create type item;`),
//!   with single-parent subtyping.
//! * [`ValueError`] — arithmetic/type errors raised by built-in operators.

pub mod error;
pub mod hash;
pub mod oid;
pub mod ops;
pub mod tuple;
pub mod typesys;
pub mod value;

pub use error::ValueError;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use oid::{Oid, OidGenerator};
pub use ops::{ArithOp, CmpOp};
pub use tuple::Tuple;
pub use typesys::{TypeDef, TypeId, TypeRegistry};
pub use value::Value;
