//! A fast, deterministic, non-cryptographic hasher (Fx-style).
//!
//! The propagation hot path is dominated by hash-set operations over
//! [`Tuple`](crate::Tuple)s: Δ-set folds, old-state overlay membership,
//! index probes, and the evaluator's plan/memo caches. The default
//! `SipHash` is DoS-resistant but an order of magnitude slower than
//! needed for trusted in-process keys, and its per-process random seed
//! makes iteration orders differ across runs. This module provides the
//! multiply-rotate hasher popularized by the Rust compiler (`FxHasher`):
//! ~1 ns per word, fully deterministic, quality adequate for power-of-two
//! hash tables over already-mixed input (tuples carry a precomputed
//! fingerprint; see [`Tuple::fingerprint`](crate::Tuple::fingerprint)).
//!
//! Determinism matters beyond speed: benchmark runs become reproducible
//! and cache hit/miss counters comparable across processes.

use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio-derived odd multiplier (same constant as rustc's
/// `FxHasher`); spreads each mixed-in word across all 64 bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The multiply-rotate hasher. Create through
/// [`FxBuildHasher`]/`Default`, not directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Mix in the tail length so "ab" ∥ "" ≠ "a" ∥ "b".
            self.add_to_hash(u64::from_le_bytes(word) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Zero-sized, deterministic `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`] — drop-in for internal tables
/// whose keys are trusted (no hash-flooding concern).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_nearby_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        // Tail handling keeps split points distinct.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 3, 0]));
    }

    #[test]
    fn usable_in_collections() {
        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(7);
        assert!(set.contains(&7));
        let mut map: FxHashMap<&str, i32> = FxHashMap::default();
        map.insert("k", 1);
        assert_eq!(map["k"], 1);
    }
}
