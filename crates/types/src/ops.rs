//! Comparison and arithmetic operator vocabulary shared by the algebra
//! and ObjectLog layers.

use std::cmp::Ordering;
use std::fmt;

use crate::error::ValueError;
use crate::value::Value;

/// Comparison operator (`<`, `<=`, `=`, `!=`, `>`, `>=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Whether `ord` satisfies this operator.
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// Apply to two values with numeric promotion; errors on
    /// incomparable runtime types.
    pub fn apply(self, lhs: &Value, rhs: &Value) -> Result<bool, ValueError> {
        Ok(self.matches(lhs.compare(rhs)?))
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`not (a < b)` ⇔ `a >= b`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Binary arithmetic operator used by derived-function bodies
/// (`_G4 = _G1 * _G3` in the paper's ObjectLog listings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    /// Apply to two values.
    pub fn apply(self, lhs: &Value, rhs: &Value) -> Result<Value, ValueError> {
        match self {
            ArithOp::Add => lhs.add(rhs),
            ArithOp::Sub => lhs.sub(rhs),
            ArithOp::Mul => lhs.mul(rhs),
            ArithOp::Div => lhs.div(rhs),
        }
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_matches() {
        assert!(CmpOp::Lt.apply(&Value::Int(1), &Value::Int(2)).unwrap());
        assert!(CmpOp::Ge.apply(&Value::Int(2), &Value::Int(2)).unwrap());
        assert!(!CmpOp::Ne.apply(&Value::Int(2), &Value::Int(2)).unwrap());
        assert!(CmpOp::Eq
            .apply(&Value::Int(2), &Value::real(2.0).unwrap())
            .unwrap());
    }

    #[test]
    fn flipped_and_negated() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let (a, b) = (Value::Int(1), Value::Int(2));
            assert_eq!(
                op.apply(&a, &b).unwrap(),
                op.flipped().apply(&b, &a).unwrap()
            );
            assert_eq!(
                op.apply(&a, &b).unwrap(),
                !op.negated().apply(&a, &b).unwrap()
            );
        }
    }

    #[test]
    fn arith_apply() {
        assert_eq!(
            ArithOp::Mul.apply(&Value::Int(20), &Value::Int(2)).unwrap(),
            Value::Int(40)
        );
        assert_eq!(
            ArithOp::Add
                .apply(&Value::Int(40), &Value::Int(100))
                .unwrap(),
            Value::Int(140)
        );
    }
}
