//! Surrogate object identity.
//!
//! In the Iris/Daplex data model every instance of a user-defined type
//! (`create type item;` … `create item instances :item1, :item2;`) is a
//! surrogate object. Objects carry no internal structure; all their
//! attributes live in stored functions keyed by the object's [`Oid`].

use std::fmt;

/// A surrogate object identifier.
///
/// Oids are opaque, totally ordered, and unique per database (issued by
/// [`OidGenerator`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(u64);

impl Oid {
    /// Construct an Oid from a raw value. Intended for tests and for
    /// storage engines that persist oids; normal code should allocate
    /// through [`OidGenerator`].
    pub fn from_raw(raw: u64) -> Self {
        Oid(raw)
    }

    /// The raw identifier.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#[oid {}]", self.0)
    }
}

/// Monotonic allocator of fresh [`Oid`]s.
///
/// A generator is owned by the database instance; it is not shared across
/// databases, matching the paper's single-database execution model.
#[derive(Debug, Default, Clone)]
pub struct OidGenerator {
    next: u64,
}

impl OidGenerator {
    /// A generator starting at oid 1 (0 is reserved as a niche for tests).
    pub fn new() -> Self {
        OidGenerator { next: 1 }
    }

    /// Allocate the next fresh oid.
    pub fn fresh(&mut self) -> Oid {
        let oid = Oid(self.next);
        self.next += 1;
        oid
    }

    /// Number of oids allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next.saturating_sub(1)
    }

    /// Advance the generator so that `fresh()` will never re-issue `oid`
    /// or anything below it. Used by recovery, which learns the highest
    /// persisted oid only after replaying the log.
    pub fn ensure_above(&mut self, oid: Oid) {
        self.next = self.next.max(oid.raw() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_oids_are_unique_and_ordered() {
        let mut g = OidGenerator::new();
        let a = g.fresh();
        let b = g.fresh();
        let c = g.fresh();
        assert!(a < b && b < c);
        assert_eq!(g.allocated(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Oid::from_raw(7).to_string(), "#[oid 7]");
    }

    #[test]
    fn ensure_above_prevents_reissue() {
        let mut g = OidGenerator::new();
        g.ensure_above(Oid::from_raw(41));
        assert_eq!(g.fresh(), Oid::from_raw(42));
        // Never moves backwards.
        g.ensure_above(Oid::from_raw(5));
        assert_eq!(g.fresh(), Oid::from_raw(43));
    }
}
