//! The named type lattice.
//!
//! `create type item;` introduces a user type. AMOS types form a lattice
//! rooted at `object`; we support single-parent subtyping (`create type
//! special_item under item;`), which is all the paper's examples need.
//! Built-in scalar types (`boolean`, `integer`, `real`, `charstring`) are
//! pre-registered.
//!
//! The extent of a type (the set of its instances) is stored as a unary
//! base relation by the storage layer — the registry only tracks names
//! and the subtype relation.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a registered type (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The root type `object`. [`TypeRegistry::new`] always registers the
    /// built-ins first and in this order, so these ids are stable across
    /// every registry and may be used without a registry in hand (the
    /// abstract interpreter in `amos-lint` relies on this to recognise
    /// integer-typed columns).
    pub const OBJECT: TypeId = TypeId(0);
    /// The built-in `boolean` scalar type.
    pub const BOOLEAN: TypeId = TypeId(1);
    /// The built-in `integer` scalar type.
    pub const INTEGER: TypeId = TypeId(2);
    /// The built-in `real` scalar type.
    pub const REAL: TypeId = TypeId(3);
    /// The built-in `charstring` scalar type.
    pub const CHARSTRING: TypeId = TypeId(4);
}

/// Metadata about one registered type.
#[derive(Debug, Clone)]
pub struct TypeDef {
    /// Unique id.
    pub id: TypeId,
    /// The type's name, e.g. `item`.
    pub name: String,
    /// Direct supertype, if any (`None` for `object` and the scalars).
    pub supertype: Option<TypeId>,
    /// Whether this is one of the built-in scalar types.
    pub builtin: bool,
}

/// Errors from type registration/lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A type with this name already exists.
    Duplicate(String),
    /// No type with this name exists.
    Unknown(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Duplicate(n) => write!(f, "type `{n}` already exists"),
            TypeError::Unknown(n) => write!(f, "unknown type `{n}`"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Registry of named types with single-parent subtyping.
#[derive(Debug, Clone)]
pub struct TypeRegistry {
    defs: Vec<TypeDef>,
    by_name: HashMap<String, TypeId>,
    /// Id of the root type `object`.
    object: TypeId,
}

impl TypeRegistry {
    /// A registry pre-populated with `object` and the scalar types.
    pub fn new() -> Self {
        let mut reg = TypeRegistry {
            defs: Vec::new(),
            by_name: HashMap::new(),
            object: TypeId(0),
        };
        let object = reg.insert("object", None, true);
        reg.object = object;
        for scalar in ["boolean", "integer", "real", "charstring"] {
            reg.insert(scalar, Some(object), true);
        }
        reg
    }

    fn insert(&mut self, name: &str, supertype: Option<TypeId>, builtin: bool) -> TypeId {
        let id = TypeId(self.defs.len() as u32);
        self.defs.push(TypeDef {
            id,
            name: name.to_string(),
            supertype,
            builtin,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// The root type `object`.
    pub fn object(&self) -> TypeId {
        self.object
    }

    /// Register a user type, optionally under a supertype name.
    pub fn create(&mut self, name: &str, under: Option<&str>) -> Result<TypeId, TypeError> {
        if self.by_name.contains_key(name) {
            return Err(TypeError::Duplicate(name.to_string()));
        }
        let parent = match under {
            Some(p) => self.lookup(p)?,
            None => self.object,
        };
        Ok(self.insert(name, Some(parent), false))
    }

    /// Resolve a type name.
    pub fn lookup(&self, name: &str) -> Result<TypeId, TypeError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TypeError::Unknown(name.to_string()))
    }

    /// Metadata for a type id.
    pub fn def(&self, id: TypeId) -> &TypeDef {
        &self.defs[id.0 as usize]
    }

    /// The name of a type id.
    pub fn name(&self, id: TypeId) -> &str {
        &self.def(id).name
    }

    /// Whether `sub` is `sup` or a (transitive) subtype of it.
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> bool {
        let mut cur = Some(sub);
        while let Some(t) = cur {
            if t == sup {
                return true;
            }
            cur = self.def(t).supertype;
        }
        false
    }

    /// All registered types, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &TypeDef> {
        self.defs.iter()
    }

    /// Direct subtypes of `id`, in registration order.
    pub fn subtypes(&self, id: TypeId) -> Vec<TypeId> {
        self.defs
            .iter()
            .filter(|d| d.supertype == Some(id))
            .map(|d| d.id)
            .collect()
    }
}

impl Default for TypeRegistry {
    fn default() -> Self {
        TypeRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_preregistered() {
        let reg = TypeRegistry::new();
        for (name, id) in [
            ("object", TypeId::OBJECT),
            ("boolean", TypeId::BOOLEAN),
            ("integer", TypeId::INTEGER),
            ("real", TypeId::REAL),
            ("charstring", TypeId::CHARSTRING),
        ] {
            assert_eq!(reg.lookup(name).unwrap(), id);
            assert!(reg.def(id).builtin);
        }
    }

    #[test]
    fn create_and_subtype() {
        let mut reg = TypeRegistry::new();
        let item = reg.create("item", None).unwrap();
        let special = reg.create("special_item", Some("item")).unwrap();
        assert!(reg.is_subtype(special, item));
        assert!(reg.is_subtype(special, reg.object()));
        assert!(reg.is_subtype(item, item));
        assert!(!reg.is_subtype(item, special));
        assert_eq!(reg.subtypes(item), vec![special]);
    }

    #[test]
    fn duplicate_rejected() {
        let mut reg = TypeRegistry::new();
        reg.create("item", None).unwrap();
        assert_eq!(
            reg.create("item", None),
            Err(TypeError::Duplicate("item".into()))
        );
    }

    #[test]
    fn unknown_supertype_rejected() {
        let mut reg = TypeRegistry::new();
        assert_eq!(
            reg.create("x", Some("nope")),
            Err(TypeError::Unknown("nope".into()))
        );
    }
}
