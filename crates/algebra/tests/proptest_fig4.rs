//! Property tests validating fig. 4 of the paper: for every relational
//! operator, the partial differentials compute the exact delta of the
//! operator's result under random base data and random updates.
//!
//! * Per-row tests: each operator applied directly to two base relations
//!   (the exact setting of fig. 4) must be **exact even without
//!   correction checks** — except π, whose raw differentials
//!   over-approximate (that is §7.2's point).
//! * Whole-calculus test: for random *nested* expressions, `Strict`
//!   correction equals naive recomputation, and raw differentials are
//!   *complete* (never miss a real change).

use amos_types::FxHashSet as HashSet;

use amos_algebra::diff::{delta_of, diff_expr, recompute_delta, Correction, Polarity};
use amos_algebra::predicate::CmpOp;
use amos_algebra::{AlgebraDb, Predicate, RelExpr};
use amos_types::{tuple, Tuple};
use proptest::prelude::*;

fn small_tuple() -> impl Strategy<Value = Tuple> {
    (0i64..5, 0i64..5).prop_map(|(a, b)| tuple![a, b])
}

fn tuples() -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(small_tuple(), 0..10)
}

fn updates() -> impl Strategy<Value = Vec<(bool, bool, Tuple)>> {
    // (which relation: q/r, insert/delete, tuple)
    prop::collection::vec((any::<bool>(), any::<bool>(), small_tuple()), 0..12)
}

/// Build the database, apply updates, and return it.
fn build(q: Vec<Tuple>, r: Vec<Tuple>, ups: Vec<(bool, bool, Tuple)>) -> AlgebraDb {
    let mut db = AlgebraDb::new();
    db.set_relation("q", q);
    db.set_relation("r", r);
    for (on_q, is_insert, t) in ups {
        let name = if on_q { "q" } else { "r" };
        if is_insert {
            db.insert(name, t);
        } else {
            db.delete(name, &t);
        }
    }
    db
}

/// Operators whose raw fig. 4 differentials are exact (everything except π).
fn exact_operators() -> Vec<(&'static str, RelExpr)> {
    let q = || Box::new(RelExpr::rel("q", 2));
    let r = || Box::new(RelExpr::rel("r", 2));
    vec![
        (
            "select",
            RelExpr::Select(q(), Predicate::col_col(0, CmpOp::Lt, 1)),
        ),
        ("union", RelExpr::Union(q(), r())),
        ("diff", RelExpr::Diff(q(), r())),
        ("product", RelExpr::Product(q(), r())),
        ("join", RelExpr::Join(q(), r(), vec![(1, 0)])),
        ("intersect", RelExpr::Intersect(q(), r())),
    ]
}

proptest! {
    /// fig. 4 rows σ, ∪, −, ×, ⋈, ∩: raw differentials (no correction)
    /// are already exact when applied directly over base relations.
    #[test]
    fn fig4_rows_exact_without_correction(
        q in tuples(), r in tuples(), ups in updates()
    ) {
        let db = build(q, r, ups);
        for (name, expr) in exact_operators() {
            let raw = delta_of(&expr, &db, Correction::None);
            let truth = recompute_delta(&expr, &db);
            prop_assert_eq!(&raw, &truth, "operator {} diverged", name);
        }
    }

    /// fig. 4 row π: raw differentials are complete but may over-report;
    /// Strict correction restores exactness.
    #[test]
    fn fig4_projection_row(q in tuples(), ups in updates()) {
        let db = build(q, vec![], ups);
        let expr = RelExpr::Project(Box::new(RelExpr::rel("q", 2)), vec![0]);
        let truth = recompute_delta(&expr, &db);

        // Completeness of the raw contributions (pre-∪Δ): collect raw sides.
        let diffs = diff_expr(&expr);
        let mut raw_plus: HashSet<Tuple> = HashSet::default();
        let mut raw_minus: HashSet<Tuple> = HashSet::default();
        for pd in &diffs {
            match pd.output {
                Polarity::Plus => raw_plus.extend(pd.expr.eval(&db)),
                Polarity::Minus => raw_minus.extend(pd.expr.eval(&db)),
            }
        }
        prop_assert!(truth.plus().is_subset(&raw_plus));
        prop_assert!(truth.minus().is_subset(&raw_minus));

        let strict = delta_of(&expr, &db, Correction::Strict);
        prop_assert_eq!(&strict, &truth);
    }

    /// Whole-calculus theorem on nested expressions: Strict == naive
    /// recompute; Negative correction never under-reports deletions nor
    /// reports false insertions.
    #[test]
    fn nested_expressions_strict_is_exact(
        q in tuples(), r in tuples(), ups in updates(), shape in 0u8..6
    ) {
        let db = build(q, r, ups);
        let q2 = || Box::new(RelExpr::rel("q", 2));
        let r2 = || Box::new(RelExpr::rel("r", 2));
        let expr = match shape {
            // π over join — the paper's running p(X,Z) ← q(X,Y) ∧ r(Y,Z)
            0 => RelExpr::Project(
                Box::new(RelExpr::Join(q2(), r2(), vec![(1, 0)])),
                vec![0, 3],
            ),
            // (q ∪ r) − σ(q)
            1 => RelExpr::Diff(
                Box::new(RelExpr::Union(q2(), r2())),
                Box::new(RelExpr::Select(q2(), Predicate::col_col(0, CmpOp::Le, 1))),
            ),
            // π(q × r)
            2 => RelExpr::Project(Box::new(RelExpr::Product(q2(), r2())), vec![0, 2]),
            // (q ∩ r) ∪ (q − r)  — equals q, with heavy overlap
            3 => RelExpr::Union(
                Box::new(RelExpr::Intersect(q2(), r2())),
                Box::new(RelExpr::Diff(q2(), r2())),
            ),
            // σ(π(q) × π(r))
            4 => RelExpr::Select(
                Box::new(RelExpr::Product(
                    Box::new(RelExpr::Project(q2(), vec![0])),
                    Box::new(RelExpr::Project(r2(), vec![1])),
                )),
                Predicate::col_col(0, CmpOp::Lt, 1),
            ),
            // q − (r − q): double negation
            _ => RelExpr::Diff(q2(), Box::new(RelExpr::Diff(r2(), q2()))),
        };

        let truth = recompute_delta(&expr, &db);
        let strict = delta_of(&expr, &db, Correction::Strict);
        prop_assert_eq!(&strict, &truth, "expr {}", expr);

        // Negative correction: reported deletions are real; reported
        // insertions are at least present in the new state.
        let negative = delta_of(&expr, &db, Correction::Negative);
        for t in negative.minus() {
            prop_assert!(truth.minus().contains(t) , "false deletion {t} from {expr}");
        }
        for t in truth.minus() {
            prop_assert!(negative.minus().contains(t), "missed deletion {t} from {expr}");
        }
        for t in truth.plus() {
            prop_assert!(negative.plus().contains(t), "missed insertion {t} from {expr}");
        }
    }

    /// Insertion-only transactions never produce negative deltas through
    /// monotone operators (σ, π, ∪, ×, ⋈, ∩) — the basis for the paper's
    /// observation that conditions often depend only on insertions.
    #[test]
    fn monotone_operators_with_insert_only_updates(
        q in tuples(), r in tuples(),
        ins in prop::collection::vec((any::<bool>(), small_tuple()), 0..8)
    ) {
        let mut db = AlgebraDb::new();
        db.set_relation("q", q);
        db.set_relation("r", r);
        for (on_q, t) in ins {
            db.insert(if on_q { "q" } else { "r" }, t);
        }
        for (name, expr) in exact_operators() {
            if name == "diff" {
                continue; // − is not monotone in its right operand
            }
            let d = delta_of(&expr, &db, Correction::Strict);
            prop_assert!(d.minus().is_empty(), "{} produced deletions", name);
        }
        let pi = RelExpr::Project(Box::new(RelExpr::rel("q", 2)), vec![1]);
        prop_assert!(delta_of(&pi, &db, Correction::Strict).minus().is_empty());
    }
}
