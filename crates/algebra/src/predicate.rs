//! Selection predicates for σ.

use std::fmt;

use amos_types::{Tuple, Value};

pub use amos_types::CmpOp;

/// One side of a comparison: a column reference or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// `t[i]`
    Col(usize),
    /// A literal value.
    Const(Value),
}

impl Operand {
    fn resolve<'a>(&'a self, t: &'a Tuple) -> &'a Value {
        match self {
            Operand::Col(i) => &t[*i],
            Operand::Const(v) => v,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Col(i) => write!(f, "${i}"),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// A selection predicate over a single tuple.
///
/// Comparisons on incomparable runtime types evaluate to `false` (a σ
/// never errors; mixed-type relations simply don't satisfy numeric
/// conditions), matching set-oriented query semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true (σ_true = identity).
    True,
    /// `lhs op rhs`.
    Cmp(Operand, CmpOp, Operand),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `t[col] op value`.
    pub fn col_const(col: usize, op: CmpOp, v: impl Into<Value>) -> Self {
        Predicate::Cmp(Operand::Col(col), op, Operand::Const(v.into()))
    }

    /// `t[a] op t[b]`.
    pub fn col_col(a: usize, op: CmpOp, b: usize) -> Self {
        Predicate::Cmp(Operand::Col(a), op, Operand::Col(b))
    }

    /// Evaluate the predicate on a tuple.
    pub fn eval(&self, t: &Tuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp(lhs, op, rhs) => match lhs.resolve(t).compare(rhs.resolve(t)) {
                Ok(ord) => op.matches(ord),
                Err(_) => false,
            },
            Predicate::And(a, b) => a.eval(t) && b.eval(t),
            Predicate::Or(a, b) => a.eval(t) || b.eval(t),
            Predicate::Not(p) => !p.eval(t),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
            Predicate::And(a, b) => write!(f, "({a} and {b})"),
            Predicate::Or(a, b) => write!(f, "({a} or {b})"),
            Predicate::Not(p) => write!(f, "not {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    #[test]
    fn comparisons() {
        let t = tuple![3, 5];
        assert!(Predicate::col_const(0, CmpOp::Lt, 5).eval(&t));
        assert!(Predicate::col_col(0, CmpOp::Lt, 1).eval(&t));
        assert!(!Predicate::col_col(0, CmpOp::Ge, 1).eval(&t));
        assert!(Predicate::col_const(1, CmpOp::Eq, 5).eval(&t));
        assert!(Predicate::col_const(1, CmpOp::Ne, 6).eval(&t));
    }

    #[test]
    fn connectives() {
        let t = tuple![3, 5];
        let p = Predicate::And(
            Box::new(Predicate::col_const(0, CmpOp::Gt, 1)),
            Box::new(Predicate::col_const(1, CmpOp::Lt, 10)),
        );
        assert!(p.eval(&t));
        assert!(!Predicate::Not(Box::new(p.clone())).eval(&t));
        let q = Predicate::Or(
            Box::new(Predicate::col_const(0, CmpOp::Gt, 100)),
            Box::new(p),
        );
        assert!(q.eval(&t));
    }

    #[test]
    fn incomparable_types_are_false() {
        let t = tuple![3, "x"];
        assert!(!Predicate::col_col(0, CmpOp::Lt, 1).eval(&t));
        assert!(!Predicate::col_col(0, CmpOp::Eq, 1).eval(&t));
    }

    #[test]
    fn display() {
        let p = Predicate::And(
            Box::new(Predicate::col_const(0, CmpOp::Lt, 5)),
            Box::new(Predicate::True),
        );
        assert_eq!(p.to_string(), "($0 < 5 and true)");
    }
}
