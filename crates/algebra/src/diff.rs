//! Partial differencing of relational-algebra expressions (fig. 4).
//!
//! For an expression `P` and each *influent* base relation `X`, partial
//! differencing produces small queries — **partial differentials** —
//! that compute the contribution of `Δ₊X` / `Δ₋X` to `Δ₊P` / `Δ₋P`.
//! Positive contributions evaluate side operands in the *new* state;
//! negative contributions in the *old* state (logical rollback), exactly
//! per fig. 4:
//!
//! | P | → Δ₊P | → Δ₋P |
//! |---|-------|-------|
//! | σ_c Q | σ_c Δ₊Q | σ_c Δ₋Q |
//! | π_a Q | π_a Δ₊Q | π_a Δ₋Q |
//! | Q ∪ R | Δ₊Q − R_old, Δ₊R − Q_old | Δ₋Q − R, Δ₋R − Q |
//! | Q − R | Δ₊Q − R, Q ∩ Δ₋R | Δ₋Q − R_old, Q_old ∩ Δ₊R |
//! | Q × R | Δ₊Q × R, Q × Δ₊R | Δ₋Q × R_old, Q_old × Δ₋R |
//! | Q ⋈ R | Δ₊Q ⋈ R, Q ⋈ Δ₊R | Δ₋Q ⋈ R_old, Q_old ⋈ Δ₋R |
//! | Q ∩ R | Δ₊Q ∩ R, Q ∩ Δ₊R | Δ₋Q ∩ R_old, Q_old ∩ Δ₋R |
//!
//! The implementation is *compositional*: the table's `Δ₊Q` slot is
//! filled recursively with Q's own partial differentials, so arbitrarily
//! nested expressions difference into a flat list of differentials, one
//! per (influent occurrence, polarity).
//!
//! Projection (and unions deriving the same tuple twice) make raw
//! differentials over-approximate. §7.2's correction checks are exposed
//! as [`Correction`]: `Negative` verifies candidate deletions against the
//! new state (mandatory for correct triggering — under-reaction is
//! unacceptable), `Strict` additionally verifies candidate insertions
//! against the old state (false→true transitions only).

use amos_types::FxHashSet as HashSet;
use std::fmt;

pub use amos_storage::Polarity;
use amos_storage::{DeltaSet, StateEpoch};
use amos_types::Tuple;

use crate::db::AlgebraDb;
use crate::expr::RelExpr;
use crate::predicate::Predicate;

/// A differential query: a chain from a Δ-set seed up through the
/// operators of the original expression, with side operands evaluated as
/// full expressions in a fixed state epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffExpr {
    /// The seed: `Δ₊X` or `Δ₋X` of a base relation.
    Delta(String, Polarity),
    /// σ over the chain.
    Select(Box<DiffExpr>, Predicate),
    /// π over the chain.
    Project(Box<DiffExpr>, Vec<usize>),
    /// `chain − other@epoch` (anti-semijoin against a side operand).
    Minus(Box<DiffExpr>, RelExpr, StateEpoch),
    /// `chain ∩ other@epoch` (semijoin against a side operand).
    Intersect(Box<DiffExpr>, RelExpr, StateEpoch),
    /// `chain × other@epoch` (chain on the left).
    ProductL(Box<DiffExpr>, RelExpr, StateEpoch),
    /// `other@epoch × chain` (chain on the right).
    ProductR(RelExpr, StateEpoch, Box<DiffExpr>),
    /// `chain ⋈ other@epoch`.
    JoinL(Box<DiffExpr>, RelExpr, StateEpoch, Vec<(usize, usize)>),
    /// `other@epoch ⋈ chain`.
    JoinR(RelExpr, StateEpoch, Box<DiffExpr>, Vec<(usize, usize)>),
}

impl DiffExpr {
    /// Evaluate the differential against the database's Δ-sets and
    /// relation states. The chain is seeded by a (small) Δ-set, so side
    /// operands of −/∩ are probed point-wise rather than evaluated in
    /// full — the "optimizer assumes few changes to a single influent".
    pub fn eval(&self, db: &AlgebraDb) -> HashSet<Tuple> {
        match self {
            DiffExpr::Delta(x, Polarity::Plus) => db.delta_plus(x),
            DiffExpr::Delta(x, Polarity::Minus) => db.delta_minus(x),
            DiffExpr::Select(d, pred) => d.eval(db).into_iter().filter(|t| pred.eval(t)).collect(),
            DiffExpr::Project(d, cols) => d.eval(db).into_iter().map(|t| t.project(cols)).collect(),
            DiffExpr::Minus(d, other, epoch) => d
                .eval(db)
                .into_iter()
                .filter(|t| !other.contains(db, t, *epoch))
                .collect(),
            DiffExpr::Intersect(d, other, epoch) => d
                .eval(db)
                .into_iter()
                .filter(|t| other.contains(db, t, *epoch))
                .collect(),
            DiffExpr::ProductL(d, other, epoch) => {
                let seed = d.eval(db);
                if seed.is_empty() {
                    return HashSet::default();
                }
                let side = other.eval(db, *epoch);
                let mut out =
                    HashSet::with_capacity_and_hasher(seed.len() * side.len(), Default::default());
                for a in &seed {
                    for b in &side {
                        out.insert(a.concat(b));
                    }
                }
                out
            }
            DiffExpr::ProductR(other, epoch, d) => {
                let seed = d.eval(db);
                if seed.is_empty() {
                    return HashSet::default();
                }
                let side = other.eval(db, *epoch);
                let mut out =
                    HashSet::with_capacity_and_hasher(seed.len() * side.len(), Default::default());
                for b in &seed {
                    for a in &side {
                        out.insert(a.concat(b));
                    }
                }
                out
            }
            DiffExpr::JoinL(d, other, epoch, on) => {
                let seed = d.eval(db);
                if seed.is_empty() {
                    return HashSet::default();
                }
                let side = other.eval(db, *epoch);
                let mut out = HashSet::default();
                for a in &seed {
                    for b in &side {
                        if on.iter().all(|&(qa, rb)| a[qa] == b[rb]) {
                            out.insert(a.concat(b));
                        }
                    }
                }
                out
            }
            DiffExpr::JoinR(other, epoch, d, on) => {
                let seed = d.eval(db);
                if seed.is_empty() {
                    return HashSet::default();
                }
                let side = other.eval(db, *epoch);
                let mut out = HashSet::default();
                for b in &seed {
                    for a in &side {
                        if on.iter().all(|&(qa, rb)| a[qa] == b[rb]) {
                            out.insert(a.concat(b));
                        }
                    }
                }
                out
            }
        }
    }

    /// The influent base relation this differential's seed reads.
    pub fn influent(&self) -> (&str, Polarity) {
        match self {
            DiffExpr::Delta(x, p) => (x, *p),
            DiffExpr::Select(d, _)
            | DiffExpr::Project(d, _)
            | DiffExpr::Minus(d, _, _)
            | DiffExpr::Intersect(d, _, _)
            | DiffExpr::ProductL(d, _, _)
            | DiffExpr::JoinL(d, _, _, _) => d.influent(),
            DiffExpr::ProductR(_, _, d) | DiffExpr::JoinR(_, _, d, _) => d.influent(),
        }
    }
}

impl fmt::Display for DiffExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ep(e: StateEpoch) -> &'static str {
            match e {
                StateEpoch::New => "",
                StateEpoch::Old => "_old",
            }
        }
        match self {
            DiffExpr::Delta(x, p) => write!(f, "{p}{x}"),
            DiffExpr::Select(d, p) => write!(f, "σ[{p}]({d})"),
            DiffExpr::Project(d, cols) => write!(f, "π{cols:?}({d})"),
            DiffExpr::Minus(d, o, e) => write!(f, "({d} − {o}{})", ep(*e)),
            DiffExpr::Intersect(d, o, e) => write!(f, "({d} ∩ {o}{})", ep(*e)),
            DiffExpr::ProductL(d, o, e) => write!(f, "({d} × {o}{})", ep(*e)),
            DiffExpr::ProductR(o, e, d) => write!(f, "({o}{} × {d})", ep(*e)),
            DiffExpr::JoinL(d, o, e, on) => write!(f, "({d} ⋈{on:?} {o}{})", ep(*e)),
            DiffExpr::JoinR(o, e, d, on) => write!(f, "({o}{} ⋈{on:?} {d})", ep(*e)),
        }
    }
}

/// One partial differential of an expression `P`: the contribution of one
/// polarity of one influent occurrence to one side of `ΔP`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialDifferential {
    /// The base relation whose Δ-set seeds this differential.
    pub influent: String,
    /// Which side of the influent's Δ-set is consumed.
    pub seed: Polarity,
    /// Which side of `ΔP` this differential contributes to. Differs from
    /// `seed` under set difference: deletions from `R` *insert* into
    /// `Q − R`.
    pub output: Polarity,
    /// The differential query.
    pub expr: DiffExpr,
}

impl fmt::Display for PartialDifferential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ΔP/{}{} ⇒ {}: {}",
            self.seed, self.influent, self.output, self.expr
        )
    }
}

/// Generate all partial differentials of `expr`, one per (influent
/// occurrence, polarity), in deterministic left-to-right order.
pub fn diff_expr(expr: &RelExpr) -> Vec<PartialDifferential> {
    let mut out = Vec::new();
    diff_rec(expr, &mut out);
    out
}

/// Wrap every differential in `from..` with `f` applied to its chain.
fn wrap(out: &mut [PartialDifferential], from: usize, f: impl Fn(DiffExpr) -> DiffExpr) {
    for pd in &mut out[from..] {
        let chain = std::mem::replace(&mut pd.expr, DiffExpr::Delta(String::new(), Polarity::Plus));
        pd.expr = f(chain);
    }
}

fn diff_rec(expr: &RelExpr, out: &mut Vec<PartialDifferential>) {
    match expr {
        RelExpr::Rel(name, _) => {
            out.push(PartialDifferential {
                influent: name.clone(),
                seed: Polarity::Plus,
                output: Polarity::Plus,
                expr: DiffExpr::Delta(name.clone(), Polarity::Plus),
            });
            out.push(PartialDifferential {
                influent: name.clone(),
                seed: Polarity::Minus,
                output: Polarity::Minus,
                expr: DiffExpr::Delta(name.clone(), Polarity::Minus),
            });
        }
        RelExpr::Select(q, pred) => {
            let from = out.len();
            diff_rec(q, out);
            wrap(out, from, |d| DiffExpr::Select(Box::new(d), pred.clone()));
        }
        RelExpr::Project(q, cols) => {
            let from = out.len();
            diff_rec(q, out);
            wrap(out, from, |d| DiffExpr::Project(Box::new(d), cols.clone()));
        }
        RelExpr::Union(q, r) => {
            // Δ₊Q − R_old / Δ₋Q − R, and symmetrically for R.
            let from = out.len();
            diff_rec(q, out);
            for pd in &mut out[from..] {
                let chain =
                    std::mem::replace(&mut pd.expr, DiffExpr::Delta(String::new(), Polarity::Plus));
                let epoch = match pd.output {
                    Polarity::Plus => StateEpoch::Old,
                    Polarity::Minus => StateEpoch::New,
                };
                pd.expr = DiffExpr::Minus(Box::new(chain), (**r).clone(), epoch);
            }
            let from = out.len();
            diff_rec(r, out);
            for pd in &mut out[from..] {
                let chain =
                    std::mem::replace(&mut pd.expr, DiffExpr::Delta(String::new(), Polarity::Plus));
                let epoch = match pd.output {
                    Polarity::Plus => StateEpoch::Old,
                    Polarity::Minus => StateEpoch::New,
                };
                pd.expr = DiffExpr::Minus(Box::new(chain), (**q).clone(), epoch);
            }
        }
        RelExpr::Diff(q, r) => {
            // Q side keeps its polarity: Δ₊Q − R (new), Δ₋Q − R_old.
            let from = out.len();
            diff_rec(q, out);
            for pd in &mut out[from..] {
                let chain =
                    std::mem::replace(&mut pd.expr, DiffExpr::Delta(String::new(), Polarity::Plus));
                let epoch = match pd.output {
                    Polarity::Plus => StateEpoch::New,
                    Polarity::Minus => StateEpoch::Old,
                };
                pd.expr = DiffExpr::Minus(Box::new(chain), (**r).clone(), epoch);
            }
            // R side flips polarity: Q ∩ Δ₋R inserts, Q_old ∩ Δ₊R deletes.
            let from = out.len();
            diff_rec(r, out);
            for pd in &mut out[from..] {
                let chain =
                    std::mem::replace(&mut pd.expr, DiffExpr::Delta(String::new(), Polarity::Plus));
                let (output, epoch) = match pd.output {
                    // insertion into R ⇒ deletion from P, other side old
                    Polarity::Plus => (Polarity::Minus, StateEpoch::Old),
                    // deletion from R ⇒ insertion into P, other side new
                    Polarity::Minus => (Polarity::Plus, StateEpoch::New),
                };
                pd.output = output;
                pd.expr = DiffExpr::Intersect(Box::new(chain), (**q).clone(), epoch);
            }
        }
        RelExpr::Product(q, r) => {
            let from = out.len();
            diff_rec(q, out);
            for pd in &mut out[from..] {
                let chain =
                    std::mem::replace(&mut pd.expr, DiffExpr::Delta(String::new(), Polarity::Plus));
                let epoch = match pd.output {
                    Polarity::Plus => StateEpoch::New,
                    Polarity::Minus => StateEpoch::Old,
                };
                pd.expr = DiffExpr::ProductL(Box::new(chain), (**r).clone(), epoch);
            }
            let from = out.len();
            diff_rec(r, out);
            for pd in &mut out[from..] {
                let chain =
                    std::mem::replace(&mut pd.expr, DiffExpr::Delta(String::new(), Polarity::Plus));
                let epoch = match pd.output {
                    Polarity::Plus => StateEpoch::New,
                    Polarity::Minus => StateEpoch::Old,
                };
                pd.expr = DiffExpr::ProductR((**q).clone(), epoch, Box::new(chain));
            }
        }
        RelExpr::Join(q, r, on) => {
            let from = out.len();
            diff_rec(q, out);
            for pd in &mut out[from..] {
                let chain =
                    std::mem::replace(&mut pd.expr, DiffExpr::Delta(String::new(), Polarity::Plus));
                let epoch = match pd.output {
                    Polarity::Plus => StateEpoch::New,
                    Polarity::Minus => StateEpoch::Old,
                };
                pd.expr = DiffExpr::JoinL(Box::new(chain), (**r).clone(), epoch, on.clone());
            }
            let from = out.len();
            diff_rec(r, out);
            for pd in &mut out[from..] {
                let chain =
                    std::mem::replace(&mut pd.expr, DiffExpr::Delta(String::new(), Polarity::Plus));
                let epoch = match pd.output {
                    Polarity::Plus => StateEpoch::New,
                    Polarity::Minus => StateEpoch::Old,
                };
                pd.expr = DiffExpr::JoinR((**q).clone(), epoch, Box::new(chain), on.clone());
            }
        }
        RelExpr::Intersect(q, r) => {
            let from = out.len();
            diff_rec(q, out);
            for pd in &mut out[from..] {
                let chain =
                    std::mem::replace(&mut pd.expr, DiffExpr::Delta(String::new(), Polarity::Plus));
                let epoch = match pd.output {
                    Polarity::Plus => StateEpoch::New,
                    Polarity::Minus => StateEpoch::Old,
                };
                pd.expr = DiffExpr::Intersect(Box::new(chain), (**r).clone(), epoch);
            }
            let from = out.len();
            diff_rec(r, out);
            for pd in &mut out[from..] {
                let chain =
                    std::mem::replace(&mut pd.expr, DiffExpr::Delta(String::new(), Polarity::Plus));
                let epoch = match pd.output {
                    Polarity::Plus => StateEpoch::New,
                    Polarity::Minus => StateEpoch::Old,
                };
                pd.expr = DiffExpr::Intersect(Box::new(chain), (**q).clone(), epoch);
            }
        }
    }
}

/// §7.2 correction level for assembling `ΔP` from raw differentials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Correction {
    /// Raw fig. 4 differentials, no checks. May over-report both sides
    /// (and, through `∪Δ` cancellation, under-react) when projections or
    /// unions derive a tuple from several sources.
    None,
    /// Verify every candidate against the new state: deletions must be
    /// absent, insertions present. This is the paper's mandatory check
    /// ("the rules might under-react, which is unacceptable") and the
    /// default — suitable for *nervous* rule semantics.
    #[default]
    Negative,
    /// Additionally verify against the old state: insertions must be
    /// absent (false→true only), deletions present. Yields the exact
    /// `<P_new − P_old, P_old − P_new>` — *strict* rule semantics.
    Strict,
}

/// Evaluate all partial differentials of `expr` and assemble `ΔP`.
///
/// Raw contributions are collected per output polarity, filtered per the
/// chosen [`Correction`], and finally folded with `∪Δ`.
pub fn delta_of(expr: &RelExpr, db: &AlgebraDb, correction: Correction) -> DeltaSet {
    let diffs = diff_expr(expr);
    delta_from_differentials(expr, &diffs, db, correction)
}

/// Assemble `ΔP` from pre-generated differentials (lets callers cache
/// [`diff_expr`] output across transactions, as the rule compiler does).
pub fn delta_from_differentials(
    expr: &RelExpr,
    diffs: &[PartialDifferential],
    db: &AlgebraDb,
    correction: Correction,
) -> DeltaSet {
    let mut plus: HashSet<Tuple> = HashSet::default();
    let mut minus: HashSet<Tuple> = HashSet::default();
    for pd in diffs {
        let result = pd.expr.eval(db);
        match pd.output {
            Polarity::Plus => plus.extend(result),
            Polarity::Minus => minus.extend(result),
        }
    }
    match correction {
        Correction::None => {}
        Correction::Negative => {
            plus.retain(|t| expr.contains(db, t, StateEpoch::New));
            minus.retain(|t| !expr.contains(db, t, StateEpoch::New));
        }
        Correction::Strict => {
            plus.retain(|t| {
                expr.contains(db, t, StateEpoch::New) && !expr.contains(db, t, StateEpoch::Old)
            });
            minus.retain(|t| {
                !expr.contains(db, t, StateEpoch::New) && expr.contains(db, t, StateEpoch::Old)
            });
        }
    }
    // Fold with ∪Δ; under None the sides may overlap and cancel — the
    // behaviour the paper warns about, preserved for study.
    let mut ds = DeltaSet::new();
    for t in plus {
        ds.delta_union_insert(t);
    }
    for t in minus {
        ds.delta_union_delete(t);
    }
    ds
}

/// Ground truth: recompute `ΔP` as `<P_new − P_old, P_old − P_new>` by
/// full evaluation in both states (the "naive" method of §6).
pub fn recompute_delta(expr: &RelExpr, db: &AlgebraDb) -> DeltaSet {
    let new = expr.eval(db, StateEpoch::New);
    let old = expr.eval(db, StateEpoch::Old);
    DeltaSet::from_parts(
        new.difference(&old).cloned().collect(),
        old.difference(&new).cloned().collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    /// The §4.3 worked example: p(X,Z) ← q(X,Y) ∧ r(Y,Z), insertions only.
    #[test]
    fn section_4_3_positive_example() {
        let mut db = AlgebraDb::new();
        db.set_relation("q", [tuple![1, 1]]);
        db.set_relation("r", [tuple![1, 2], tuple![2, 3]]);

        // p = π[0,3](q ⋈ r on q.1 = r.0)
        let p = RelExpr::Project(
            Box::new(RelExpr::Join(
                Box::new(RelExpr::rel("q", 2)),
                Box::new(RelExpr::rel("r", 2)),
                vec![(1, 0)],
            )),
            vec![0, 3],
        );
        assert_eq!(
            p.eval(&db, StateEpoch::New),
            [tuple![1, 2]].into_iter().collect()
        );

        // assert q(1,2), assert r(1,4)
        db.insert("q", tuple![1, 2]);
        db.insert("r", tuple![1, 4]);

        let dp = delta_of(&p, &db, Correction::Negative);
        assert_eq!(
            dp.plus(),
            &[tuple![1, 3], tuple![1, 4]]
                .into_iter()
                .collect::<HashSet<_>>()
        );
        assert!(dp.minus().is_empty());
    }

    /// The §4.4 worked example with deletions: old state used for q in
    /// Δp/Δ₋r, otherwise Δ₋p would wrongly contain (1,3).
    #[test]
    fn section_4_4_negative_example() {
        let mut db = AlgebraDb::new();
        db.set_relation("q", [tuple![1, 1]]);
        db.set_relation("r", [tuple![1, 2], tuple![2, 3]]);
        let p = RelExpr::Project(
            Box::new(RelExpr::Join(
                Box::new(RelExpr::rel("q", 2)),
                Box::new(RelExpr::rel("r", 2)),
                vec![(1, 0)],
            )),
            vec![0, 3],
        );

        // assert q(1,2), assert r(1,4), retract r(1,2), retract r(2,3)
        db.insert("q", tuple![1, 2]);
        db.insert("r", tuple![1, 4]);
        db.delete("r", &tuple![1, 2]);
        db.delete("r", &tuple![2, 3]);

        let dp = delta_of(&p, &db, Correction::Negative);
        assert_eq!(
            dp.plus(),
            &[tuple![1, 4]].into_iter().collect::<HashSet<_>>()
        );
        assert_eq!(
            dp.minus(),
            &[tuple![1, 2]].into_iter().collect::<HashSet<_>>(),
            "without old-state evaluation this would wrongly include (1,3)"
        );
    }

    /// Demonstrate the failure mode the paper warns about: evaluating the
    /// *new* state of q in Δp/Δ₋r would yield the wrong Δ₋p = {(1,2),(1,3)}.
    #[test]
    fn new_state_in_negative_differential_is_wrong() {
        let mut db = AlgebraDb::new();
        db.set_relation("q", [tuple![1, 1]]);
        db.set_relation("r", [tuple![1, 2], tuple![2, 3]]);
        db.insert("q", tuple![1, 2]);
        db.insert("r", tuple![1, 4]);
        db.delete("r", &tuple![1, 2]);
        db.delete("r", &tuple![2, 3]);

        // Hand-build the *incorrect* differential: q evaluated new.
        let wrong = DiffExpr::Project(
            Box::new(DiffExpr::JoinR(
                RelExpr::rel("q", 2),
                StateEpoch::New, // should be Old
                Box::new(DiffExpr::Delta("r".into(), Polarity::Minus)),
                vec![(1, 0)],
            )),
            vec![0, 3],
        );
        let result = wrong.eval(&db);
        assert_eq!(
            result,
            [tuple![1, 2], tuple![1, 3]].into_iter().collect(),
            "the naive new-state evaluation over-reports (1,3), as §4.4 shows"
        );
    }

    #[test]
    fn differential_count_and_tagging() {
        // P = (q ∪ r) − s has 3 influents, 2 polarities each.
        let p = RelExpr::Diff(
            Box::new(RelExpr::Union(
                Box::new(RelExpr::rel("q", 1)),
                Box::new(RelExpr::rel("r", 1)),
            )),
            Box::new(RelExpr::rel("s", 1)),
        );
        let diffs = diff_expr(&p);
        assert_eq!(diffs.len(), 6);
        // s's polarities flip through the difference.
        let s_plus: Vec<_> = diffs
            .iter()
            .filter(|d| d.influent == "s" && d.seed == Polarity::Plus)
            .collect();
        assert_eq!(s_plus.len(), 1);
        assert_eq!(s_plus[0].output, Polarity::Minus);
    }

    #[test]
    fn strict_correction_is_exact_under_projection() {
        // P = π[0](q): deleting (1,1) while (1,2) remains must NOT delete
        // π-tuple (1).
        let mut db = AlgebraDb::new();
        db.set_relation("q", [tuple![1, 1], tuple![1, 2]]);
        let p = RelExpr::Project(Box::new(RelExpr::rel("q", 2)), vec![0]);
        db.delete("q", &tuple![1, 1]);

        let raw = delta_of(&p, &db, Correction::None);
        assert!(
            raw.minus().contains(&tuple![1]),
            "raw differential over-reports the deletion"
        );
        let strict = delta_of(&p, &db, Correction::Strict);
        assert!(strict.is_empty(), "P did not actually change");
        assert_eq!(strict, recompute_delta(&p, &db));
    }

    #[test]
    fn negative_correction_prevents_under_reaction() {
        // π over q: insert (2,1) and delete (1,1) — π result gains (2)
        // and keeps (1) if (1,2) remains.
        let mut db = AlgebraDb::new();
        db.set_relation("q", [tuple![1, 1], tuple![1, 2]]);
        let p = RelExpr::Project(Box::new(RelExpr::rel("q", 2)), vec![0]);
        db.insert("q", tuple![2, 7]);
        db.delete("q", &tuple![1, 1]);

        let corrected = delta_of(&p, &db, Correction::Negative);
        assert!(corrected.plus().contains(&tuple![2]));
        assert!(
            !corrected.minus().contains(&tuple![1]),
            "candidate deletion of (1) filtered: still derivable from (1,2)"
        );
    }
}
