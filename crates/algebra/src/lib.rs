//! # amos-algebra
//!
//! The relational-algebra face of the partial differencing calculus
//! (paper §4.5–§4.6 and fig. 4).
//!
//! The paper maps its set-based difference calculus onto the relational
//! operators: for `P` built from σ, π, ∪, −, ×, ⋈, ∩ over base relations,
//! fig. 4 gives the **partial differentials** — for each influent `X`,
//! the expressions computing the contributions of `Δ₊X`/`Δ₋X` to
//! `Δ₊P`/`Δ₋P`, with sub-expressions evaluated in the *new* or *old*
//! state as required.
//!
//! This crate implements that table *compositionally*: differencing an
//! arbitrarily nested [`RelExpr`] produces one [`PartialDifferential`]
//! per (influent, polarity) pair, each itself a small query
//! ([`DiffExpr`]) over Δ-sets, new-state and old-state sub-expressions.
//! Evaluating all of them and accumulating with `∪Δ` yields `ΔP`.
//!
//! Projection (and, in general, any operator that can derive the same
//! output tuple from several input tuples) makes raw differentials
//! over-approximate; §7.2's correction checks (membership in the new /
//! old state) are available via [`diff::Correction`].
//!
//! The ObjectLog engine (`amos-objectlog`) is what the monitoring system
//! actually executes; this crate is the formal layer used to validate the
//! calculus (property tests per fig. 4 row) and to benchmark incremental
//! vs. recomputed operator deltas.

pub mod db;
pub mod diff;
pub mod expr;
pub mod predicate;

pub use db::AlgebraDb;
pub use diff::{diff_expr, Correction, DiffExpr, PartialDifferential, Polarity};
pub use expr::RelExpr;
pub use predicate::Predicate;
