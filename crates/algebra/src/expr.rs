//! Relational-algebra expressions and their evaluation.
//!
//! The operators are exactly those of fig. 4 of the paper: selection σ,
//! projection π, union ∪, difference −, cartesian product ×, equi-join ⋈,
//! and intersection ∩, over named base relations.

use amos_types::FxHashSet as HashSet;
use std::fmt;

use amos_storage::StateEpoch;
use amos_types::Tuple;

use crate::db::AlgebraDb;
use crate::predicate::Predicate;

/// A relational-algebra expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum RelExpr {
    /// A named base relation with a declared arity.
    Rel(String, usize),
    /// σ_pred
    Select(Box<RelExpr>, Predicate),
    /// π_cols (may reorder and duplicate columns)
    Project(Box<RelExpr>, Vec<usize>),
    /// Q ∪ R — both sides must have equal arity.
    Union(Box<RelExpr>, Box<RelExpr>),
    /// Q − R — both sides must have equal arity.
    Diff(Box<RelExpr>, Box<RelExpr>),
    /// Q × R — concatenated columns.
    Product(Box<RelExpr>, Box<RelExpr>),
    /// Q ⋈ R on pairs `(q_col, r_col)` — concatenated columns, keeping
    /// both join columns (a π can drop duplicates afterwards).
    Join(Box<RelExpr>, Box<RelExpr>, Vec<(usize, usize)>),
    /// Q ∩ R — both sides must have equal arity.
    Intersect(Box<RelExpr>, Box<RelExpr>),
}

impl RelExpr {
    /// Shorthand for a base relation leaf.
    pub fn rel(name: &str, arity: usize) -> Self {
        RelExpr::Rel(name.to_string(), arity)
    }

    /// The output arity of this expression.
    pub fn arity(&self) -> usize {
        match self {
            RelExpr::Rel(_, a) => *a,
            RelExpr::Select(q, _) => q.arity(),
            RelExpr::Project(_, cols) => cols.len(),
            RelExpr::Union(q, _) | RelExpr::Diff(q, _) | RelExpr::Intersect(q, _) => q.arity(),
            RelExpr::Product(q, r) | RelExpr::Join(q, r, _) => q.arity() + r.arity(),
        }
    }

    /// All base-relation names this expression depends on — its
    /// *influents* (paper §1), in first-occurrence order, deduplicated.
    pub fn influents(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_influents(&mut out);
        out
    }

    fn collect_influents(&self, out: &mut Vec<String>) {
        match self {
            RelExpr::Rel(n, _) => {
                if !out.iter().any(|x| x == n) {
                    out.push(n.clone());
                }
            }
            RelExpr::Select(q, _) | RelExpr::Project(q, _) => q.collect_influents(out),
            RelExpr::Union(q, r)
            | RelExpr::Diff(q, r)
            | RelExpr::Intersect(q, r)
            | RelExpr::Product(q, r)
            | RelExpr::Join(q, r, _) => {
                q.collect_influents(out);
                r.collect_influents(out);
            }
        }
    }

    /// Evaluate the expression against the database in the given state
    /// epoch (new, or old via logical rollback of every base leaf).
    pub fn eval(&self, db: &AlgebraDb, epoch: StateEpoch) -> HashSet<Tuple> {
        match self {
            RelExpr::Rel(name, _) => db.state(name, epoch),
            RelExpr::Select(q, pred) => q
                .eval(db, epoch)
                .into_iter()
                .filter(|t| pred.eval(t))
                .collect(),
            RelExpr::Project(q, cols) => q
                .eval(db, epoch)
                .into_iter()
                .map(|t| t.project(cols))
                .collect(),
            RelExpr::Union(q, r) => {
                let mut s = q.eval(db, epoch);
                s.extend(r.eval(db, epoch));
                s
            }
            RelExpr::Diff(q, r) => {
                let rs = r.eval(db, epoch);
                q.eval(db, epoch)
                    .into_iter()
                    .filter(|t| !rs.contains(t))
                    .collect()
            }
            RelExpr::Intersect(q, r) => {
                let rs = r.eval(db, epoch);
                q.eval(db, epoch)
                    .into_iter()
                    .filter(|t| rs.contains(t))
                    .collect()
            }
            RelExpr::Product(q, r) => {
                let rs = r.eval(db, epoch);
                let qs = q.eval(db, epoch);
                let mut out =
                    HashSet::with_capacity_and_hasher(qs.len() * rs.len(), Default::default());
                for a in &qs {
                    for b in &rs {
                        out.insert(a.concat(b));
                    }
                }
                out
            }
            RelExpr::Join(q, r, on) => {
                // Hash join: build on the right operand keyed by its
                // join columns, probe with the left.
                let rs = r.eval(db, epoch);
                let qs = q.eval(db, epoch);
                let r_cols: Vec<usize> = on.iter().map(|&(_, rb)| rb).collect();
                let q_cols: Vec<usize> = on.iter().map(|&(qa, _)| qa).collect();
                let mut built: std::collections::HashMap<Tuple, Vec<&Tuple>> =
                    std::collections::HashMap::with_capacity(rs.len());
                for b in &rs {
                    built.entry(b.project(&r_cols)).or_default().push(b);
                }
                let mut out = HashSet::default();
                for a in &qs {
                    if let Some(matches) = built.get(&a.project(&q_cols)) {
                        for b in matches {
                            out.insert(a.concat(b));
                        }
                    }
                }
                out
            }
        }
    }

    /// Point membership test: is `t` in the result of this expression in
    /// the given epoch? Used by the §7.2 correction checks; cheaper than
    /// full evaluation for selections/compositions but falls back to
    /// evaluation under projections.
    pub fn contains(&self, db: &AlgebraDb, t: &Tuple, epoch: StateEpoch) -> bool {
        match self {
            RelExpr::Rel(name, _) => db.contains(name, t, epoch),
            RelExpr::Select(q, pred) => pred.eval(t) && q.contains(db, t, epoch),
            RelExpr::Project(q, cols) => q.eval(db, epoch).iter().any(|u| &u.project(cols) == t),
            RelExpr::Union(q, r) => q.contains(db, t, epoch) || r.contains(db, t, epoch),
            RelExpr::Diff(q, r) => q.contains(db, t, epoch) && !r.contains(db, t, epoch),
            RelExpr::Intersect(q, r) => q.contains(db, t, epoch) && r.contains(db, t, epoch),
            RelExpr::Product(q, r) => {
                let qa = q.arity();
                let (left, right) = split(t, qa);
                q.contains(db, &left, epoch) && r.contains(db, &right, epoch)
            }
            RelExpr::Join(q, r, on) => {
                let qa = q.arity();
                let (left, right) = split(t, qa);
                on.iter().all(|&(a, b)| left[a] == right[b])
                    && q.contains(db, &left, epoch)
                    && r.contains(db, &right, epoch)
            }
        }
    }
}

fn split(t: &Tuple, at: usize) -> (Tuple, Tuple) {
    let left: Tuple = t.values()[..at].iter().cloned().collect();
    let right: Tuple = t.values()[at..].iter().cloned().collect();
    (left, right)
}

impl fmt::Display for RelExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelExpr::Rel(n, _) => write!(f, "{n}"),
            RelExpr::Select(q, p) => write!(f, "σ[{p}]({q})"),
            RelExpr::Project(q, cols) => write!(f, "π{cols:?}({q})"),
            RelExpr::Union(q, r) => write!(f, "({q} ∪ {r})"),
            RelExpr::Diff(q, r) => write!(f, "({q} − {r})"),
            RelExpr::Intersect(q, r) => write!(f, "({q} ∩ {r})"),
            RelExpr::Product(q, r) => write!(f, "({q} × {r})"),
            RelExpr::Join(q, r, on) => write!(f, "({q} ⋈{on:?} {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use amos_types::tuple;

    fn db() -> AlgebraDb {
        let mut db = AlgebraDb::new();
        db.set_relation("q", [tuple![1, 1], tuple![2, 3]]);
        db.set_relation("r", [tuple![1, 2], tuple![2, 3], tuple![3, 4]]);
        db
    }

    #[test]
    fn select_project() {
        let db = db();
        let e = RelExpr::Project(
            Box::new(RelExpr::Select(
                Box::new(RelExpr::rel("r", 2)),
                Predicate::col_const(0, CmpOp::Ge, 2),
            )),
            vec![1],
        );
        let out = e.eval(&db, StateEpoch::New);
        assert_eq!(out, [tuple![3], tuple![4]].into_iter().collect());
        assert_eq!(e.arity(), 1);
    }

    #[test]
    fn union_diff_intersect() {
        let db = db();
        let q = RelExpr::rel("q", 2);
        let r = RelExpr::rel("r", 2);
        let u = RelExpr::Union(Box::new(q.clone()), Box::new(r.clone()));
        assert_eq!(u.eval(&db, StateEpoch::New).len(), 4);
        let d = RelExpr::Diff(Box::new(q.clone()), Box::new(r.clone()));
        assert_eq!(
            d.eval(&db, StateEpoch::New),
            [tuple![1, 1]].into_iter().collect()
        );
        let i = RelExpr::Intersect(Box::new(q), Box::new(r));
        assert_eq!(
            i.eval(&db, StateEpoch::New),
            [tuple![2, 3]].into_iter().collect()
        );
    }

    #[test]
    fn product_and_join() {
        let db = db();
        let p = RelExpr::Product(
            Box::new(RelExpr::rel("q", 2)),
            Box::new(RelExpr::rel("r", 2)),
        );
        assert_eq!(p.eval(&db, StateEpoch::New).len(), 6);
        assert_eq!(p.arity(), 4);

        // q ⋈ r on q.1 = r.0 — the p(X,Z) ← q(X,Y) ∧ r(Y,Z) example of §4.3.
        let j = RelExpr::Join(
            Box::new(RelExpr::rel("q", 2)),
            Box::new(RelExpr::rel("r", 2)),
            vec![(1, 0)],
        );
        let out = j.eval(&db, StateEpoch::New);
        assert_eq!(
            out,
            [tuple![1, 1, 1, 2], tuple![2, 3, 3, 4]]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn old_state_evaluation() {
        let mut db = db();
        db.insert("q", tuple![9, 9]);
        db.delete("q", &tuple![1, 1]);
        let q = RelExpr::rel("q", 2);
        assert!(q.contains(&db, &tuple![1, 1], StateEpoch::Old));
        assert!(!q.contains(&db, &tuple![9, 9], StateEpoch::Old));
        assert_eq!(q.eval(&db, StateEpoch::Old).len(), 2);
    }

    #[test]
    fn contains_agrees_with_eval() {
        let db = db();
        let exprs = vec![
            RelExpr::Select(
                Box::new(RelExpr::rel("r", 2)),
                Predicate::col_col(0, CmpOp::Lt, 1),
            ),
            RelExpr::Project(Box::new(RelExpr::rel("r", 2)), vec![0]),
            RelExpr::Join(
                Box::new(RelExpr::rel("q", 2)),
                Box::new(RelExpr::rel("r", 2)),
                vec![(1, 0)],
            ),
        ];
        for e in exprs {
            for t in e.eval(&db, StateEpoch::New) {
                assert!(e.contains(&db, &t, StateEpoch::New), "{e}: {t}");
            }
        }
    }

    #[test]
    fn influents_deduplicated() {
        let e = RelExpr::Union(
            Box::new(RelExpr::rel("q", 1)),
            Box::new(RelExpr::Diff(
                Box::new(RelExpr::rel("r", 1)),
                Box::new(RelExpr::rel("q", 1)),
            )),
        );
        assert_eq!(e.influents(), vec!["q".to_string(), "r".to_string()]);
    }
}
