//! A minimal database for the algebra layer: named relations and their
//! transaction Δ-sets.
//!
//! Keeping this separate from [`amos_storage::Storage`] keeps the formal
//! layer self-contained for tests and benchmarks; the real engine drives
//! the ObjectLog evaluator against `Storage` directly.

use std::collections::HashMap;

use amos_types::FxHashSet as HashSet;

use amos_storage::DeltaSet;
use amos_types::Tuple;

use amos_storage::StateEpoch;

/// Named relations with per-relation Δ-sets.
#[derive(Debug, Default, Clone)]
pub struct AlgebraDb {
    rels: HashMap<String, HashSet<Tuple>>,
    deltas: HashMap<String, DeltaSet>,
}

impl AlgebraDb {
    /// An empty database.
    pub fn new() -> Self {
        AlgebraDb::default()
    }

    /// Create (or reset) a relation with the given tuples.
    pub fn set_relation(&mut self, name: &str, tuples: impl IntoIterator<Item = Tuple>) {
        self.rels
            .insert(name.to_string(), tuples.into_iter().collect());
    }

    /// The current (new-state) contents of a relation; empty if unknown.
    pub fn relation(&self, name: &str) -> HashSet<Tuple> {
        self.rels.get(name).cloned().unwrap_or_default()
    }

    /// Apply a physical insert, updating the relation and its Δ-set.
    pub fn insert(&mut self, name: &str, t: Tuple) -> bool {
        if self
            .rels
            .entry(name.to_string())
            .or_default()
            .insert(t.clone())
        {
            self.deltas
                .entry(name.to_string())
                .or_default()
                .apply_insert(t);
            true
        } else {
            false
        }
    }

    /// Apply a physical delete, updating the relation and its Δ-set.
    pub fn delete(&mut self, name: &str, t: &Tuple) -> bool {
        if self
            .rels
            .get_mut(name)
            .map(|s| s.remove(t))
            .unwrap_or(false)
        {
            self.deltas
                .entry(name.to_string())
                .or_default()
                .apply_delete(t.clone());
            true
        } else {
            false
        }
    }

    /// The accumulated Δ-set of a relation (empty if unchanged).
    pub fn delta(&self, name: &str) -> DeltaSet {
        self.deltas.get(name).cloned().unwrap_or_default()
    }

    /// Δ₊ of a relation.
    pub fn delta_plus(&self, name: &str) -> HashSet<Tuple> {
        self.deltas
            .get(name)
            .map(|d| d.plus().clone())
            .unwrap_or_default()
    }

    /// Δ₋ of a relation.
    pub fn delta_minus(&self, name: &str) -> HashSet<Tuple> {
        self.deltas
            .get(name)
            .map(|d| d.minus().clone())
            .unwrap_or_default()
    }

    /// Membership of a base relation in the given epoch.
    pub fn contains(&self, name: &str, t: &Tuple, epoch: StateEpoch) -> bool {
        let now = self.rels.get(name).map(|s| s.contains(t)).unwrap_or(false);
        match epoch {
            StateEpoch::New => now,
            StateEpoch::Old => {
                let d = self.deltas.get(name);
                let in_minus = d.map(|d| d.minus().contains(t)).unwrap_or(false);
                let in_plus = d.map(|d| d.plus().contains(t)).unwrap_or(false);
                (now || in_minus) && !in_plus
            }
        }
    }

    /// The full contents of a base relation in the given epoch
    /// (`S_old = (S ∪ Δ₋S) − Δ₊S`).
    pub fn state(&self, name: &str, epoch: StateEpoch) -> HashSet<Tuple> {
        let now = self.relation(name);
        match epoch {
            StateEpoch::New => now,
            StateEpoch::Old => match self.deltas.get(name) {
                None => now,
                Some(d) => {
                    let mut old: HashSet<Tuple> = now.difference(d.plus()).cloned().collect();
                    old.extend(d.minus().iter().cloned());
                    old
                }
            },
        }
    }

    /// Forget all Δ-sets (start of a new "transaction").
    pub fn clear_deltas(&mut self) {
        self.deltas.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    #[test]
    fn state_reconstruction() {
        let mut db = AlgebraDb::new();
        db.set_relation("q", [tuple![1], tuple![2]]);
        db.insert("q", tuple![3]);
        db.delete("q", &tuple![1]);

        let new = db.state("q", StateEpoch::New);
        let old = db.state("q", StateEpoch::Old);
        assert_eq!(new, [tuple![2], tuple![3]].into_iter().collect());
        assert_eq!(old, [tuple![1], tuple![2]].into_iter().collect());
        assert!(db.contains("q", &tuple![1], StateEpoch::Old));
        assert!(!db.contains("q", &tuple![1], StateEpoch::New));
        assert!(!db.contains("q", &tuple![3], StateEpoch::Old));
    }

    #[test]
    fn no_net_change_cancels() {
        let mut db = AlgebraDb::new();
        db.set_relation("q", [tuple![1]]);
        db.delete("q", &tuple![1]);
        db.insert("q", tuple![1]);
        assert!(db.delta("q").is_empty());
        assert_eq!(
            db.state("q", StateEpoch::Old),
            db.state("q", StateEpoch::New)
        );
    }
}
