//! # amos-bench
//!
//! Workload generators and measurement harnesses regenerating the
//! paper's evaluation (§6):
//!
//! * **fig. 6** — 100 transactions each updating the quantity of one
//!   item, over database sizes 1 → 10 000: incremental monitoring cost
//!   is ~independent of database size, naive is linear.
//! * **fig. 7** — one transaction updating quantity, delivery time and
//!   consume frequency of *all* items (three of the five partial
//!   differentials): incremental is slower than naive by a roughly
//!   constant factor (the paper measured ≈1.6×).
//!
//! Binaries `fig6` and `fig7` print the series; Criterion benches
//! (`benches/`) provide per-operation statistics and the ablation
//! studies (flat vs bushy networks, §7.2 check levels, insertion-only
//! differential scope, hybrid strategy selection).

use amos_core::MonitorMode;
use amos_db::engine::NetworkPrep;
use amos_db::{Amos, EngineOptions, Value};
use amos_storage::RelId;
use amos_types::Oid;

pub mod report;

/// The §3.1 inventory schema and `monitor_items` rule (verbatim).
pub const SCHEMA: &str = r#"
    create type item;
    create type supplier;
    create function quantity(item i) -> integer;
    create function max_stock(item i) -> integer;
    create function min_stock(item i) -> integer;
    create function consume_freq(item i) -> integer;
    create function supplies(supplier s) -> item;
    create function delivery_time(item i, supplier s) -> integer;
    create function threshold(item i) -> integer
        as
        select consume_freq(i) * delivery_time(i, s) + min_stock(i)
        for each supplier s where supplies(s) = i;

    create rule monitor_items() as
        when for each item i
        where quantity(i) < threshold(i)
        do order(i, max_stock(i) - quantity(i));
"#;

/// The paper's inventory world, populated programmatically for a given
/// database size (bypassing the parser so measurements exercise the
/// monitoring machinery, not AMOSQL parsing).
pub struct InventoryWorld {
    /// The engine.
    pub db: Amos,
    /// Item oids, index-addressable.
    pub items: Vec<Oid>,
    /// Supplier oids (one per item, as in the paper's population).
    pub suppliers: Vec<Oid>,
    /// Backing relations for direct (parser-free) updates.
    pub quantity_rel: RelId,
    /// `delivery_time` relation.
    pub delivery_rel: RelId,
    /// `consume_freq` relation.
    pub consume_rel: RelId,
}

impl InventoryWorld {
    /// Build and populate a world with `n_items` items (quantities start
    /// well above threshold so monitoring cost — not rule actions — is
    /// measured), activate `monitor_items`, and set the monitor mode.
    pub fn new(n_items: usize, mode: MonitorMode, prep: NetworkPrep) -> Self {
        let mut db = Amos::with_options(EngineOptions {
            network_prep: prep,
            ..Default::default()
        });
        db.set_monitor_mode(mode);
        db.register_procedure("order", |_ctx, _args| Ok(()));
        db.execute(SCHEMA).expect("schema compiles");
        // The paper's workloads only ever insert items, suppliers, and
        // supplier→item mappings — never delete them. Declaring those
        // relations append-only lets activation prune their always-empty
        // Δ₋ partial differentials from the network (lint pass L004);
        // the pruned count surfaces in `PassMetrics::pruned_differentials`
        // and the BENCH_fig6.json report.
        for f in ["item_extent", "supplier_extent", "supplies"] {
            db.set_append_only(f, true).expect("stored function");
        }

        let catalog = db.catalog();
        let rel = |name: &str| {
            catalog
                .def(catalog.lookup(name).unwrap())
                .stored_rel()
                .unwrap()
        };
        let item_extent = rel("item_extent");
        let supplier_extent = rel("supplier_extent");
        let quantity_rel = rel("quantity");
        let max_rel = rel("max_stock");
        let min_rel = rel("min_stock");
        let consume_rel = rel("consume_freq");
        let supplies_rel = rel("supplies");
        let delivery_rel = rel("delivery_time");

        let mut items = Vec::with_capacity(n_items);
        let mut suppliers = Vec::with_capacity(n_items);
        {
            let storage = db.storage_mut();
            for _ in 0..n_items {
                let item = storage.fresh_oid();
                let sup = storage.fresh_oid();
                items.push(item);
                suppliers.push(sup);
                let iv = Value::Oid(item);
                let sv = Value::Oid(sup);
                storage
                    .insert(item_extent, amos_types::Tuple::new(vec![iv.clone()]))
                    .unwrap();
                storage
                    .insert(supplier_extent, amos_types::Tuple::new(vec![sv.clone()]))
                    .unwrap();
                storage
                    .set_functional(
                        quantity_rel,
                        std::slice::from_ref(&iv),
                        &[Value::Int(10_000)],
                    )
                    .unwrap();
                storage
                    .set_functional(max_rel, std::slice::from_ref(&iv), &[Value::Int(20_000)])
                    .unwrap();
                storage
                    .set_functional(min_rel, std::slice::from_ref(&iv), &[Value::Int(100)])
                    .unwrap();
                storage
                    .set_functional(consume_rel, std::slice::from_ref(&iv), &[Value::Int(20)])
                    .unwrap();
                storage
                    .set_functional(
                        supplies_rel,
                        std::slice::from_ref(&sv),
                        std::slice::from_ref(&iv),
                    )
                    .unwrap();
                storage
                    .set_functional(delivery_rel, &[iv, sv], &[Value::Int(2)])
                    .unwrap();
            }
        }
        db.execute("activate monitor_items();").expect("activate");
        InventoryWorld {
            db,
            items,
            suppliers,
            quantity_rel,
            delivery_rel,
            consume_rel,
        }
    }

    /// One fig. 6 transaction: update the quantity of a single item
    /// (staying above threshold — pure monitoring cost).
    pub fn tx_single_quantity_update(&mut self, item_idx: usize, value: i64) {
        self.db.begin().unwrap();
        let item = Value::Oid(self.items[item_idx]);
        self.db
            .storage_mut()
            .set_functional(self.quantity_rel, &[item], &[Value::Int(value)])
            .unwrap();
        self.db.commit().unwrap();
    }

    /// One fig. 7 transaction: change quantity, delivery time, and
    /// consume frequency of *all* items (three of the five partial
    /// differentials), staying above threshold.
    pub fn tx_massive_update(&mut self, round: i64) {
        self.db.begin().unwrap();
        for idx in 0..self.items.len() {
            let item = Value::Oid(self.items[idx]);
            let sup = Value::Oid(self.suppliers[idx]);
            let storage = self.db.storage_mut();
            storage
                .set_functional(
                    self.quantity_rel,
                    std::slice::from_ref(&item),
                    &[Value::Int(10_000 + round)],
                )
                .unwrap();
            storage
                .set_functional(
                    self.delivery_rel,
                    &[item.clone(), sup],
                    &[Value::Int(2 + (round % 2))],
                )
                .unwrap();
            storage
                .set_functional(self.consume_rel, &[item], &[Value::Int(20 + (round % 2))])
                .unwrap();
        }
        self.db.commit().unwrap();
    }
}

/// Time a closure, returning seconds.
pub fn time_secs(f: impl FnOnce()) -> f64 {
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_and_monitors() {
        let mut w = InventoryWorld::new(10, MonitorMode::Incremental, NetworkPrep::Flat);
        assert_eq!(w.items.len(), 10);
        // Threshold is 140 for every item; a drop below it triggers.
        w.tx_single_quantity_update(3, 9_999);
        w.tx_massive_update(1);
        // Condition never became true (values stay high).
        let rows =
            w.db.query("select i for each item i where quantity(i) < threshold(i);")
                .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn naive_and_incremental_agree_on_workload() {
        for mode in [MonitorMode::Incremental, MonitorMode::Naive] {
            let mut w = InventoryWorld::new(5, mode, NetworkPrep::Flat);
            w.tx_single_quantity_update(0, 50); // below threshold → triggers
            let rows =
                w.db.query("select i for each item i where quantity(i) < threshold(i);")
                    .unwrap();
            assert_eq!(rows.len(), 1, "mode {mode:?}");
        }
    }
}
