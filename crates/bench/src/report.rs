//! Machine-readable benchmark reports (`BENCH_*.json`) plus the shared
//! command-line handling, so the CI bench-smoke job and local runs of
//! the `fig6`/`fig7` binaries share one code path.
//!
//! The JSON artifact carries, per database size, the measured series
//! timings and the full [`PassMetrics`] of the last incremental
//! propagation pass — per-differential timings, candidate/rejected
//! counters, and per-level wave-front sizes — so perf regressions are
//! diffable across CI runs.
//!
//! [`compare_reports`] is that diff, mechanized: the CI bench-regression
//! gate reads the committed `crates/bench/baselines/BENCH_*.json` and a
//! fresh run of the same binary at the same sizes, and fails on (a) any
//! drift in the deterministic result counters (fired / candidates /
//! rejected — a semantic regression, zero tolerance) or (b) a timing
//! *ratio* (incremental-vs-naive, adaptive-vs-static) that fell more
//! than a tolerance factor below the baseline. Absolute milliseconds are
//! never compared — they measure the runner, not the code.

use std::io::Write as _;
use std::path::PathBuf;

use amos_metrics::{JsonValue, PassMetrics};

/// Command-line options shared by the figure binaries.
#[derive(Debug, Default)]
pub struct BenchArgs {
    /// `--json PATH`: write the machine-readable report here.
    pub json: Option<PathBuf>,
    /// `--sizes 1,10,100`: override the database sizes to sweep.
    pub sizes: Option<Vec<usize>>,
    /// `--transactions N`: override the per-size transaction count
    /// (fig. 6 only).
    pub transactions: Option<usize>,
    /// `--no-tabling`: disable per-pass tabling of derived calls (the
    /// ablation switch; tabling is on by default).
    pub no_tabling: bool,
}

impl BenchArgs {
    /// Parse `std::env::args()`; panics with a usage message on
    /// unknown or malformed flags (these are dev binaries).
    pub fn parse() -> Self {
        let mut out = BenchArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--json" => out.json = Some(PathBuf::from(value("--json"))),
                "--sizes" => {
                    out.sizes = Some(
                        value("--sizes")
                            .split(',')
                            .map(|s| {
                                s.trim()
                                    .parse()
                                    .unwrap_or_else(|_| panic!("bad size {s:?}"))
                            })
                            .collect(),
                    )
                }
                "--transactions" => {
                    out.transactions = Some(
                        value("--transactions")
                            .parse()
                            .expect("--transactions takes a count"),
                    )
                }
                "--no-tabling" => out.no_tabling = true,
                other => panic!(
                    "unknown flag {other:?} (expected --json PATH, --sizes A,B,C, \
                     --transactions N, --no-tabling)"
                ),
            }
        }
        out
    }
}

/// One measured database size in a figure sweep.
#[derive(Debug)]
pub struct SizeRow {
    /// Database size (number of inventory items).
    pub n_items: usize,
    /// Total time of the incremental series, milliseconds.
    pub incremental_ms: f64,
    /// Total time of the naive series, milliseconds.
    pub naive_ms: f64,
    /// Metrics of the last incremental propagation pass at this size.
    pub last_pass: Option<PassMetrics>,
}

impl SizeRow {
    fn to_json(&self) -> JsonValue {
        let mut row = JsonValue::object()
            .with("n_items", self.n_items)
            .with("incremental_ms", self.incremental_ms)
            .with("naive_ms", self.naive_ms);
        row = match &self.last_pass {
            Some(m) => row.with("last_pass", m.to_json()),
            None => row.with("last_pass", JsonValue::Null),
        };
        row
    }
}

/// Assemble the report document for one figure sweep.
pub fn report_json(
    bench: &str,
    description: &str,
    transactions: usize,
    rows: &[SizeRow],
) -> JsonValue {
    JsonValue::object()
        .with("bench", bench)
        .with("description", description)
        .with("transactions", transactions)
        .with(
            "results",
            JsonValue::Array(rows.iter().map(SizeRow::to_json).collect()),
        )
}

/// Write the report to `path` (pretty-printed, trailing newline).
pub fn write_report(
    path: &PathBuf,
    bench: &str,
    description: &str,
    transactions: usize,
    rows: &[SizeRow],
) -> std::io::Result<()> {
    let doc = report_json(bench, description, transactions, rows);
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{}", doc.to_pretty())?;
    Ok(())
}

/// The speed *ratio* a result row demonstrates, by report family:
/// `naive_ms / incremental_ms` for the figure sweeps,
/// `static_ms / adaptive_ms` for the planner bench. `None` when the row
/// carries neither pair.
fn row_ratio(row: &JsonValue) -> Option<(&'static str, f64)> {
    let num = |key: &str| row.get(key).and_then(JsonValue::as_f64);
    if let (Some(naive), Some(inc)) = (num("naive_ms"), num("incremental_ms")) {
        return Some(("naive/incremental", naive / inc.max(f64::MIN_POSITIVE)));
    }
    if let (Some(st), Some(ad)) = (num("static_ms"), num("adaptive_ms")) {
        return Some(("static/adaptive", st / ad.max(f64::MIN_POSITIVE)));
    }
    None
}

/// The key identifying a result row across runs: `scenario` (planner
/// bench) or `n_items` (figure sweeps).
fn row_key(row: &JsonValue) -> String {
    row.get("scenario")
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .or_else(|| {
            row.get("n_items")
                .and_then(JsonValue::as_f64)
                .map(|n| format!("n_items={n}"))
        })
        .unwrap_or_else(|| "<unkeyed>".to_owned())
}

/// Per-row counters that are deterministic for a fixed workload: any
/// drift means the engine computed something different, not slower.
const EXACT_COUNTERS: [&str; 3] = ["fired", "candidates", "rejected"];

/// Diff `fresh` against `baseline`; returns the list of regressions
/// (empty = gate passes). `tolerance` is the allowed *relative* drop in
/// a row's speed ratio — 0.5 means a fresh ratio down to half the
/// baseline's still passes (CI runners are noisy; only collapses fail).
pub fn compare_reports(
    baseline: &JsonValue,
    fresh: &JsonValue,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let name = |doc: &JsonValue| {
        doc.get("bench")
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| "report has no \"bench\" field".to_owned())
    };
    let (bname, fname) = (name(baseline)?, name(fresh)?);
    if bname != fname {
        return Err(format!(
            "comparing different benches: baseline {bname:?} vs fresh {fname:?}"
        ));
    }
    let rows = |doc: &JsonValue, which: &str| {
        doc.get("results")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::to_vec)
            .ok_or_else(|| format!("{which} report has no \"results\" array"))
    };
    let base_rows = rows(baseline, "baseline")?;
    let fresh_rows = rows(fresh, "fresh")?;

    let mut regressions = Vec::new();
    for brow in &base_rows {
        let key = row_key(brow);
        let Some(frow) = fresh_rows.iter().find(|r| row_key(r) == key) else {
            regressions.push(format!("{bname}[{key}]: row missing from fresh report"));
            continue;
        };
        // Deterministic counters from the last pass must match exactly.
        if let (Some(bpass), Some(fpass)) = (brow.get("last_pass"), frow.get("last_pass")) {
            for counter in EXACT_COUNTERS {
                let b = bpass.get(counter).and_then(JsonValue::as_f64);
                let f = fpass.get(counter).and_then(JsonValue::as_f64);
                if let (Some(b), Some(f)) = (b, f) {
                    if b != f {
                        regressions.push(format!(
                            "{bname}[{key}]: {counter} drifted from {b} to {f} \
                             (deterministic counter — semantic change)"
                        ));
                    }
                }
            }
        }
        // The demonstrated speed ratio must not collapse.
        if let (Some((label, bratio)), Some((_, fratio))) = (row_ratio(brow), row_ratio(frow)) {
            let floor = bratio * (1.0 - tolerance);
            if fratio < floor {
                regressions.push(format!(
                    "{bname}[{key}]: {label} ratio fell to {fratio:.2} \
                     (baseline {bratio:.2}, floor {floor:.2})"
                ));
            }
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape() {
        let rows = vec![SizeRow {
            n_items: 10,
            incremental_ms: 1.25,
            naive_ms: 2.5,
            last_pass: Some(PassMetrics {
                strategy: "parallel".into(),
                check: "nervous".into(),
                ..Default::default()
            }),
        }];
        let doc = report_json("fig6", "single-item updates", 100, &rows).to_compact();
        assert!(doc.contains(r#""bench":"fig6""#));
        assert!(doc.contains(r#""transactions":100"#));
        assert!(doc.contains(r#""incremental_ms":1.25"#));
        assert!(doc.contains(r#""last_pass":{"strategy":"parallel""#));
    }

    fn fig_report(incremental_ms: f64, naive_ms: f64, candidates: u64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"bench":"fig6","results":[{{"n_items":100,
                "incremental_ms":{incremental_ms},"naive_ms":{naive_ms},
                "last_pass":{{"fired":2,"candidates":{candidates},"rejected":0}}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn compare_passes_identical_and_faster_runs() {
        let base = fig_report(10.0, 100.0, 5);
        assert_eq!(
            compare_reports(&base, &base, 0.5).unwrap(),
            Vec::<String>::new()
        );
        // 2x faster incremental: ratio improved, still passes.
        let faster = fig_report(5.0, 100.0, 5);
        assert!(compare_reports(&base, &faster, 0.5).unwrap().is_empty());
        // Ratio sagged 30% — inside the 50% tolerance.
        let noisy = fig_report(14.0, 100.0, 5);
        assert!(compare_reports(&base, &noisy, 0.5).unwrap().is_empty());
    }

    #[test]
    fn compare_flags_ratio_collapse_and_counter_drift() {
        let base = fig_report(10.0, 100.0, 5);
        // Ratio collapsed from 10x to 2x: regression.
        let slow = fig_report(50.0, 100.0, 5);
        let found = compare_reports(&base, &slow, 0.5).unwrap();
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("ratio fell"), "{found:?}");
        // Candidate count drift: semantic regression, zero tolerance.
        let drifted = fig_report(10.0, 100.0, 6);
        let found = compare_reports(&base, &drifted, 0.5).unwrap();
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("candidates drifted"), "{found:?}");
    }

    #[test]
    fn compare_rejects_mismatched_benches_and_missing_rows() {
        let base = fig_report(10.0, 100.0, 5);
        let other = JsonValue::parse(r#"{"bench":"fig7","results":[]}"#).unwrap();
        assert!(compare_reports(&base, &other, 0.5).is_err());
        let empty = JsonValue::parse(r#"{"bench":"fig6","results":[]}"#).unwrap();
        let found = compare_reports(&base, &empty, 0.5).unwrap();
        assert!(found[0].contains("row missing"), "{found:?}");
    }

    #[test]
    fn compare_handles_planner_reports() {
        let row = |static_ms: f64, adaptive_ms: f64| {
            JsonValue::parse(&format!(
                r#"{{"bench":"plan","results":[{{"scenario":"bulk",
                    "static_ms":{static_ms},"adaptive_ms":{adaptive_ms}}}]}}"#
            ))
            .unwrap()
        };
        let base = row(300.0, 200.0); // 1.5x
        assert!(compare_reports(&base, &row(300.0, 220.0), 0.5)
            .unwrap()
            .is_empty());
        let collapsed = row(300.0, 450.0); // 0.67x < 1.5 * 0.5
        assert!(!compare_reports(&base, &collapsed, 0.5).unwrap().is_empty());
    }
}
