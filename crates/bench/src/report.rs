//! Machine-readable benchmark reports (`BENCH_*.json`) plus the shared
//! command-line handling, so the CI bench-smoke job and local runs of
//! the `fig6`/`fig7` binaries share one code path.
//!
//! The JSON artifact carries, per database size, the measured series
//! timings and the full [`PassMetrics`] of the last incremental
//! propagation pass — per-differential timings, candidate/rejected
//! counters, and per-level wave-front sizes — so perf regressions are
//! diffable across CI runs.

use std::io::Write as _;
use std::path::PathBuf;

use amos_metrics::{JsonValue, PassMetrics};

/// Command-line options shared by the figure binaries.
#[derive(Debug, Default)]
pub struct BenchArgs {
    /// `--json PATH`: write the machine-readable report here.
    pub json: Option<PathBuf>,
    /// `--sizes 1,10,100`: override the database sizes to sweep.
    pub sizes: Option<Vec<usize>>,
    /// `--transactions N`: override the per-size transaction count
    /// (fig. 6 only).
    pub transactions: Option<usize>,
    /// `--no-tabling`: disable per-pass tabling of derived calls (the
    /// ablation switch; tabling is on by default).
    pub no_tabling: bool,
}

impl BenchArgs {
    /// Parse `std::env::args()`; panics with a usage message on
    /// unknown or malformed flags (these are dev binaries).
    pub fn parse() -> Self {
        let mut out = BenchArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--json" => out.json = Some(PathBuf::from(value("--json"))),
                "--sizes" => {
                    out.sizes = Some(
                        value("--sizes")
                            .split(',')
                            .map(|s| {
                                s.trim()
                                    .parse()
                                    .unwrap_or_else(|_| panic!("bad size {s:?}"))
                            })
                            .collect(),
                    )
                }
                "--transactions" => {
                    out.transactions = Some(
                        value("--transactions")
                            .parse()
                            .expect("--transactions takes a count"),
                    )
                }
                "--no-tabling" => out.no_tabling = true,
                other => panic!(
                    "unknown flag {other:?} (expected --json PATH, --sizes A,B,C, \
                     --transactions N, --no-tabling)"
                ),
            }
        }
        out
    }
}

/// One measured database size in a figure sweep.
#[derive(Debug)]
pub struct SizeRow {
    /// Database size (number of inventory items).
    pub n_items: usize,
    /// Total time of the incremental series, milliseconds.
    pub incremental_ms: f64,
    /// Total time of the naive series, milliseconds.
    pub naive_ms: f64,
    /// Metrics of the last incremental propagation pass at this size.
    pub last_pass: Option<PassMetrics>,
}

impl SizeRow {
    fn to_json(&self) -> JsonValue {
        let mut row = JsonValue::object()
            .with("n_items", self.n_items)
            .with("incremental_ms", self.incremental_ms)
            .with("naive_ms", self.naive_ms);
        row = match &self.last_pass {
            Some(m) => row.with("last_pass", m.to_json()),
            None => row.with("last_pass", JsonValue::Null),
        };
        row
    }
}

/// Assemble the report document for one figure sweep.
pub fn report_json(
    bench: &str,
    description: &str,
    transactions: usize,
    rows: &[SizeRow],
) -> JsonValue {
    JsonValue::object()
        .with("bench", bench)
        .with("description", description)
        .with("transactions", transactions)
        .with(
            "results",
            JsonValue::Array(rows.iter().map(SizeRow::to_json).collect()),
        )
}

/// Write the report to `path` (pretty-printed, trailing newline).
pub fn write_report(
    path: &PathBuf,
    bench: &str,
    description: &str,
    transactions: usize,
    rows: &[SizeRow],
) -> std::io::Result<()> {
    let doc = report_json(bench, description, transactions, rows);
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{}", doc.to_pretty())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape() {
        let rows = vec![SizeRow {
            n_items: 10,
            incremental_ms: 1.25,
            naive_ms: 2.5,
            last_pass: Some(PassMetrics {
                strategy: "parallel".into(),
                check: "nervous".into(),
                ..Default::default()
            }),
        }];
        let doc = report_json("fig6", "single-item updates", 100, &rows).to_compact();
        assert!(doc.contains(r#""bench":"fig6""#));
        assert!(doc.contains(r#""transactions":100"#));
        assert!(doc.contains(r#""incremental_ms":1.25"#));
        assert!(doc.contains(r#""last_pass":{"strategy":"parallel""#));
    }
}
