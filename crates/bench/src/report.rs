//! Machine-readable benchmark reports (`BENCH_*.json`) plus the shared
//! command-line handling, so the CI bench-smoke job and local runs of
//! the `fig6`/`fig7` binaries share one code path.
//!
//! The JSON artifact carries, per database size, the measured series
//! timings and the full [`PassMetrics`] of the last incremental
//! propagation pass — per-differential timings, candidate/rejected
//! counters, and per-level wave-front sizes — so perf regressions are
//! diffable across CI runs.
//!
//! [`compare_reports`] is that diff, mechanized: the CI bench-regression
//! gate reads the committed `crates/bench/baselines/BENCH_*.json` and a
//! fresh run of the same binary at the same sizes, and fails on (a) any
//! drift in the deterministic result counters (fired / candidates /
//! rejected — a semantic regression, zero tolerance) or (b) a timing
//! *ratio* (incremental-vs-naive, adaptive-vs-static) that fell more
//! than a tolerance factor below the baseline. Absolute milliseconds are
//! never compared — they measure the runner, not the code.

use std::io::Write as _;
use std::path::PathBuf;

use amos_metrics::{JsonValue, PassMetrics};

/// Command-line options shared by the figure binaries.
#[derive(Debug, Default)]
pub struct BenchArgs {
    /// `--json PATH`: write the machine-readable report here.
    pub json: Option<PathBuf>,
    /// `--sizes 1,10,100`: override the database sizes to sweep.
    pub sizes: Option<Vec<usize>>,
    /// `--transactions N`: override the per-size transaction count
    /// (fig. 6 only).
    pub transactions: Option<usize>,
    /// `--no-tabling`: disable per-pass tabling of derived calls (the
    /// ablation switch; tabling is on by default).
    pub no_tabling: bool,
    /// `--workers 1,2,4,8`: sweep sharded propagation at these worker
    /// counts on the largest size (fig. 7 only; empty = no sweep).
    pub workers: Vec<usize>,
}

impl BenchArgs {
    /// Parse `std::env::args()`; panics with a usage message on
    /// unknown or malformed flags (these are dev binaries).
    pub fn parse() -> Self {
        let mut out = BenchArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--json" => out.json = Some(PathBuf::from(value("--json"))),
                "--sizes" => {
                    out.sizes = Some(
                        value("--sizes")
                            .split(',')
                            .map(|s| {
                                s.trim()
                                    .parse()
                                    .unwrap_or_else(|_| panic!("bad size {s:?}"))
                            })
                            .collect(),
                    )
                }
                "--transactions" => {
                    out.transactions = Some(
                        value("--transactions")
                            .parse()
                            .expect("--transactions takes a count"),
                    )
                }
                "--no-tabling" => out.no_tabling = true,
                "--workers" => {
                    out.workers = value("--workers")
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse()
                                .unwrap_or_else(|_| panic!("bad worker count {s:?}"))
                        })
                        .collect()
                }
                other => panic!(
                    "unknown flag {other:?} (expected --json PATH, --sizes A,B,C, \
                     --transactions N, --no-tabling, --workers A,B,C)"
                ),
            }
        }
        out
    }
}

/// One measured database size in a figure sweep.
#[derive(Debug)]
pub struct SizeRow {
    /// Database size (number of inventory items).
    pub n_items: usize,
    /// Total time of the incremental series, milliseconds.
    pub incremental_ms: f64,
    /// Total time of the naive series, milliseconds.
    pub naive_ms: f64,
    /// Metrics of the last incremental propagation pass at this size.
    pub last_pass: Option<PassMetrics>,
}

impl SizeRow {
    fn to_json(&self) -> JsonValue {
        let mut row = JsonValue::object()
            .with("n_items", self.n_items)
            .with("incremental_ms", self.incremental_ms)
            .with("naive_ms", self.naive_ms);
        row = match &self.last_pass {
            Some(m) => row.with("last_pass", m.to_json()),
            None => row.with("last_pass", JsonValue::Null),
        };
        row
    }
}

/// One worker count measured in a `--workers` scaling sweep (sharded
/// propagation on the largest database size).
#[derive(Debug)]
pub struct ScalingRow {
    /// Worker / shard count of this run.
    pub workers: usize,
    /// Hardware threads available on the machine that produced the row
    /// — scaling gates only apply when `hw_threads >= workers`, so a
    /// report from a 1-core CI runner never fails a 4-worker floor.
    pub hw_threads: usize,
    /// Total time of the incremental bulk transaction, milliseconds.
    pub incremental_ms: f64,
    /// `incremental_ms(workers=1) / incremental_ms(self)` from the same
    /// sweep; 1.0 for the workers=1 row by construction.
    pub speedup_vs_1: f64,
    /// Metrics of the last sharded propagation pass at this count.
    pub last_pass: Option<PassMetrics>,
}

impl ScalingRow {
    fn to_json(&self) -> JsonValue {
        let mut row = JsonValue::object()
            .with("workers", self.workers)
            .with("hw_threads", self.hw_threads)
            .with("incremental_ms", self.incremental_ms)
            .with("speedup_vs_1", self.speedup_vs_1);
        row = match &self.last_pass {
            Some(m) => row.with("last_pass", m.to_json()),
            None => row.with("last_pass", JsonValue::Null),
        };
        row
    }
}

/// Assemble the report document for one figure sweep.
pub fn report_json(
    bench: &str,
    description: &str,
    transactions: usize,
    rows: &[SizeRow],
) -> JsonValue {
    report_json_scaled(bench, description, transactions, rows, &[])
}

/// [`report_json`] plus a `"scaling"` section from a `--workers` sweep
/// (omitted entirely when `scaling` is empty, keeping reports without a
/// sweep byte-identical to the pre-scaling shape).
pub fn report_json_scaled(
    bench: &str,
    description: &str,
    transactions: usize,
    rows: &[SizeRow],
    scaling: &[ScalingRow],
) -> JsonValue {
    let mut doc = JsonValue::object()
        .with("bench", bench)
        .with("description", description)
        .with("transactions", transactions)
        .with(
            "results",
            JsonValue::Array(rows.iter().map(SizeRow::to_json).collect()),
        );
    if !scaling.is_empty() {
        doc = doc.with(
            "scaling",
            JsonValue::Array(scaling.iter().map(ScalingRow::to_json).collect()),
        );
    }
    doc
}

/// Write the report to `path` (pretty-printed, trailing newline).
pub fn write_report(
    path: &PathBuf,
    bench: &str,
    description: &str,
    transactions: usize,
    rows: &[SizeRow],
) -> std::io::Result<()> {
    write_report_scaled(path, bench, description, transactions, rows, &[])
}

/// [`write_report`] with an optional `"scaling"` section.
pub fn write_report_scaled(
    path: &PathBuf,
    bench: &str,
    description: &str,
    transactions: usize,
    rows: &[SizeRow],
    scaling: &[ScalingRow],
) -> std::io::Result<()> {
    let doc = report_json_scaled(bench, description, transactions, rows, scaling);
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{}", doc.to_pretty())?;
    Ok(())
}

/// The speed *ratio* a result row demonstrates, by report family:
/// `min(naive, incremental) / hybrid_ms` for the hybrid bench (checked
/// first — its rows carry all three timings),
/// `naive_ms / incremental_ms` for the figure sweeps,
/// `static_ms / adaptive_ms` for the planner bench,
/// `serial_ms / concurrent_ms` for the multi-session server bench.
/// `None` when the row carries none of the pairs.
fn row_ratio(row: &JsonValue) -> Option<(&'static str, f64)> {
    let num = |key: &str| row.get(key).and_then(JsonValue::as_f64);
    if let (Some(hybrid), Some(naive), Some(inc)) =
        (num("hybrid_ms"), num("naive_ms"), num("incremental_ms"))
    {
        return Some((
            "best/hybrid",
            naive.min(inc) / hybrid.max(f64::MIN_POSITIVE),
        ));
    }
    if let (Some(naive), Some(inc)) = (num("naive_ms"), num("incremental_ms")) {
        return Some(("naive/incremental", naive / inc.max(f64::MIN_POSITIVE)));
    }
    if let (Some(st), Some(ad)) = (num("static_ms"), num("adaptive_ms")) {
        return Some(("static/adaptive", st / ad.max(f64::MIN_POSITIVE)));
    }
    if let (Some(serial), Some(conc)) = (num("serial_ms"), num("concurrent_ms")) {
        return Some(("serial/concurrent", serial / conc.max(f64::MIN_POSITIVE)));
    }
    None
}

/// The key identifying a result row across runs: `scenario` (planner
/// bench), `n_items` (figure sweeps), or `sessions` (server bench) —
/// the server bench additionally splits on its `pipeline` variant.
fn row_key(row: &JsonValue) -> String {
    row.get("scenario")
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .or_else(|| {
            row.get("n_items")
                .and_then(JsonValue::as_f64)
                .map(|n| format!("n_items={n}"))
        })
        .or_else(|| {
            row.get("sessions").and_then(JsonValue::as_f64).map(|n| {
                match row.get("pipeline").and_then(JsonValue::as_str) {
                    Some(p) => format!("sessions={n} pipeline={p}"),
                    None => format!("sessions={n}"),
                }
            })
        })
        .unwrap_or_else(|| "<unkeyed>".to_owned())
}

/// Per-row counters that are deterministic for a fixed workload: any
/// drift means the engine computed something different, not slower.
const EXACT_COUNTERS: [&str; 3] = ["fired", "candidates", "rejected"];

/// Deterministic counters carried directly on a result row (not inside
/// `last_pass`): the server bench's seeded schedule commits, aborts,
/// and fsyncs exactly the same transactions on every machine, and the
/// hybrid bench's cost model sees exactly the same Δ-set and relation
/// sizes — so any drift is a change in conflict-detection, WAL-flush,
/// or strategy-selection semantics.
const ROW_EXACT_COUNTERS: [&str; 5] = [
    "committed",
    "aborted",
    "fsyncs",
    "chose_incremental",
    "chose_naive",
];

/// Optional absolute gates layered on top of the relative comparison —
/// each applies only to reports that carry the relevant fields.
#[derive(Debug, Default, Clone, Copy)]
pub struct GateOptions {
    /// Allowed *relative* drop in a row's speed ratio (and scaling /
    /// pipeline speedups) below the baseline's.
    pub tolerance: f64,
    /// `--scaling-floor`: absolute `speedup_vs_1` required of scaling
    /// rows at ≥ 4 workers (hardware-conditional).
    pub scaling_floor: Option<f64>,
    /// `--pipeline-floor`: absolute `unpipelined_ms / pipelined_ms`
    /// speedup required of server-bench `pipeline=on` rows at ≥ 4
    /// sessions (hardware-conditional: only when the fresh runner has
    /// `hw_threads >= sessions`).
    pub pipeline_floor: Option<f64>,
    /// `--hybrid-epsilon`: fresh hybrid rows must satisfy
    /// `hybrid_ms <= (1 + ε) × min(incremental_ms, naive_ms)`.
    pub hybrid_epsilon: Option<f64>,
}

/// Diff `fresh` against `baseline`; returns the list of regressions
/// (empty = gate passes). `tolerance` is the allowed *relative* drop in
/// a row's speed ratio — 0.5 means a fresh ratio down to half the
/// baseline's still passes (CI runners are noisy; only collapses fail).
pub fn compare_reports(
    baseline: &JsonValue,
    fresh: &JsonValue,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    compare_reports_scaled(baseline, fresh, tolerance, None)
}

/// [`compare_reports`] plus the `"scaling"` gate. On top of the
/// per-size checks, the `--workers` sweep (when both reports carry one)
/// is held to three rules: (a) the deterministic counters must agree
/// across *every* worker count in the fresh sweep — the shard count is
/// execution policy, so any drift is a semantic bug; (b) each row's
/// `speedup_vs_1` may sag at most `tolerance` below the baseline's; and
/// (c) with `scaling_floor = Some(f)`, rows at ≥4 workers must reach an
/// absolute speedup of `f`. Speedup gates (b) and (c) only apply to
/// rows whose *fresh* `hw_threads >= workers`: a 1-core CI runner
/// cannot demonstrate parallel scaling and is not asked to. A fresh
/// report without a `"scaling"` section skips the gate entirely (the
/// run was made without `--workers`).
pub fn compare_reports_scaled(
    baseline: &JsonValue,
    fresh: &JsonValue,
    tolerance: f64,
    scaling_floor: Option<f64>,
) -> Result<Vec<String>, String> {
    compare_reports_gated(
        baseline,
        fresh,
        &GateOptions {
            tolerance,
            scaling_floor,
            ..GateOptions::default()
        },
    )
}

/// [`compare_reports_scaled`] with the full gate set ([`GateOptions`]):
/// on top of the exact-counter and ratio checks, server-bench
/// `pipeline=on` rows are held to a pipelined-vs-unpipelined speedup
/// (relative to the baseline, plus the optional absolute
/// `pipeline_floor` at ≥ 4 sessions) whenever the fresh runner has
/// `hw_threads >= sessions`, and fresh hybrid rows must stay within
/// `hybrid_epsilon` of the better pure strategy.
pub fn compare_reports_gated(
    baseline: &JsonValue,
    fresh: &JsonValue,
    gates: &GateOptions,
) -> Result<Vec<String>, String> {
    let tolerance = gates.tolerance;
    let scaling_floor = gates.scaling_floor;
    let name = |doc: &JsonValue| {
        doc.get("bench")
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| "report has no \"bench\" field".to_owned())
    };
    let (bname, fname) = (name(baseline)?, name(fresh)?);
    if bname != fname {
        return Err(format!(
            "comparing different benches: baseline {bname:?} vs fresh {fname:?}"
        ));
    }
    let rows = |doc: &JsonValue, which: &str| {
        doc.get("results")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::to_vec)
            .ok_or_else(|| format!("{which} report has no \"results\" array"))
    };
    let base_rows = rows(baseline, "baseline")?;
    let fresh_rows = rows(fresh, "fresh")?;

    let mut regressions = Vec::new();
    for brow in &base_rows {
        let key = row_key(brow);
        let Some(frow) = fresh_rows.iter().find(|r| row_key(r) == key) else {
            regressions.push(format!("{bname}[{key}]: row missing from fresh report"));
            continue;
        };
        // Deterministic counters from the last pass must match exactly.
        if let (Some(bpass), Some(fpass)) = (brow.get("last_pass"), frow.get("last_pass")) {
            for counter in EXACT_COUNTERS {
                let b = bpass.get(counter).and_then(JsonValue::as_f64);
                let f = fpass.get(counter).and_then(JsonValue::as_f64);
                if let (Some(b), Some(f)) = (b, f) {
                    if b != f {
                        regressions.push(format!(
                            "{bname}[{key}]: {counter} drifted from {b} to {f} \
                             (deterministic counter — semantic change)"
                        ));
                    }
                }
            }
        }
        // Row-level deterministic counters (server bench): exact match.
        for counter in ROW_EXACT_COUNTERS {
            let b = brow.get(counter).and_then(JsonValue::as_f64);
            let f = frow.get(counter).and_then(JsonValue::as_f64);
            if let (Some(b), Some(f)) = (b, f) {
                if b != f {
                    regressions.push(format!(
                        "{bname}[{key}]: {counter} drifted from {b} to {f} \
                         (deterministic counter — semantic change)"
                    ));
                }
            }
        }
        // The demonstrated speed ratio must not collapse.
        if let (Some((label, bratio)), Some((_, fratio))) = (row_ratio(brow), row_ratio(frow)) {
            let floor = bratio * (1.0 - tolerance);
            if fratio < floor {
                regressions.push(format!(
                    "{bname}[{key}]: {label} ratio fell to {fratio:.2} \
                     (baseline {bratio:.2}, floor {floor:.2})"
                ));
            }
        }
        // Wire-pipelining speedup (server bench `pipeline=on` rows):
        // relative to the baseline, plus the optional absolute floor at
        // ≥ 4 sessions. Both only when the fresh runner has the
        // hardware threads to actually overlap the sessions — a 1-core
        // runner cannot demonstrate commit coalescing and is not asked
        // to (same policy as the fig. 7 scaling gate).
        let speedup_of = |row: &JsonValue| {
            let un = row.get("unpipelined_ms").and_then(JsonValue::as_f64)?;
            let pi = row.get("pipelined_ms").and_then(JsonValue::as_f64)?;
            Some(un / pi.max(f64::MIN_POSITIVE))
        };
        if let Some(fspeed) = speedup_of(frow) {
            let hw = frow
                .get("hw_threads")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            let sessions = frow
                .get("sessions")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            if hw >= sessions {
                if let Some(bspeed) = speedup_of(brow) {
                    let floor = bspeed * (1.0 - tolerance);
                    if fspeed < floor {
                        regressions.push(format!(
                            "{bname}[{key}]: pipeline speedup fell to {fspeed:.2} \
                             (baseline {bspeed:.2}, floor {floor:.2})"
                        ));
                    }
                }
                if let Some(abs_floor) = gates.pipeline_floor {
                    if sessions >= 4.0 && fspeed < abs_floor {
                        regressions.push(format!(
                            "{bname}[{key}]: pipeline speedup {fspeed:.2} below the \
                             absolute floor {abs_floor:.2}"
                        ));
                    }
                }
            }
        }
        // Hybrid ε gate: the cost-based strategy must track the better
        // pure strategy within the stated margin — a fresh-report-only
        // absolute check (no baseline involved).
        if let Some(eps) = gates.hybrid_epsilon {
            let num = |k: &str| frow.get(k).and_then(JsonValue::as_f64);
            if let (Some(hybrid), Some(naive), Some(inc)) =
                (num("hybrid_ms"), num("naive_ms"), num("incremental_ms"))
            {
                let best = naive.min(inc);
                if hybrid > best * (1.0 + eps) {
                    regressions.push(format!(
                        "{bname}[{key}]: hybrid_ms {hybrid:.2} exceeds \
                         (1 + {eps}) × best pure strategy ({best:.2})"
                    ));
                }
            }
        }
    }

    let scaling = |doc: &JsonValue| {
        doc.get("scaling")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::to_vec)
    };
    if let (Some(base_sc), Some(fresh_sc)) = (scaling(baseline), scaling(fresh)) {
        compare_scaling(
            &bname,
            &base_sc,
            &fresh_sc,
            tolerance,
            scaling_floor,
            &mut regressions,
        );
    }
    Ok(regressions)
}

/// The `"scaling"` half of [`compare_reports_scaled`].
fn compare_scaling(
    bench: &str,
    base_sc: &[JsonValue],
    fresh_sc: &[JsonValue],
    tolerance: f64,
    scaling_floor: Option<f64>,
    regressions: &mut Vec<String>,
) {
    let num = |row: &JsonValue, key: &str| row.get(key).and_then(JsonValue::as_f64);
    let workers_of = |row: &JsonValue| num(row, "workers").unwrap_or(0.0) as usize;

    // (a) Worker count must be invisible to the result: every fresh
    // sweep row carries the same deterministic counters.
    if let Some(first) = fresh_sc.first() {
        for frow in &fresh_sc[1..] {
            for counter in EXACT_COUNTERS {
                let a = first.get("last_pass").and_then(|p| p.get(counter));
                let b = frow.get("last_pass").and_then(|p| p.get(counter));
                let (a, b) = (a.and_then(JsonValue::as_f64), b.and_then(JsonValue::as_f64));
                if let (Some(a), Some(b)) = (a, b) {
                    if a != b {
                        regressions.push(format!(
                            "{bench}[scaling]: {counter} differs across worker counts \
                             ({a} at workers={}, {b} at workers={}) — sharding changed \
                             the result",
                            workers_of(first),
                            workers_of(frow),
                        ));
                    }
                }
            }
        }
    }

    for brow in base_sc {
        let w = workers_of(brow);
        let key = format!("workers={w}");
        let Some(frow) = fresh_sc.iter().find(|r| workers_of(r) == w) else {
            regressions.push(format!(
                "{bench}[scaling {key}]: row missing from fresh report"
            ));
            continue;
        };
        let hw = num(frow, "hw_threads").unwrap_or(0.0) as usize;
        if hw < w {
            // The runner can't physically exhibit w-way scaling.
            continue;
        }
        let (bspeed, fspeed) = (num(brow, "speedup_vs_1"), num(frow, "speedup_vs_1"));
        if let (Some(bspeed), Some(fspeed)) = (bspeed, fspeed) {
            // (b) Relative: don't collapse below the baseline's speedup.
            let floor = bspeed * (1.0 - tolerance);
            if fspeed < floor {
                regressions.push(format!(
                    "{bench}[scaling {key}]: speedup fell to {fspeed:.2} \
                     (baseline {bspeed:.2}, floor {floor:.2})"
                ));
            }
            // (c) Absolute: bulk scaling must clear the stated floor.
            if let Some(abs_floor) = scaling_floor {
                if w >= 4 && fspeed < abs_floor {
                    regressions.push(format!(
                        "{bench}[scaling {key}]: speedup {fspeed:.2} below the \
                         absolute floor {abs_floor:.2}"
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape() {
        let rows = vec![SizeRow {
            n_items: 10,
            incremental_ms: 1.25,
            naive_ms: 2.5,
            last_pass: Some(PassMetrics {
                strategy: "parallel".into(),
                check: "nervous".into(),
                ..Default::default()
            }),
        }];
        let doc = report_json("fig6", "single-item updates", 100, &rows).to_compact();
        assert!(doc.contains(r#""bench":"fig6""#));
        assert!(doc.contains(r#""transactions":100"#));
        assert!(doc.contains(r#""incremental_ms":1.25"#));
        assert!(doc.contains(r#""last_pass":{"strategy":"parallel""#));
    }

    fn fig_report(incremental_ms: f64, naive_ms: f64, candidates: u64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"bench":"fig6","results":[{{"n_items":100,
                "incremental_ms":{incremental_ms},"naive_ms":{naive_ms},
                "last_pass":{{"fired":2,"candidates":{candidates},"rejected":0}}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn compare_passes_identical_and_faster_runs() {
        let base = fig_report(10.0, 100.0, 5);
        assert_eq!(
            compare_reports(&base, &base, 0.5).unwrap(),
            Vec::<String>::new()
        );
        // 2x faster incremental: ratio improved, still passes.
        let faster = fig_report(5.0, 100.0, 5);
        assert!(compare_reports(&base, &faster, 0.5).unwrap().is_empty());
        // Ratio sagged 30% — inside the 50% tolerance.
        let noisy = fig_report(14.0, 100.0, 5);
        assert!(compare_reports(&base, &noisy, 0.5).unwrap().is_empty());
    }

    #[test]
    fn compare_flags_ratio_collapse_and_counter_drift() {
        let base = fig_report(10.0, 100.0, 5);
        // Ratio collapsed from 10x to 2x: regression.
        let slow = fig_report(50.0, 100.0, 5);
        let found = compare_reports(&base, &slow, 0.5).unwrap();
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("ratio fell"), "{found:?}");
        // Candidate count drift: semantic regression, zero tolerance.
        let drifted = fig_report(10.0, 100.0, 6);
        let found = compare_reports(&base, &drifted, 0.5).unwrap();
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("candidates drifted"), "{found:?}");
    }

    #[test]
    fn compare_rejects_mismatched_benches_and_missing_rows() {
        let base = fig_report(10.0, 100.0, 5);
        let other = JsonValue::parse(r#"{"bench":"fig7","results":[]}"#).unwrap();
        assert!(compare_reports(&base, &other, 0.5).is_err());
        let empty = JsonValue::parse(r#"{"bench":"fig6","results":[]}"#).unwrap();
        let found = compare_reports(&base, &empty, 0.5).unwrap();
        assert!(found[0].contains("row missing"), "{found:?}");
    }

    fn scaling_report(rows: &[(usize, usize, f64, u64)]) -> JsonValue {
        // (workers, hw_threads, speedup, candidates)
        let rows: Vec<String> = rows
            .iter()
            .map(|(w, hw, s, c)| {
                format!(
                    r#"{{"workers":{w},"hw_threads":{hw},"incremental_ms":10.0,
                        "speedup_vs_1":{s},
                        "last_pass":{{"fired":2,"candidates":{c},"rejected":0}}}}"#
                )
            })
            .collect();
        JsonValue::parse(&format!(
            r#"{{"bench":"fig7","results":[],"scaling":[{}]}}"#,
            rows.join(",")
        ))
        .unwrap()
    }

    #[test]
    fn scaling_section_appears_only_when_swept() {
        let plain = report_json("fig7", "d", 1, &[]).to_compact();
        assert!(!plain.contains("scaling"));
        let swept = report_json_scaled(
            "fig7",
            "d",
            1,
            &[],
            &[ScalingRow {
                workers: 4,
                hw_threads: 8,
                incremental_ms: 2.5,
                speedup_vs_1: 3.1,
                last_pass: None,
            }],
        )
        .to_compact();
        assert!(swept.contains(r#""scaling":[{"workers":4,"hw_threads":8"#));
        assert!(swept.contains(r#""speedup_vs_1":3.1"#));
    }

    #[test]
    fn compare_scaling_flags_counter_drift_across_worker_counts() {
        let base = scaling_report(&[(1, 8, 1.0, 5), (4, 8, 2.0, 5)]);
        // Fresh run computed a different candidate count at 4 workers.
        let broken = scaling_report(&[(1, 8, 1.0, 5), (4, 8, 2.0, 6)]);
        let found = compare_reports(&base, &broken, 0.5).unwrap();
        assert!(
            found
                .iter()
                .any(|r| r.contains("differs across worker counts")),
            "{found:?}"
        );
    }

    #[test]
    fn compare_scaling_enforces_relative_and_absolute_floors() {
        let base = scaling_report(&[(1, 8, 1.0, 5), (4, 8, 3.0, 5)]);
        // Speedup collapsed 3.0 -> 1.1: below 3.0 * (1 - 0.5).
        let collapsed = scaling_report(&[(1, 8, 1.0, 5), (4, 8, 1.1, 5)]);
        let found = compare_reports(&base, &collapsed, 0.5).unwrap();
        assert!(
            found.iter().any(|r| r.contains("speedup fell")),
            "{found:?}"
        );

        // Within tolerance relatively, but under the absolute floor.
        let shallow = scaling_report(&[(1, 8, 1.0, 5), (4, 8, 1.6, 5)]);
        assert!(compare_reports(&base, &shallow, 0.5).unwrap().is_empty());
        let found = compare_reports_scaled(&base, &shallow, 0.5, Some(2.0)).unwrap();
        assert!(
            found.iter().any(|r| r.contains("absolute floor")),
            "{found:?}"
        );
        // The absolute floor only watches rows at >= 4 workers.
        let ok = scaling_report(&[(1, 8, 1.0, 5), (2, 8, 1.2, 5), (4, 8, 2.4, 5)]);
        let base2 = scaling_report(&[(1, 8, 1.0, 5), (2, 8, 1.3, 5), (4, 8, 2.5, 5)]);
        assert!(compare_reports_scaled(&base2, &ok, 0.5, Some(2.0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn compare_scaling_skips_underprovisioned_runners_and_missing_sections() {
        let base = scaling_report(&[(1, 8, 1.0, 5), (4, 8, 3.0, 5)]);
        // A 1-core runner can't scale; speedup 0.9 at 4 workers is fine.
        let one_core = scaling_report(&[(1, 1, 1.0, 5), (4, 1, 0.9, 5)]);
        assert!(compare_reports_scaled(&base, &one_core, 0.5, Some(1.5))
            .unwrap()
            .is_empty());
        // Fresh report without a sweep (run made sans --workers): gate
        // skipped, not failed.
        let no_sweep = JsonValue::parse(r#"{"bench":"fig7","results":[]}"#).unwrap();
        assert!(compare_reports(&base, &no_sweep, 0.5).unwrap().is_empty());
        // But a missing worker-count row when both sweeps exist fails.
        let missing_row = scaling_report(&[(1, 8, 1.0, 5)]);
        let found = compare_reports(&base, &missing_row, 0.5).unwrap();
        assert!(found.iter().any(|r| r.contains("row missing")), "{found:?}");
    }

    #[test]
    fn compare_handles_planner_reports() {
        let row = |static_ms: f64, adaptive_ms: f64| {
            JsonValue::parse(&format!(
                r#"{{"bench":"plan","results":[{{"scenario":"bulk",
                    "static_ms":{static_ms},"adaptive_ms":{adaptive_ms}}}]}}"#
            ))
            .unwrap()
        };
        let base = row(300.0, 200.0); // 1.5x
        assert!(compare_reports(&base, &row(300.0, 220.0), 0.5)
            .unwrap()
            .is_empty());
        let collapsed = row(300.0, 450.0); // 0.67x < 1.5 * 0.5
        assert!(!compare_reports(&base, &collapsed, 0.5).unwrap().is_empty());
    }

    fn server_report(sessions: u64, committed: u64, aborted: u64, concurrent_ms: f64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"bench":"server","results":[{{"sessions":{sessions},
                "committed":{committed},"aborted":{aborted},
                "serial_ms":100.0,"concurrent_ms":{concurrent_ms},
                "commits_per_sec":1000.0}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn server_rows_key_on_sessions_and_gate_exact_counters() {
        let base = server_report(4, 120, 7, 60.0);
        assert!(compare_reports(&base, &base, 0.5).unwrap().is_empty());

        // Commit/abort counts are exact: any drift fails, even "better".
        let drift = server_report(4, 120, 6, 60.0);
        let found = compare_reports(&base, &drift, 0.5).unwrap();
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("aborted drifted"), "{found:?}");
        assert!(found[0].contains("sessions=4"), "{found:?}");

        let drift = server_report(4, 119, 7, 60.0);
        let found = compare_reports(&base, &drift, 0.5).unwrap();
        assert!(found[0].contains("committed drifted"), "{found:?}");
    }

    #[test]
    fn server_throughput_ratio_is_floored_not_exact() {
        let base = server_report(4, 120, 7, 60.0); // serial/concurrent ≈ 1.67
                                                   // 20% sag: inside tolerance.
        let noisy = server_report(4, 120, 7, 72.0);
        assert!(compare_reports(&base, &noisy, 0.5).unwrap().is_empty());
        // Collapse below half the baseline ratio: regression.
        let collapsed = server_report(4, 120, 7, 150.0);
        let found = compare_reports(&base, &collapsed, 0.5).unwrap();
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("serial/concurrent"), "{found:?}");
    }

    fn pipeline_report(rows: &[(u64, &str, u64, u64, f64, f64)]) -> JsonValue {
        // (sessions, pipeline, hw_threads, fsyncs, pipelined_ms, unpipelined_ms)
        let rows: Vec<String> = rows
            .iter()
            .map(|(s, p, hw, fs, pi, un)| {
                format!(
                    r#"{{"sessions":{s},"pipeline":"{p}","hw_threads":{hw},
                        "committed":120,"aborted":0,"fsyncs":{fs},
                        "serial_ms":100.0,"concurrent_ms":60.0,
                        "pipelined_ms":{pi},"unpipelined_ms":{un}}}"#
                )
            })
            .collect();
        JsonValue::parse(&format!(
            r#"{{"bench":"server","results":[{}]}}"#,
            rows.join(",")
        ))
        .unwrap()
    }

    #[test]
    fn pipeline_rows_key_on_sessions_and_variant() {
        // on/off rows at the same session count are distinct keys: a
        // report with both must match a baseline with both.
        let base = pipeline_report(&[(4, "on", 8, 15, 10.0, 20.0), (4, "off", 8, 120, 10.0, 20.0)]);
        assert!(compare_reports(&base, &base, 0.5).unwrap().is_empty());
        let only_on = pipeline_report(&[(4, "on", 8, 15, 10.0, 20.0)]);
        let found = compare_reports(&base, &only_on, 0.5).unwrap();
        assert!(
            found
                .iter()
                .any(|r| r.contains("pipeline=off") && r.contains("row missing")),
            "{found:?}"
        );
        // fsyncs is an exact counter: coalescing drift is semantic.
        let drift =
            pipeline_report(&[(4, "on", 8, 16, 10.0, 20.0), (4, "off", 8, 120, 10.0, 20.0)]);
        let found = compare_reports(&base, &drift, 0.5).unwrap();
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("fsyncs drifted"), "{found:?}");
    }

    #[test]
    fn pipeline_speedup_gates_are_hardware_conditional() {
        let base = pipeline_report(&[(4, "on", 8, 15, 10.0, 20.0)]); // 2.0x
        let gates = |floor: Option<f64>| GateOptions {
            tolerance: 0.5,
            pipeline_floor: floor,
            ..GateOptions::default()
        };
        // Sagged to 1.25x: inside the 50% relative tolerance.
        let noisy = pipeline_report(&[(4, "on", 8, 15, 16.0, 20.0)]);
        assert!(compare_reports_gated(&base, &noisy, &gates(None))
            .unwrap()
            .is_empty());
        // ...but below an absolute floor of 1.5.
        let found = compare_reports_gated(&base, &noisy, &gates(Some(1.5))).unwrap();
        assert!(
            found.iter().any(|r| r.contains("absolute floor")),
            "{found:?}"
        );
        // Collapsed to 0.8x: relative regression even with no floor.
        let collapsed = pipeline_report(&[(4, "on", 8, 15, 25.0, 20.0)]);
        let found = compare_reports_gated(&base, &collapsed, &gates(None)).unwrap();
        assert!(
            found.iter().any(|r| r.contains("pipeline speedup fell")),
            "{found:?}"
        );
        // A 1-core runner is excused from both speedup gates (exact
        // counters still bind, so keep them identical here).
        let one_core = pipeline_report(&[(4, "on", 1, 15, 25.0, 20.0)]);
        assert!(compare_reports_gated(&base, &one_core, &gates(Some(1.5)))
            .unwrap()
            .is_empty());
    }

    fn hybrid_report(rows: &[(u64, f64, f64, f64, u64, u64)]) -> JsonValue {
        // (n_items, incremental_ms, naive_ms, hybrid_ms, chose_inc, chose_nve)
        let rows: Vec<String> = rows
            .iter()
            .map(|(n, i, nv, h, ci, cn)| {
                format!(
                    r#"{{"n_items":{n},"incremental_ms":{i},"naive_ms":{nv},
                        "hybrid_ms":{h},"chose_incremental":{ci},"chose_naive":{cn}}}"#
                )
            })
            .collect();
        JsonValue::parse(&format!(
            r#"{{"bench":"hybrid","results":[{}]}}"#,
            rows.join(",")
        ))
        .unwrap()
    }

    #[test]
    fn hybrid_epsilon_and_strategy_counters() {
        let base = hybrid_report(&[(100, 8.0, 5.0, 5.5, 17, 3)]);
        let eps = |e: Option<f64>| GateOptions {
            tolerance: 0.5,
            hybrid_epsilon: e,
            ..GateOptions::default()
        };
        // hybrid 5.5 vs best pure 5.0: within ε = 0.2.
        assert!(compare_reports_gated(&base, &base, &eps(Some(0.2)))
            .unwrap()
            .is_empty());
        // hybrid 7.0 > 5.0 * 1.2: regression (fresh-only check).
        let worse = hybrid_report(&[(100, 8.0, 5.0, 7.0, 17, 3)]);
        let found = compare_reports_gated(&base, &worse, &eps(Some(0.2))).unwrap();
        assert!(found.iter().any(|r| r.contains("hybrid_ms")), "{found:?}");
        // Without the flag the same report passes on ratio tolerance.
        assert!(compare_reports_gated(&base, &worse, &eps(None))
            .unwrap()
            .is_empty());
        // Strategy-choice counters are deterministic: drift is semantic.
        let drift = hybrid_report(&[(100, 8.0, 5.0, 5.5, 16, 4)]);
        let found = compare_reports_gated(&base, &drift, &eps(None)).unwrap();
        assert!(
            found
                .iter()
                .any(|r| r.contains("chose_incremental drifted")),
            "{found:?}"
        );
        assert!(
            found.iter().any(|r| r.contains("chose_naive drifted")),
            "{found:?}"
        );
    }
}
