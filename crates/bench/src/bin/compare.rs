//! Bench-regression gate: diff a fresh bench JSON report against a
//! committed baseline and exit non-zero on regression.
//!
//! ```text
//! compare --baseline crates/bench/baselines/BENCH_fig6.json \
//!         --fresh BENCH_fig6.json [--tolerance 0.5] [--scaling-floor 1.5] \
//!         [--pipeline-floor 1.2] [--hybrid-epsilon 0.5]
//! ```
//!
//! Deterministic counters (`fired`/`candidates`/`rejected`, and the
//! row-level `committed`/`aborted`/`fsyncs`/`chose_*` family) must
//! match the baseline exactly — a drift there is a semantic change, not
//! noise. Speed *ratios* (naive/incremental, static/adaptive,
//! serial/concurrent, best/hybrid) may sag by up to `tolerance`
//! (relative) before the gate trips; absolute milliseconds are never
//! compared, so runner speed doesn't matter.
//!
//! When both reports carry a `"scaling"` sweep (fig7 `--workers`), the
//! sweep is gated too: counters must agree across every worker count,
//! per-worker-count speedups must not collapse below the baseline, and
//! `--scaling-floor F` additionally demands an absolute speedup of F at
//! ≥4 workers — but speedup gates only bind on runners with enough
//! hardware threads (`hw_threads >= workers` in the fresh row).
//!
//! Server-bench `pipeline=on` rows carry the wire-pipelining ablation
//! (`unpipelined_ms / pipelined_ms`); `--pipeline-floor F` demands that
//! speedup reach F at ≥4 sessions, again hardware-conditionally
//! (`hw_threads >= sessions`). `--hybrid-epsilon E` demands hybrid rows
//! satisfy `hybrid_ms <= (1+E) × min(incremental_ms, naive_ms)` — an
//! absolute check on the fresh report alone.

use amos_bench::report::{compare_reports_gated, GateOptions};
use amos_metrics::json::JsonValue;
use std::process::ExitCode;

struct Args {
    baseline: String,
    fresh: String,
    gates: GateOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut fresh = None;
    let mut gates = GateOptions {
        tolerance: 0.5,
        ..GateOptions::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        let parse = |name: &str, v: String| v.parse::<f64>().map_err(|e| format!("{name}: {e}"));
        match flag.as_str() {
            "--baseline" => baseline = Some(grab("--baseline")?),
            "--fresh" => fresh = Some(grab("--fresh")?),
            "--tolerance" => gates.tolerance = parse("--tolerance", grab("--tolerance")?)?,
            "--scaling-floor" => {
                gates.scaling_floor = Some(parse("--scaling-floor", grab("--scaling-floor")?)?)
            }
            "--pipeline-floor" => {
                gates.pipeline_floor = Some(parse("--pipeline-floor", grab("--pipeline-floor")?)?)
            }
            "--hybrid-epsilon" => {
                gates.hybrid_epsilon = Some(parse("--hybrid-epsilon", grab("--hybrid-epsilon")?)?)
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        fresh: fresh.ok_or("--fresh is required")?,
        gates,
    })
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let run = || -> Result<Vec<String>, String> {
        let args = parse_args()?;
        let baseline = load(&args.baseline)?;
        let fresh = load(&args.fresh)?;
        let regressions = compare_reports_gated(&baseline, &fresh, &args.gates)?;
        println!(
            "compare: {} vs {} (tolerance {})",
            args.baseline, args.fresh, args.gates.tolerance
        );
        Ok(regressions)
    };
    match run() {
        Ok(regressions) if regressions.is_empty() => {
            println!("compare: OK — no regressions");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            for r in &regressions {
                eprintln!("REGRESSION: {r}");
            }
            eprintln!("compare: {} regression(s)", regressions.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("compare: error: {e}");
            ExitCode::FAILURE
        }
    }
}
