//! Bench-regression gate: diff a fresh bench JSON report against a
//! committed baseline and exit non-zero on regression.
//!
//! ```text
//! compare --baseline crates/bench/baselines/BENCH_fig6.json \
//!         --fresh BENCH_fig6.json [--tolerance 0.5] [--scaling-floor 1.5]
//! ```
//!
//! Deterministic counters (`fired`/`candidates`/`rejected`) must match
//! the baseline exactly — a drift there is a semantic change, not
//! noise. Speed *ratios* (naive/incremental, static/adaptive) may sag
//! by up to `tolerance` (relative) before the gate trips; absolute
//! milliseconds are never compared, so runner speed doesn't matter.
//!
//! When both reports carry a `"scaling"` sweep (fig7 `--workers`), the
//! sweep is gated too: counters must agree across every worker count,
//! per-worker-count speedups must not collapse below the baseline, and
//! `--scaling-floor F` additionally demands an absolute speedup of F at
//! ≥4 workers — but speedup gates only bind on runners with enough
//! hardware threads (`hw_threads >= workers` in the fresh row).

use amos_bench::report::compare_reports_scaled;
use amos_metrics::json::JsonValue;
use std::process::ExitCode;

struct Args {
    baseline: String,
    fresh: String,
    tolerance: f64,
    scaling_floor: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut fresh = None;
    let mut tolerance = 0.5;
    let mut scaling_floor = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--baseline" => baseline = Some(grab("--baseline")?),
            "--fresh" => fresh = Some(grab("--fresh")?),
            "--tolerance" => {
                tolerance = grab("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--scaling-floor" => {
                scaling_floor = Some(
                    grab("--scaling-floor")?
                        .parse()
                        .map_err(|e| format!("--scaling-floor: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        fresh: fresh.ok_or("--fresh is required")?,
        tolerance,
        scaling_floor,
    })
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let run = || -> Result<Vec<String>, String> {
        let args = parse_args()?;
        let baseline = load(&args.baseline)?;
        let fresh = load(&args.fresh)?;
        let regressions =
            compare_reports_scaled(&baseline, &fresh, args.tolerance, args.scaling_floor)?;
        println!(
            "compare: {} vs {} (tolerance {})",
            args.baseline, args.fresh, args.tolerance
        );
        Ok(regressions)
    };
    match run() {
        Ok(regressions) if regressions.is_empty() => {
            println!("compare: OK — no regressions");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            for r in &regressions {
                eprintln!("REGRESSION: {r}");
            }
            eprintln!("compare: {} regression(s)", regressions.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("compare: error: {e}");
            ExitCode::FAILURE
        }
    }
}
