//! Regenerates **fig. 6** of the paper: "100 transactions with 1 change
//! to 1 partial differential" over database sizes 1 → 10 000.
//!
//! Expected shape (paper): incremental cost is ~independent of database
//! size; naive cost grows linearly (it re-evaluates the whole condition,
//! scanning all items, at every commit).
//!
//! Run with: `cargo run -p amos-bench --release --bin fig6`
//!
//! Flags (shared with the CI bench-smoke job):
//!   --json PATH         write a BENCH_fig6.json report with per-size
//!                       timings and last-pass propagation metrics
//!   --sizes A,B,C       override the database sizes to sweep
//!   --transactions N    override the per-size transaction count

use amos_bench::report::{BenchArgs, SizeRow};
use amos_bench::{time_secs, InventoryWorld};
use amos_core::MonitorMode;
use amos_db::engine::NetworkPrep;
use amos_metrics::PassMetrics;

const DEFAULT_TRANSACTIONS: usize = 100;
const DEFAULT_SIZES: &[usize] = &[1, 10, 100, 1_000, 10_000];

fn run(
    n_items: usize,
    mode: MonitorMode,
    transactions: usize,
    tabling: bool,
) -> (f64, Option<PassMetrics>) {
    let mut world = InventoryWorld::new(n_items, mode, NetworkPrep::Flat);
    world.db.set_tabling(tabling);
    // Warm up one transaction (index build, first materialization).
    world.tx_single_quantity_update(0, 10_001);
    let secs = time_secs(|| {
        for i in 0..transactions {
            // Always a real net change, always above threshold.
            world.tx_single_quantity_update(i % n_items, 10_002 + i as i64);
        }
    });
    (secs, world.db.last_pass_metrics().cloned())
}

fn main() {
    let args = BenchArgs::parse();
    let transactions = args.transactions.unwrap_or(DEFAULT_TRANSACTIONS);
    let sizes: Vec<usize> = args.sizes.clone().unwrap_or_else(|| DEFAULT_SIZES.to_vec());

    println!(
        "# Fig. 6 — {transactions} transactions, each with 1 change to 1 partial differential"
    );
    println!("# (times in milliseconds for all {transactions} transactions)");
    if args.no_tabling {
        println!("# (derived-call tabling DISABLED — ablation run)");
    }
    println!(
        "{:>8} {:>16} {:>12} {:>18}",
        "items", "incremental_ms", "naive_ms", "naive/incremental"
    );
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in &sizes {
        let (inc_secs, last_pass) =
            run(n, MonitorMode::Incremental, transactions, !args.no_tabling);
        let (naive_secs, _) = run(n, MonitorMode::Naive, transactions, !args.no_tabling);
        let inc = inc_secs * 1e3;
        let naive = naive_secs * 1e3;
        println!(
            "{:>8} {:>16.2} {:>12.2} {:>18.2}",
            n,
            inc,
            naive,
            naive / inc
        );
        rows.push(SizeRow {
            n_items: n,
            incremental_ms: inc,
            naive_ms: naive,
            last_pass,
        });
    }
    println!();
    println!("# Paper shape: incremental ≈ flat over db size; naive ≈ linear.");

    if let Some(path) = &args.json {
        amos_bench::report::write_report(
            path,
            "fig6",
            "100 transactions with 1 change to 1 partial differential (paper fig. 6)",
            transactions,
            &rows,
        )
        .expect("write JSON report");
        println!("# wrote {}", path.display());
    }
}
