//! Regenerates **fig. 6** of the paper: "100 transactions with 1 change
//! to 1 partial differential" over database sizes 1 → 10 000.
//!
//! Expected shape (paper): incremental cost is ~independent of database
//! size; naive cost grows linearly (it re-evaluates the whole condition,
//! scanning all items, at every commit).
//!
//! Run with: `cargo run -p amos-bench --release --bin fig6`

use amos_bench::{time_secs, InventoryWorld};
use amos_core::MonitorMode;
use amos_db::engine::NetworkPrep;

const TRANSACTIONS: usize = 100;

fn run(n_items: usize, mode: MonitorMode) -> f64 {
    let mut world = InventoryWorld::new(n_items, mode, NetworkPrep::Flat);
    // Warm up one transaction (index build, first materialization).
    world.tx_single_quantity_update(0, 10_001);
    time_secs(|| {
        for i in 0..TRANSACTIONS {
            // Always a real net change, always above threshold.
            world.tx_single_quantity_update(i % n_items, 10_002 + i as i64);
        }
    })
}

fn main() {
    println!("# Fig. 6 — {TRANSACTIONS} transactions, each with 1 change to 1 partial differential");
    println!("# (times in milliseconds for all {TRANSACTIONS} transactions)");
    println!("{:>8} {:>16} {:>12} {:>18}", "items", "incremental_ms", "naive_ms", "naive/incremental");
    for &n in &[1usize, 10, 100, 1_000, 10_000] {
        let inc = run(n, MonitorMode::Incremental) * 1e3;
        let naive = run(n, MonitorMode::Naive) * 1e3;
        println!(
            "{:>8} {:>16.2} {:>12.2} {:>18.2}",
            n,
            inc,
            naive,
            naive / inc
        );
    }
    println!();
    println!("# Paper shape: incremental ≈ flat over db size; naive ≈ linear.");
}
