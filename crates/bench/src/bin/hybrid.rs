//! Hybrid monitoring (§8): per-rule, per-check-phase cost-based choice
//! between incremental (partial differencing) and naive (recompute +
//! diff) evaluation, on a mixed workload where neither pure strategy
//! wins everywhere.
//!
//! Each database size runs the same seeded workload — `transactions`
//! single-item quantity updates (fig. 6 shape, where incremental is
//! ~O(1)) interleaved with one whole-database update every
//! [`MASSIVE_EVERY`] transactions (fig. 7 shape, where naive's single
//! scan beats re-propagating a Δ covering every item) — under all three
//! monitor modes. The hybrid run additionally records which strategy
//! the cost model chose at every commit; those `chose_incremental` /
//! `chose_naive` counts are deterministic for the fixed workload (the
//! cost model sees exactly the same Δ-set and relation sizes on every
//! machine), so the bench-regression gate compares them exactly. The
//! timing claim — hybrid stays within ε of the *better* pure strategy
//! at every size — is gated by `compare --hybrid-epsilon`.
//!
//! ```text
//! cargo run --release -p amos-bench --bin hybrid -- \
//!     --json BENCH_hybrid.json [--sizes 10,100,1000] [--transactions 30]
//! ```

use amos_bench::report::BenchArgs;
use amos_bench::{time_secs, InventoryWorld};
use amos_core::{MonitorMode, Strategy};
use amos_db::engine::NetworkPrep;
use amos_metrics::{JsonValue, PassMetrics};

const DEFAULT_TRANSACTIONS: usize = 30;
const DEFAULT_SIZES: &[usize] = &[10, 100, 1_000];
/// Every Nth transaction is a whole-database (fig. 7 shape) update.
const MASSIVE_EVERY: usize = 5;

struct HybridRun {
    ms: f64,
    chose_incremental: u64,
    chose_naive: u64,
    last_pass: Option<PassMetrics>,
}

/// Run the mixed workload under `mode`, counting the strategies the
/// hybrid cost model chose (zero for the pure modes, which never
/// consult it).
fn run(n_items: usize, mode: MonitorMode, transactions: usize) -> HybridRun {
    let mut world = InventoryWorld::new(n_items, mode, NetworkPrep::Flat);
    // Warm up one transaction (index build, first materialization).
    world.tx_single_quantity_update(0, 10_001);
    let (mut chose_incremental, mut chose_naive) = (0u64, 0u64);
    let mut count_choices = |world: &InventoryWorld| {
        for strategy in world.db.rules().last_strategies().values() {
            match strategy {
                Strategy::Incremental => chose_incremental += 1,
                Strategy::Naive => chose_naive += 1,
            }
        }
    };
    let secs = time_secs(|| {
        for i in 0..transactions {
            if i % MASSIVE_EVERY == 0 {
                world.tx_massive_update(i as i64);
            } else {
                world.tx_single_quantity_update(i % n_items, 10_002 + i as i64);
            }
            if mode == MonitorMode::Hybrid {
                count_choices(&world);
            }
        }
    });
    HybridRun {
        ms: secs * 1e3,
        chose_incremental,
        chose_naive,
        last_pass: world.db.last_pass_metrics().cloned(),
    }
}

fn main() {
    let args = BenchArgs::parse();
    let transactions = args.transactions.unwrap_or(DEFAULT_TRANSACTIONS);
    let sizes: Vec<usize> = args.sizes.clone().unwrap_or_else(|| DEFAULT_SIZES.to_vec());

    println!(
        "# Hybrid monitoring — {transactions} mixed transactions \
         (1 whole-db update per {MASSIVE_EVERY}), modes incremental / naive / hybrid"
    );
    println!(
        "{:>8} {:>16} {:>12} {:>12} {:>10} {:>10}",
        "items", "incremental_ms", "naive_ms", "hybrid_ms", "chose_inc", "chose_nve"
    );
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in &sizes {
        let inc = run(n, MonitorMode::Incremental, transactions);
        let naive = run(n, MonitorMode::Naive, transactions);
        let hybrid = run(n, MonitorMode::Hybrid, transactions);
        println!(
            "{:>8} {:>16.2} {:>12.2} {:>12.2} {:>10} {:>10}",
            n, inc.ms, naive.ms, hybrid.ms, hybrid.chose_incremental, hybrid.chose_naive
        );
        let mut row = JsonValue::object()
            .with("n_items", n)
            .with("incremental_ms", inc.ms)
            .with("naive_ms", naive.ms)
            .with("hybrid_ms", hybrid.ms)
            .with("chose_incremental", hybrid.chose_incremental)
            .with("chose_naive", hybrid.chose_naive);
        row = match &hybrid.last_pass {
            Some(m) => row.with("last_pass", m.to_json()),
            None => row.with("last_pass", JsonValue::Null),
        };
        rows.push(row);
    }
    println!();
    println!("# Expected shape: hybrid tracks min(incremental, naive) at every size.");

    if let Some(path) = &args.json {
        use std::io::Write as _;
        let doc = JsonValue::object()
            .with("bench", "hybrid")
            .with(
                "description",
                "per-rule cost-based strategy selection on a mixed single-update / \
                 whole-db-update workload: hybrid must track the better of \
                 incremental and naive at every size",
            )
            .with("transactions", transactions)
            .with("results", JsonValue::Array(rows));
        let mut file = std::fs::File::create(path).expect("create JSON report");
        writeln!(file, "{}", doc.to_pretty()).expect("write JSON report");
        println!("# wrote {}", path.display());
    }
}
