//! Adaptive vs static differential planning under skewed cardinalities.
//!
//! Two scenarios, both built directly on the core propagation API so the
//! planner — not parsing or rule bookkeeping — dominates:
//!
//! * **skew** (small Δ, large base): `p(X) ← s(X,G) ∧ big(G,Y) ∧
//!   pick(X,Y)` where `big` holds `BIG_ROWS` rows in 10 groups (fan-out
//!   `BIG_ROWS/10` per group) and `pick` is functional on `X`. After the
//!   `Δ₊s` seed binds `X` and `G`, both remaining literals are index
//!   probes — a constant-cost model ties and takes textual order,
//!   exploding through `big` before `pick` closes the join. The
//!   statistics-backed estimator ranks `pick` first (`|pick|/ndv ≈ 1`
//!   row vs `|big|/ndv(G) = fan-out` rows), turning the differential
//!   into probe-then-lookup.
//!
//! * **bulk** (bulk load, tiny companion): `p2(X) ← s2(X,G) ∧ small(G)`
//!   with `BULK_ROWS` insertions into `s2` against a 4-row `small`. The
//!   static plan Δ-scans the bulk seed and hash-probes `small` per row
//!   (a per-row pattern allocation plus probe); the adaptive planner
//!   prices the sorted-run arrangement, fuses the pair into a single
//!   `MergeJoin` step, and executes it as one lookup join over the
//!   stored arrangement — no per-row plan interpretation at all.
//!
//! `static_ms`/`adaptive_ms` time the **propagation slice only** — the
//! work the planner controls. Δ-application and rollback are
//! byte-identical in both modes (and in the bulk regime they are
//! O(|Δ|) hash churn an order of magnitude above either plan), so they
//! are reported separately as `*_total_ms` rather than folded into the
//! comparison.
//!
//! Run with: `cargo run -p amos-bench --release --bin plan`
//!
//! Flags:
//!   --json PATH        write a BENCH_plan.json report
//!   --sizes BIG,BULK   override BIG_ROWS and BULK_ROWS
//!   --transactions N   override the skew-scenario transaction count

use std::sync::Arc;

use amos_bench::report::BenchArgs;
use amos_bench::time_secs;
use amos_core::adaptive::AdaptivePlanner;
use amos_core::differ::DiffScope;
use amos_core::network::PropagationNetwork;
use amos_core::propagate::{propagate_adaptive, CheckLevel, ExecStrategy};
use amos_metrics::{JsonValue, PassMetrics};
use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::clause::{ClauseBuilder, Term};
use amos_objectlog::eval::EvalShared;
use amos_storage::{RelId, Storage};
use amos_types::{tuple, Tuple, TypeId};

const DEFAULT_BIG_ROWS: usize = 100_000;
const DEFAULT_BULK_ROWS: usize = 50_000;
const DEFAULT_TRANSACTIONS: usize = 30;
/// Δ-tuples inserted per skew transaction.
const DELTA_K: usize = 8;
/// Number of groups in `big` (its first-column NDV).
const GROUPS: i64 = 10;

fn sig(n: usize) -> Vec<TypeId> {
    vec![TypeId(0); n]
}

struct World {
    storage: Storage,
    catalog: Catalog,
    network: PropagationNetwork,
    seed_rel: RelId,
    cond: PredId,
}

/// p(X) ← s(X,G) ∧ big(G,Y) ∧ pick(X,Y), populated with the skewed
/// cardinalities described in the module docs.
fn build_skew(big_rows: usize) -> World {
    let fanout = (big_rows as i64 / GROUPS).max(1);
    let n_picks = 1_000.min(fanout);
    let mut storage = Storage::new();
    let rs = storage.create_relation("s", 2).unwrap();
    let rbig = storage.create_relation("big", 2).unwrap();
    let rpick = storage.create_relation("pick", 2).unwrap();
    let mut catalog = Catalog::new();
    let s = catalog.define_stored("s", sig(2), rs, 1).unwrap();
    let big = catalog.define_stored("big", sig(2), rbig, 1).unwrap();
    let pick = catalog.define_stored("pick", sig(2), rpick, 1).unwrap();
    let cond = catalog
        .define_derived(
            "p",
            sig(1),
            vec![ClauseBuilder::new(3)
                .head([Term::var(0)])
                .pred(s, [Term::var(0), Term::var(1)])
                .pred(big, [Term::var(1), Term::var(2)])
                .pred(pick, [Term::var(0), Term::var(2)])
                .build()],
        )
        .unwrap();
    for g in 0..GROUPS {
        for y in 0..fanout {
            storage.insert(rbig, tuple![g, y]).unwrap();
        }
    }
    for x in 0..n_picks {
        storage.insert(rpick, tuple![x, x % fanout]).unwrap();
    }
    storage.monitor(rs);
    storage.monitor(rbig);
    storage.monitor(rpick);
    let network =
        PropagationNetwork::build(&catalog, &mut storage, &[cond], DiffScope::Full).unwrap();
    World {
        storage,
        catalog,
        network,
        seed_rel: rs,
        cond,
    }
}

/// p2(X) ← s2(X,G) ∧ small(G), where one transaction bulk-loads `s2`.
fn build_bulk() -> World {
    let mut storage = Storage::new();
    let rs2 = storage.create_relation("s2", 2).unwrap();
    let rsmall = storage.create_relation("small", 1).unwrap();
    let mut catalog = Catalog::new();
    let s2 = catalog.define_stored("s2", sig(2), rs2, 1).unwrap();
    let small = catalog.define_stored("small", sig(1), rsmall, 1).unwrap();
    let cond = catalog
        .define_derived(
            "p2",
            sig(1),
            vec![ClauseBuilder::new(2)
                .head([Term::var(0)])
                .pred(s2, [Term::var(0), Term::var(1)])
                .pred(small, [Term::var(1)])
                .build()],
        )
        .unwrap();
    for g in 0..4i64 {
        storage.insert(rsmall, tuple![g]).unwrap();
    }
    storage.monitor(rs2);
    storage.monitor(rsmall);
    let network =
        PropagationNetwork::build(&catalog, &mut storage, &[cond], DiffScope::Full).unwrap();
    World {
        storage,
        catalog,
        network,
        seed_rel: rs2,
        cond,
    }
}

/// Execute one monitored transaction: insert `batch` into the seed
/// relation, propagate (static or adaptive), roll back. Returns the
/// pass metrics, the condition-Δ insertion count (for sanity), and the
/// seconds spent in propagation — the slice the planner controls. The
/// surrounding Δ-application and rollback are byte-identical work in
/// both modes, so timing them would only dilute the comparison (in the
/// bulk regime they are O(|Δ|) hash churn that dwarfs either plan).
fn run_pass(
    w: &mut World,
    batch: &[Tuple],
    shared: &Arc<EvalShared>,
    planner: Option<&AdaptivePlanner>,
) -> (PassMetrics, usize, f64) {
    w.storage.begin().unwrap();
    for t in batch {
        w.storage.insert(w.seed_rel, t.clone()).unwrap();
    }
    shared.reset_pass();
    let mut result = None;
    let prop_secs = time_secs(|| {
        result = Some(
            propagate_adaptive(
                &w.network,
                &w.catalog,
                &w.storage,
                CheckLevel::Nervous,
                ExecStrategy::Parallel,
                shared,
                planner,
            )
            .unwrap(),
        );
    });
    let result = result.expect("propagation ran");
    let plus = result.condition_deltas[&w.cond].plus().len();
    w.storage.rollback().unwrap();
    (result.metrics, plus, prop_secs)
}

/// Mean relative error of the estimator over the differentials that
/// carried an estimate (`|est − actual| / max(actual, 1)`).
fn est_row_error(metrics: &PassMetrics) -> Option<f64> {
    let errs: Vec<f64> = metrics
        .differentials
        .iter()
        .filter_map(|d| {
            d.est_rows
                .map(|est| (est - d.candidates as f64).abs() / (d.candidates.max(1) as f64))
        })
        .collect();
    if errs.is_empty() {
        None
    } else {
        Some(errs.iter().sum::<f64>() / errs.len() as f64)
    }
}

struct ScenarioRow {
    scenario: &'static str,
    /// Propagation-only milliseconds (the planner-controlled slice).
    static_ms: f64,
    adaptive_ms: f64,
    /// Whole-pass milliseconds including Δ-application and rollback —
    /// mode-independent overhead, reported for context.
    static_total_ms: f64,
    adaptive_total_ms: f64,
    replans: u64,
    plan_cache_hits: u64,
    est_row_error: Option<f64>,
    last_pass: Option<PassMetrics>,
}

impl ScenarioRow {
    fn speedup(&self) -> f64 {
        self.static_ms / self.adaptive_ms
    }

    fn to_json(&self) -> JsonValue {
        let mut row = JsonValue::object()
            .with("scenario", self.scenario)
            .with("static_ms", self.static_ms)
            .with("adaptive_ms", self.adaptive_ms)
            .with("speedup", self.speedup())
            .with("static_total_ms", self.static_total_ms)
            .with("adaptive_total_ms", self.adaptive_total_ms)
            .with("replans", self.replans)
            .with("plan_cache_hits", self.plan_cache_hits);
        row = match self.est_row_error {
            Some(e) => row.with("est_row_error", e),
            None => row.with("est_row_error", JsonValue::Null),
        };
        match &self.last_pass {
            Some(m) => row.with("last_pass", m.to_json()),
            None => row.with("last_pass", JsonValue::Null),
        }
    }
}

/// Time `txns` passes over `batches` in both modes and cross-check that
/// they monitor identically.
fn run_scenario(scenario: &'static str, w: &mut World, batches: &[Vec<Tuple>]) -> ScenarioRow {
    let static_shared = Arc::new(EvalShared::default());
    let adaptive_shared = Arc::new(EvalShared::default());
    let planner = AdaptivePlanner::new();

    // Warm-up (and equivalence check) with the first batch.
    let (_, static_plus, _) = run_pass(w, &batches[0], &static_shared, None);
    let (_, adaptive_plus, _) = run_pass(w, &batches[0], &adaptive_shared, Some(&planner));
    assert_eq!(
        static_plus, adaptive_plus,
        "adaptive and static monitors diverged ({scenario})"
    );

    let mut static_prop = 0.0;
    let static_total_ms = time_secs(|| {
        for batch in batches {
            let (_, _, secs) = run_pass(w, batch, &static_shared, None);
            static_prop += secs;
        }
    }) * 1e3;
    let mut last = None;
    let mut adaptive_prop = 0.0;
    let adaptive_total_ms = time_secs(|| {
        for batch in batches {
            let (metrics, _, secs) = run_pass(w, batch, &adaptive_shared, Some(&planner));
            adaptive_prop += secs;
            last = Some(metrics);
        }
    }) * 1e3;

    ScenarioRow {
        scenario,
        static_ms: static_prop * 1e3,
        adaptive_ms: adaptive_prop * 1e3,
        static_total_ms,
        adaptive_total_ms,
        replans: planner.replan_count(),
        plan_cache_hits: planner.hit_count(),
        est_row_error: last.as_ref().and_then(est_row_error),
        last_pass: last,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (big_rows, bulk_rows) = match args.sizes.as_deref() {
        Some([b, k, ..]) => (*b, *k),
        Some([b]) => (*b, DEFAULT_BULK_ROWS),
        _ => (DEFAULT_BIG_ROWS, DEFAULT_BULK_ROWS),
    };
    let txns = args.transactions.unwrap_or(DEFAULT_TRANSACTIONS);

    println!("# adaptive vs static differential planning");
    println!(
        "# skew: {txns} transactions x {DELTA_K} Δ-tuples against big={big_rows} rows \
         (fan-out {}); bulk: one {bulk_rows}-row load x 3 passes",
        big_rows as i64 / GROUPS
    );
    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>8} {:>6} {:>10}",
        "scenario", "static_ms", "adaptive_ms", "speedup", "replans", "hits", "est_err"
    );

    let mut rows: Vec<ScenarioRow> = Vec::new();

    {
        let mut w = build_skew(big_rows);
        let batches: Vec<Vec<Tuple>> = (0..txns)
            .map(|t| {
                (0..DELTA_K as i64)
                    .map(|i| {
                        let x = (t * DELTA_K) as i64 + i;
                        tuple![x % 1_000, x % GROUPS]
                    })
                    .collect()
            })
            .collect();
        rows.push(run_scenario("skew", &mut w, &batches));
    }
    {
        let mut w = build_bulk();
        let batch: Vec<Tuple> = (0..bulk_rows as i64).map(|x| tuple![x, x % 100]).collect();
        let batches = vec![batch.clone(), batch.clone(), batch];
        rows.push(run_scenario("bulk", &mut w, &batches));
    }

    for r in &rows {
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>9.2} {:>8} {:>6} {:>10}",
            r.scenario,
            r.static_ms,
            r.adaptive_ms,
            r.speedup(),
            r.replans,
            r.plan_cache_hits,
            r.est_row_error.map_or("n/a".into(), |e| format!("{e:.3}")),
        );
    }
    println!();
    println!("# static_ms/adaptive_ms time propagation only (the planner-controlled slice);");
    println!("# whole-pass totals incl. Δ-apply+rollback are in the JSON as *_total_ms.");
    println!("# Expectation: skew speedup >= 2 (estimator reorders the tied probes);");
    println!("# bulk speedup >= 1.3 (fused merge/lookup join beats per-row hash probing).");

    if let Some(path) = &args.json {
        let doc = JsonValue::object()
            .with("bench", "plan")
            .with(
                "description",
                "statistics-driven adaptive differential planning vs static activation-time plans",
            )
            .with("big_rows", big_rows)
            .with("bulk_rows", bulk_rows)
            .with("transactions", txns)
            .with(
                "results",
                JsonValue::Array(rows.iter().map(ScenarioRow::to_json).collect()),
            );
        let mut file = std::fs::File::create(path).expect("create JSON report");
        use std::io::Write as _;
        writeln!(file, "{}", doc.to_pretty()).expect("write JSON report");
        println!("# wrote {}", path.display());
    }
}
