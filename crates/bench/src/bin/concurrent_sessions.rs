//! Multi-session transaction-server throughput, conflict behavior, and
//! commit-pipeline ablation.
//!
//! Per session count, each selected pipeline variant (`on` = commit
//! pipeline + grouped WAL + statement pipelining, `off` = fsync under
//! the engine lock, one commit per fsync, line-at-a-time protocol) runs
//! three phases over its own WAL-attached engine:
//!
//! * **Deterministic phase** — a single driver thread advances K
//!   sessions in strict round-robin through seeded workloads (two
//!   whole-relation `threshold` scans plus one hot-key-skewed
//!   read-modify-write of `quantity` per transaction). The interleaving
//!   and every key choice derive from the seed, so the resulting
//!   `committed` / `aborted` / `fsyncs` counters are **exact across
//!   machines** — the bench-regression gate compares them with zero
//!   tolerance: any drift means conflict detection or the WAL flush
//!   protocol itself changed.
//! * **Timed phase** — the same total workload run twice: serially on
//!   one session (`serial_ms`), then free-running on K OS threads with
//!   retry-on-conflict (`concurrent_ms`, `commits_per_sec`). The gate
//!   compares only the `serial_ms / concurrent_ms` *ratio*, floored by
//!   a tolerance — absolute milliseconds measure the runner. The
//!   free-running run also snapshots [`amos_db::CommitMetrics`]
//!   (fsyncs, batch-size histogram, lock-hold ns, waiters woken) into
//!   the row's informative `commit` object.
//! * **Wire phase** (`on` rows only) — a real `amos_server` instance
//!   driven by K TCP clients: `pipelined_ms` streams statements in
//!   windows of 16 against the full pipeline stack, `unpipelined_ms`
//!   waits for `READY` after every line against the all-off stack. The
//!   `pipeline_speedup` ratio is what the `--pipeline-floor` CI gate
//!   watches (hardware-conditionally, like the fig. 7 scaling gate).
//!
//! ```text
//! cargo run --release -p amos-bench --bin concurrent_sessions -- \
//!     --json BENCH_server.json [--sessions 1,2,4,8] [--transactions 30] \
//!     [--pipeline on|off|both]
//! ```

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use amos_db::{Amos, CommitMetrics, SharedEngine, WalConfig};
use amos_metrics::JsonValue;
use amos_server::{serve, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_ITEMS: usize = 16;
/// Statements a pipelined wire client streams before draining responses.
const CLIENT_WINDOW: usize = 16;

/// One pipeline variant of the full stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pipeline {
    On,
    Off,
}

impl Pipeline {
    fn label(self) -> &'static str {
        match self {
            Pipeline::On => "on",
            Pipeline::Off => "off",
        }
    }

    fn wal_config(self) -> WalConfig {
        match self {
            // Group window 8: a flush leader drains up to the whole
            // backlog; delay 0 keeps single-commit latency unchanged
            // (coalescing comes from commits arriving mid-flush).
            Pipeline::On => WalConfig::grouped(8),
            Pipeline::Off => WalConfig::default(),
        }
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "amos-bench-sessions-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build(pipeline: Pipeline, wal_dir: &Path) -> Arc<SharedEngine> {
    let mut db = Amos::new();
    db.options.commit_pipeline = pipeline == Pipeline::On;
    db.register_procedure("note", |_ctx, _args| Ok(()));
    db.attach_wal(wal_dir, pipeline.wal_config()).expect("WAL");
    db.execute(
        r#"
        create type item;
        create function quantity(item i) -> integer;
        create function threshold(item i) -> integer;

        create rule low() as
            when for each item i
            where quantity(i) < threshold(i)
            do note(i);
    "#,
    )
    .expect("schema");
    let names: Vec<String> = (0..N_ITEMS).map(|i| format!(":i{i}")).collect();
    db.execute(&format!("create item instances {};", names.join(", ")))
        .expect("instances");
    for (i, name) in names.iter().enumerate() {
        db.execute(&format!("set quantity({name}) = {};", 1_000 + i as i64))
            .expect("quantity");
        db.execute(&format!("set threshold({name}) = 0;"))
            .expect("threshold");
    }
    db.execute("activate low();").expect("activate");
    SharedEngine::new(db)
}

/// One transaction body: two parallelizable whole-relation reads plus a
/// hot-key-skewed read-modify-write (30% of writes hit item 0).
fn txn_body(rng: &mut StdRng) -> String {
    let key = if rng.gen_bool(0.3) {
        0
    } else {
        rng.gen_range(0..N_ITEMS)
    };
    format!(
        "select threshold(i) for each item i; \
         select threshold(i) for each item i; \
         set quantity(:i{key}) = quantity(:i{key}) - 1;"
    )
}

/// Round-robin deterministic phase: K sessions, `per` transactions
/// each, advanced one protocol step at a time in session order. Every
/// transaction of a round overlaps every other, so same-key writes in
/// one round conflict by construction. Aborted transactions are counted
/// and skipped (not retried), keeping all three counters exact: the
/// single driver thread makes the WAL flush schedule — and therefore
/// `fsyncs` — as deterministic as the commit sequence itself.
fn deterministic_phase(k: usize, per: usize, seed: u64, pipeline: Pipeline) -> (u64, u64, u64) {
    let dir = fresh_dir("det");
    let engine = build(pipeline, &dir);
    let fsyncs_before = engine.commit_metrics().wal.map_or(0, |w| w.fsyncs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sessions: Vec<_> = (0..k).map(|_| engine.session()).collect();
    let bodies: Vec<Vec<String>> = (0..k)
        .map(|_| (0..per).map(|_| txn_body(&mut rng)).collect())
        .collect();
    let (mut committed, mut aborted) = (0u64, 0u64);
    for round in 0..per {
        for s in sessions.iter_mut() {
            s.execute("begin;").unwrap();
        }
        for (s, body) in sessions.iter_mut().zip(&bodies) {
            s.execute(&body[round]).unwrap();
        }
        for s in sessions.iter_mut() {
            match s.execute("commit;") {
                Ok(_) => committed += 1,
                Err(e) if e.is_retryable() => aborted += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
    let fsyncs = engine.commit_metrics().wal.map_or(0, |w| w.fsyncs) - fsyncs_before;
    drop(sessions);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    (committed, aborted, fsyncs)
}

/// Serial reference: the full K×per workload on one session, one
/// transaction at a time.
fn serial_phase(k: usize, per: usize, seed: u64, pipeline: Pipeline) -> f64 {
    let dir = fresh_dir("serial");
    let engine = build(pipeline, &dir);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = engine.session();
    let start = Instant::now();
    for _ in 0..k * per {
        let body = txn_body(&mut rng);
        s.execute(&format!("begin; {body} commit;")).unwrap();
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    drop(s);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    ms
}

/// Free-running phase: K threads, each its own session, retrying
/// conflicted transactions until they commit. Returns (elapsed ms,
/// committed, commit-pipeline metrics).
fn concurrent_phase(
    k: usize,
    per: usize,
    seed: u64,
    pipeline: Pipeline,
) -> (f64, u64, CommitMetrics) {
    let dir = fresh_dir("conc");
    let engine = build(pipeline, &dir);
    let committed = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..k {
        let engine = Arc::clone(&engine);
        let committed = Arc::clone(&committed);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
            let mut s = engine.session();
            for _ in 0..per {
                let body = txn_body(&mut rng);
                let script = format!("begin; {body} commit;");
                loop {
                    match s.execute(&script) {
                        Ok(_) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(e) if e.is_retryable() => continue,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let metrics = engine.commit_metrics();
    let n = committed.load(Ordering::Relaxed) as u64;
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    (ms, n, metrics)
}

/// Wire phase: a real TCP server driven by K clients, each committing
/// `per` disjoint-key transactions (no conflicts, so a pipelined client
/// never has to re-pair a retried statement). `windowed` streams
/// [`CLIENT_WINDOW`] lines before draining their responses; otherwise
/// each line waits for its `READY`.
fn wire_phase(k: usize, per: usize, pipeline: Pipeline, windowed: bool) -> f64 {
    let dir = fresh_dir("wire");
    let engine = build(pipeline, &dir);
    let config = ServerConfig {
        max_sessions: k.max(1),
        pipeline: pipeline == Pipeline::On,
        ..ServerConfig::default()
    };
    let mut server = serve("127.0.0.1:0", engine, config).expect("bind");
    let addr = server.addr();
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..k {
        handles.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut r = BufReader::new(stream.try_clone().expect("clone"));
            let mut w = BufWriter::new(stream);
            let mut line = String::new();
            let mut ready = || loop {
                line.clear();
                assert!(r.read_line(&mut line).expect("read") > 0, "server hung up");
                assert!(
                    !line.starts_with("ERR "),
                    "unexpected wire error: {}",
                    line.trim_end()
                );
                if line.starts_with("READY") {
                    return;
                }
            };
            ready(); // greeting
            let key = t % N_ITEMS;
            let script = format!(
                "begin; select threshold(i) for each item i; \
                 set quantity(:i{key}) = quantity(:i{key}) - 1; commit;\n"
            );
            let mut sent = 0usize;
            let mut acked = 0usize;
            while acked < per {
                if windowed {
                    while sent < per && sent - acked < CLIENT_WINDOW {
                        w.write_all(script.as_bytes()).expect("write");
                        sent += 1;
                    }
                    w.flush().expect("flush");
                } else if sent == acked {
                    w.write_all(script.as_bytes()).expect("write");
                    w.flush().expect("flush");
                    sent += 1;
                }
                ready();
                acked += 1;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
    ms
}

fn commit_json(m: &CommitMetrics) -> JsonValue {
    let mut obj = JsonValue::object()
        .with("commits", m.commits)
        .with("lock_hold_ns", m.lock_hold_ns)
        .with("lock_hold_ns_max", m.lock_hold_ns_max);
    if let Some(wal) = &m.wal {
        obj = obj
            .with("fsyncs", wal.fsyncs)
            .with("batches", wal.batches)
            .with("max_group", wal.max_group)
            .with("waiters_woken", wal.waiters_woken)
            .with(
                "group_hist",
                JsonValue::Array(wal.group_hist.iter().map(|&n| JsonValue::from(n)).collect()),
            );
    }
    obj
}

fn main() {
    let mut json: Option<PathBuf> = None;
    let mut sessions = vec![1usize, 2, 4, 8];
    let mut per = 30usize;
    let mut variants = vec![Pipeline::On, Pipeline::Off];
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--json" => json = Some(PathBuf::from(value("--json"))),
            "--sessions" => {
                sessions = value("--sessions")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad session count"))
                    .collect()
            }
            "--transactions" => per = value("--transactions").parse().expect("bad count"),
            "--pipeline" => {
                variants = match value("--pipeline").as_str() {
                    "on" => vec![Pipeline::On],
                    "off" => vec![Pipeline::Off],
                    "both" => vec![Pipeline::On, Pipeline::Off],
                    other => panic!("--pipeline takes on|off|both, got {other:?}"),
                }
            }
            other => panic!(
                "unknown flag {other:?} (expected --json PATH, --sessions A,B,C, \
                 --transactions N, --pipeline on|off|both)"
            ),
        }
    }
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "concurrent_sessions: {per} transactions/session, sessions {sessions:?}, \
         pipeline {:?}, hw_threads {hw_threads}",
        variants.iter().map(|v| v.label()).collect::<Vec<_>>()
    );
    let mut rows = Vec::new();
    for &k in &sessions {
        for &pipeline in &variants {
            let (committed, aborted, fsyncs) = deterministic_phase(k, per, 42, pipeline);
            let serial_ms = serial_phase(k, per, 43, pipeline);
            let (concurrent_ms, free_committed, metrics) = concurrent_phase(k, per, 43, pipeline);
            let commits_per_sec =
                free_committed as f64 / (concurrent_ms / 1e3).max(f64::MIN_POSITIVE);
            println!(
                "  sessions={k} pipeline={}: committed={committed} aborted={aborted} \
                 fsyncs={fsyncs} serial={serial_ms:.1}ms concurrent={concurrent_ms:.1}ms \
                 ({commits_per_sec:.0} commits/s, serial/concurrent {:.2}x)",
                pipeline.label(),
                serial_ms / concurrent_ms.max(f64::MIN_POSITIVE)
            );
            let mut row = JsonValue::object()
                .with("sessions", k)
                .with("pipeline", pipeline.label())
                .with("hw_threads", hw_threads)
                .with("committed", committed)
                .with("aborted", aborted)
                .with("fsyncs", fsyncs)
                .with("serial_ms", serial_ms)
                .with("concurrent_ms", concurrent_ms)
                .with("commits_per_sec", commits_per_sec);
            if pipeline == Pipeline::On {
                // The wire ablation compares the whole stack: pipelined
                // clients + pipelined server + grouped WAL vs the all-off
                // configuration, at the same session count.
                let pipelined_ms = wire_phase(k, per, Pipeline::On, true);
                let unpipelined_ms = wire_phase(k, per, Pipeline::Off, false);
                let speedup = unpipelined_ms / pipelined_ms.max(f64::MIN_POSITIVE);
                println!(
                    "    wire: pipelined={pipelined_ms:.1}ms unpipelined={unpipelined_ms:.1}ms \
                     (speedup {speedup:.2}x)"
                );
                row = row
                    .with("pipelined_ms", pipelined_ms)
                    .with("unpipelined_ms", unpipelined_ms)
                    .with("pipeline_speedup", speedup);
            }
            row = row.with("commit", commit_json(&metrics));
            rows.push(row);
        }
    }

    if let Some(path) = json {
        use std::io::Write as _;
        let doc = JsonValue::object()
            .with("bench", "server")
            .with(
                "description",
                "multi-session snapshot-isolation server: deterministic round-robin \
                 conflict + fsync counts, free-running throughput vs serial reference, \
                 and the wire-level pipelining ablation",
            )
            .with("transactions", per)
            .with("results", JsonValue::Array(rows));
        let mut file = std::fs::File::create(&path).expect("create JSON report");
        writeln!(file, "{}", doc.to_pretty()).expect("write JSON report");
        println!("wrote {}", path.display());
    }
}
