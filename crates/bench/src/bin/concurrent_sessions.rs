//! Multi-session transaction-server throughput and conflict behavior.
//!
//! Two phases per session count, over one shared engine each:
//!
//! * **Deterministic phase** — a single driver thread advances K
//!   sessions in strict round-robin through seeded workloads (two
//!   whole-relation `threshold` scans plus one hot-key-skewed
//!   read-modify-write of `quantity` per transaction). The interleaving
//!   and every key choice derive from the seed, so the resulting
//!   `committed` / `aborted` counters are **exact across machines** —
//!   the bench-regression gate compares them with zero tolerance: any
//!   drift means conflict detection itself changed.
//! * **Timed phase** — the same total workload run twice: serially on
//!   one session (`serial_ms`), then free-running on K OS threads with
//!   retry-on-conflict (`concurrent_ms`, `commits_per_sec`). The gate
//!   compares only the `serial_ms / concurrent_ms` *ratio*, floored by
//!   a tolerance — absolute milliseconds measure the runner.
//!
//! Reads (snapshot selects, scalar probes) run under the engine's read
//! lock and parallelize; commits serialize through the write lock. The
//! workload is read-heavy inside each transaction precisely so the
//! session layer has something to overlap.
//!
//! ```text
//! cargo run --release -p amos-bench --bin concurrent_sessions -- \
//!     --json BENCH_server.json [--sessions 1,2,4,8] [--transactions 30]
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use amos_db::{Amos, SharedEngine};
use amos_metrics::JsonValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_ITEMS: usize = 16;

fn build() -> Arc<SharedEngine> {
    let mut db = Amos::new();
    db.register_procedure("note", |_ctx, _args| Ok(()));
    db.execute(
        r#"
        create type item;
        create function quantity(item i) -> integer;
        create function threshold(item i) -> integer;

        create rule low() as
            when for each item i
            where quantity(i) < threshold(i)
            do note(i);
    "#,
    )
    .expect("schema");
    let names: Vec<String> = (0..N_ITEMS).map(|i| format!(":i{i}")).collect();
    db.execute(&format!("create item instances {};", names.join(", ")))
        .expect("instances");
    for (i, name) in names.iter().enumerate() {
        db.execute(&format!("set quantity({name}) = {};", 1_000 + i as i64))
            .expect("quantity");
        db.execute(&format!("set threshold({name}) = 0;"))
            .expect("threshold");
    }
    db.execute("activate low();").expect("activate");
    SharedEngine::new(db)
}

/// One transaction body: two parallelizable whole-relation reads plus a
/// hot-key-skewed read-modify-write (30% of writes hit item 0).
fn txn_body(rng: &mut StdRng) -> String {
    let key = if rng.gen_bool(0.3) {
        0
    } else {
        rng.gen_range(0..N_ITEMS)
    };
    format!(
        "select threshold(i) for each item i; \
         select threshold(i) for each item i; \
         set quantity(:i{key}) = quantity(:i{key}) - 1;"
    )
}

/// Round-robin deterministic phase: K sessions, `per` transactions
/// each, advanced one protocol step at a time in session order. Every
/// transaction of a round overlaps every other, so same-key writes in
/// one round conflict by construction. Aborted transactions are counted
/// and skipped (not retried), keeping both counters exact.
fn deterministic_phase(k: usize, per: usize, seed: u64) -> (u64, u64) {
    let engine = build();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sessions: Vec<_> = (0..k).map(|_| engine.session()).collect();
    let bodies: Vec<Vec<String>> = (0..k)
        .map(|_| (0..per).map(|_| txn_body(&mut rng)).collect())
        .collect();
    let (mut committed, mut aborted) = (0u64, 0u64);
    for round in 0..per {
        for s in sessions.iter_mut() {
            s.execute("begin;").unwrap();
        }
        for (s, body) in sessions.iter_mut().zip(&bodies) {
            s.execute(&body[round]).unwrap();
        }
        for s in sessions.iter_mut() {
            match s.execute("commit;") {
                Ok(_) => committed += 1,
                Err(e) if e.is_retryable() => aborted += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
    (committed, aborted)
}

/// Serial reference: the full K×per workload on one session, one
/// transaction at a time.
fn serial_phase(k: usize, per: usize, seed: u64) -> f64 {
    let engine = build();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = engine.session();
    let start = Instant::now();
    for _ in 0..k * per {
        let body = txn_body(&mut rng);
        s.execute(&format!("begin; {body} commit;")).unwrap();
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// Free-running phase: K threads, each its own session, retrying
/// conflicted transactions until they commit. Returns (elapsed ms,
/// committed).
fn concurrent_phase(k: usize, per: usize, seed: u64) -> (f64, u64) {
    let engine = build();
    let committed = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..k {
        let engine = Arc::clone(&engine);
        let committed = Arc::clone(&committed);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
            let mut s = engine.session();
            for _ in 0..per {
                let body = txn_body(&mut rng);
                let script = format!("begin; {body} commit;");
                loop {
                    match s.execute(&script) {
                        Ok(_) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(e) if e.is_retryable() => continue,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (ms, committed.load(Ordering::Relaxed) as u64)
}

fn main() {
    let mut json: Option<PathBuf> = None;
    let mut sessions = vec![1usize, 2, 4, 8];
    let mut per = 30usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--json" => json = Some(PathBuf::from(value("--json"))),
            "--sessions" => {
                sessions = value("--sessions")
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad session count"))
                    .collect()
            }
            "--transactions" => per = value("--transactions").parse().expect("bad count"),
            other => panic!(
                "unknown flag {other:?} (expected --json PATH, --sessions A,B,C, --transactions N)"
            ),
        }
    }

    println!("concurrent_sessions: {per} transactions/session, sessions {sessions:?}");
    let mut rows = Vec::new();
    for &k in &sessions {
        let (committed, aborted) = deterministic_phase(k, per, 42);
        let serial_ms = serial_phase(k, per, 43);
        let (concurrent_ms, free_committed) = concurrent_phase(k, per, 43);
        let commits_per_sec = free_committed as f64 / (concurrent_ms / 1e3).max(f64::MIN_POSITIVE);
        println!(
            "  sessions={k}: committed={committed} aborted={aborted} \
             serial={serial_ms:.1}ms concurrent={concurrent_ms:.1}ms \
             ({commits_per_sec:.0} commits/s, serial/concurrent {:.2}x)",
            serial_ms / concurrent_ms.max(f64::MIN_POSITIVE)
        );
        rows.push(
            JsonValue::object()
                .with("sessions", k)
                .with("committed", committed)
                .with("aborted", aborted)
                .with("serial_ms", serial_ms)
                .with("concurrent_ms", concurrent_ms)
                .with("commits_per_sec", commits_per_sec),
        );
    }

    if let Some(path) = json {
        use std::io::Write as _;
        let doc = JsonValue::object()
            .with("bench", "server")
            .with(
                "description",
                "multi-session snapshot-isolation server: deterministic round-robin \
                 conflict counts + free-running throughput vs serial reference",
            )
            .with("transactions", per)
            .with("results", JsonValue::Array(rows));
        let mut file = std::fs::File::create(&path).expect("create JSON report");
        writeln!(file, "{}", doc.to_pretty()).expect("write JSON report");
        println!("wrote {}", path.display());
    }
}
