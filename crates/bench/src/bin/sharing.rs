//! Quantifies the §7.1 node-sharing trade-off: several rules whose
//! conditions all reference `threshold`.
//!
//! Two scenarios:
//!
//! * **flat vs bushy** (`consume_freq` updates): under full expansion
//!   (fig. 2) every rule's condition carries its own copy of threshold's
//!   body — a `consume_freq` update executes one differential *per
//!   rule*, each re-deriving the threshold join. With the shared node
//!   (fig. 1) the update propagates through `threshold` once.
//!
//!   "This would be beneficial if the threshold function is referenced
//!   in other rule conditions as well since this would enable node
//!   sharing."
//!
//! * **tabled vs untabled** (`quantity` updates, bushy network): here
//!   `threshold` is *not* the changed node, so every rule's
//!   `Δcnd/Δ±quantity` differential issues the same `threshold(i)` call.
//!   Per-pass tabling evaluates it once and serves the other rules from
//!   the memo — the same sharing, realized at the evaluator level. The
//!   reported `hits`/`misses` counters prove the sharing is happening.
//!
//! Run with: `cargo run -p amos-bench --release --bin sharing`
//!
//! Flags:
//!   --json PATH   write a BENCH_sharing.json report with per-rule-count
//!                 timings and tabling hit/miss counters

use amos_bench::report::BenchArgs;
use amos_bench::{time_secs, SCHEMA};
use amos_db::engine::NetworkPrep;
use amos_db::{Amos, EngineOptions, Value};
use amos_metrics::{JsonValue, PassMetrics};
use amos_storage::RelId;
use amos_types::Oid;

const N_ITEMS: usize = 1_000;
const TRANSACTIONS: usize = 100;
/// More transactions for the tabling scenario: the per-transaction cost
/// is a few microseconds, so the longer series stabilizes the median.
const QUANTITY_TRANSACTIONS: usize = 500;
const RULE_COUNTS: &[usize] = &[1, 2, 4, 8, 16];

struct World {
    db: Amos,
    items: Vec<Oid>,
    quantity_rel: RelId,
    consume_rel: RelId,
}

fn build(prep: NetworkPrep, n_rules: usize, tabling: bool) -> World {
    let mut db = Amos::with_options(EngineOptions {
        network_prep: prep,
        tabling,
        ..Default::default()
    });
    db.register_procedure("order", |_ctx, _| Ok(()));
    db.register_procedure("noop", |_ctx, _| Ok(()));
    db.execute(SCHEMA).expect("schema");
    // Extra rules that also reference threshold(i).
    for k in 0..n_rules.saturating_sub(1) {
        db.execute(&format!(
            "create rule extra_{k}() as \
             when for each item i where quantity(i) < threshold(i) + {k} \
             do noop(i);"
        ))
        .expect("extra rule");
    }

    let catalog = db.catalog();
    let rel = |name: &str| {
        catalog
            .def(catalog.lookup(name).unwrap())
            .stored_rel()
            .unwrap()
    };
    let item_extent = rel("item_extent");
    let supplier_extent = rel("supplier_extent");
    let rels = [
        rel("quantity"),
        rel("max_stock"),
        rel("min_stock"),
        rel("consume_freq"),
        rel("supplies"),
        rel("delivery_time"),
    ];
    let (rq, rmax, rmin, rcf, rsup, rdt) = (rels[0], rels[1], rels[2], rels[3], rels[4], rels[5]);
    let mut items = Vec::with_capacity(N_ITEMS);
    {
        let storage = db.storage_mut();
        for _ in 0..N_ITEMS {
            let item = storage.fresh_oid();
            let sup = storage.fresh_oid();
            items.push(item);
            let iv = Value::Oid(item);
            let sv = Value::Oid(sup);
            storage
                .insert(item_extent, amos_types::Tuple::new(vec![iv.clone()]))
                .unwrap();
            storage
                .insert(supplier_extent, amos_types::Tuple::new(vec![sv.clone()]))
                .unwrap();
            storage
                .set_functional(rq, std::slice::from_ref(&iv), &[Value::Int(10_000)])
                .unwrap();
            storage
                .set_functional(rmax, std::slice::from_ref(&iv), &[Value::Int(20_000)])
                .unwrap();
            storage
                .set_functional(rmin, std::slice::from_ref(&iv), &[Value::Int(100)])
                .unwrap();
            storage
                .set_functional(rcf, std::slice::from_ref(&iv), &[Value::Int(20)])
                .unwrap();
            storage
                .set_functional(rsup, std::slice::from_ref(&sv), std::slice::from_ref(&iv))
                .unwrap();
            storage
                .set_functional(rdt, &[iv, sv], &[Value::Int(2)])
                .unwrap();
        }
    }
    db.execute("activate monitor_items();").unwrap();
    for k in 0..n_rules.saturating_sub(1) {
        db.execute(&format!("activate extra_{k}();")).unwrap();
    }
    World {
        db,
        items,
        quantity_rel: rq,
        consume_rel: rcf,
    }
}

/// Time 100 transactions each updating one item's consume_freq — a
/// threshold-side influent, so the structural (network) sharing effect
/// is maximal.
fn run_consume(prep: NetworkPrep, n_rules: usize) -> f64 {
    let mut w = build(prep, n_rules, true);
    let mut v = 21i64;
    // Warm-up.
    w.db.begin().unwrap();
    w.db.storage_mut()
        .set_functional(w.consume_rel, &[Value::Oid(w.items[0])], &[Value::Int(v)])
        .unwrap();
    w.db.commit().unwrap();
    time_secs(|| {
        for i in 0..TRANSACTIONS {
            v += 1;
            w.db.begin().unwrap();
            w.db.storage_mut()
                .set_functional(
                    w.consume_rel,
                    &[Value::Oid(w.items[i % w.items.len()])],
                    &[Value::Int(v)],
                )
                .unwrap();
            w.db.commit().unwrap();
        }
    }) * 1e3
}

/// Time 100 transactions each updating one item's quantity against the
/// bushy network: every rule's `Δcnd/Δ±quantity` differential calls the
/// unchanged shared `threshold` node — the workload where per-pass
/// tabling shares the derived call across rules.
fn run_quantity(n_rules: usize, tabling: bool) -> (f64, Option<PassMetrics>) {
    let mut w = build(NetworkPrep::Bushy, n_rules, tabling);
    // Warm-up (plan compilation).
    w.db.begin().unwrap();
    w.db.storage_mut()
        .set_functional(
            w.quantity_rel,
            &[Value::Oid(w.items[0])],
            &[Value::Int(10_001)],
        )
        .unwrap();
    w.db.commit().unwrap();
    let ms = time_secs(|| {
        for i in 0..QUANTITY_TRANSACTIONS {
            w.db.begin().unwrap();
            w.db.storage_mut()
                .set_functional(
                    w.quantity_rel,
                    &[Value::Oid(w.items[i % w.items.len()])],
                    &[Value::Int(10_002 + i as i64)],
                )
                .unwrap();
            w.db.commit().unwrap();
        }
    }) * 1e3;
    (ms, w.db.last_pass_metrics().cloned())
}

struct TablingRow {
    n_rules: usize,
    tabled_ms: f64,
    untabled_ms: f64,
    tabling_hits: u64,
    tabling_misses: u64,
    last_pass: Option<PassMetrics>,
}

fn main() {
    let args = BenchArgs::parse();

    println!("# §7.1 node sharing — {TRANSACTIONS} transactions updating consume_freq of one item");
    println!("# ({N_ITEMS} items; rules all referencing threshold; times in ms)");
    println!(
        "{:>8} {:>10} {:>10} {:>12}",
        "rules", "flat_ms", "bushy_ms", "flat/bushy"
    );
    for &n_rules in RULE_COUNTS {
        let flat = run_consume(NetworkPrep::Flat, n_rules);
        let bushy = run_consume(NetworkPrep::Bushy, n_rules);
        println!(
            "{:>8} {:>10.2} {:>10.2} {:>12.2}",
            n_rules,
            flat,
            bushy,
            flat / bushy
        );
    }
    println!();
    println!("# Paper expectation (§7.1): sharing pays off as more rules reference threshold.");
    println!();

    println!(
        "# Evaluator-level sharing — {QUANTITY_TRANSACTIONS} transactions updating quantity of one item"
    );
    println!("# (bushy network; per-pass tabling of the shared threshold call; times in ms)");
    println!(
        "{:>8} {:>12} {:>14} {:>10} {:>8} {:>8}",
        "rules", "tabled_ms", "untabled_ms", "speedup", "hits", "misses"
    );
    let mut rows: Vec<TablingRow> = Vec::with_capacity(RULE_COUNTS.len());
    for &n_rules in RULE_COUNTS {
        let (tabled_ms, last_pass) = run_quantity(n_rules, true);
        let (untabled_ms, _) = run_quantity(n_rules, false);
        let (hits, misses) = last_pass
            .as_ref()
            .map(|m| (m.tabling_hits, m.tabling_misses))
            .unwrap_or((0, 0));
        println!(
            "{:>8} {:>12.2} {:>14.2} {:>10.2} {:>8} {:>8}",
            n_rules,
            tabled_ms,
            untabled_ms,
            untabled_ms / tabled_ms,
            hits,
            misses
        );
        rows.push(TablingRow {
            n_rules,
            tabled_ms,
            untabled_ms,
            tabling_hits: hits,
            tabling_misses: misses,
            last_pass,
        });
    }
    println!();
    println!("# With k rules the shared threshold call is evaluated once and hit k-1 times");
    println!("# per differential polarity; hits=0 would mean the sharing is broken.");

    if let Some(path) = &args.json {
        let total_hits: u64 = rows.iter().map(|r| r.tabling_hits).sum();
        let doc = JsonValue::object()
            .with("bench", "sharing")
            .with(
                "description",
                "node sharing (flat vs bushy) and per-pass tabling of shared derived calls",
            )
            .with("transactions", TRANSACTIONS)
            .with("total_tabling_hits", total_hits)
            .with(
                "results",
                JsonValue::Array(
                    rows.iter()
                        .map(|r| {
                            let mut row = JsonValue::object()
                                .with("n_rules", r.n_rules)
                                .with("tabled_ms", r.tabled_ms)
                                .with("untabled_ms", r.untabled_ms)
                                .with("tabling_hits", r.tabling_hits)
                                .with("tabling_misses", r.tabling_misses);
                            row = match &r.last_pass {
                                Some(m) => row.with("last_pass", m.to_json()),
                                None => row.with("last_pass", JsonValue::Null),
                            };
                            row
                        })
                        .collect(),
                ),
            );
        let mut file = std::fs::File::create(path).expect("create JSON report");
        use std::io::Write as _;
        writeln!(file, "{}", doc.to_pretty()).expect("write JSON report");
        println!("# wrote {}", path.display());
    }
}
