//! Quantifies the §7.1 node-sharing trade-off: several rules whose
//! conditions all reference `threshold`.
//!
//! * **flat** (full expansion, fig. 2): every rule's condition carries
//!   its own copy of threshold's body — a `consume_freq` update executes
//!   one differential *per rule*, each re-deriving the threshold join.
//! * **bushy** (shared node, fig. 1): the update propagates through the
//!   shared `threshold` node once; only the small node→condition edges
//!   multiply per rule.
//!
//! "This would be beneficial if the threshold function is referenced in
//! other rule conditions as well since this would enable node sharing."
//!
//! Run with: `cargo run -p amos-bench --release --bin sharing`

use amos_bench::{time_secs, SCHEMA};
use amos_db::engine::NetworkPrep;
use amos_db::{Amos, EngineOptions, Value};
use amos_types::Oid;

const N_ITEMS: usize = 1_000;
const TRANSACTIONS: usize = 100;

fn build(prep: NetworkPrep, n_rules: usize) -> (Amos, Vec<Oid>, amos_storage::RelId) {
    let mut db = Amos::with_options(EngineOptions {
        network_prep: prep,
        ..Default::default()
    });
    db.register_procedure("order", |_ctx, _| Ok(()));
    db.register_procedure("noop", |_ctx, _| Ok(()));
    db.execute(SCHEMA).expect("schema");
    // Extra rules that also reference threshold(i).
    for k in 0..n_rules.saturating_sub(1) {
        db.execute(&format!(
            "create rule extra_{k}() as \
             when for each item i where quantity(i) < threshold(i) + {k} \
             do noop(i);"
        ))
        .expect("extra rule");
    }

    let catalog = db.catalog();
    let rel = |name: &str| {
        catalog
            .def(catalog.lookup(name).unwrap())
            .stored_rel()
            .unwrap()
    };
    let item_extent = rel("item_extent");
    let supplier_extent = rel("supplier_extent");
    let rels = [
        rel("quantity"),
        rel("max_stock"),
        rel("min_stock"),
        rel("consume_freq"),
        rel("supplies"),
        rel("delivery_time"),
    ];
    let (rq, rmax, rmin, rcf, rsup, rdt) = (rels[0], rels[1], rels[2], rels[3], rels[4], rels[5]);
    let consume_rel = rcf;
    let mut items = Vec::with_capacity(N_ITEMS);
    {
        let storage = db.storage_mut();
        for _ in 0..N_ITEMS {
            let item = storage.fresh_oid();
            let sup = storage.fresh_oid();
            items.push(item);
            let iv = Value::Oid(item);
            let sv = Value::Oid(sup);
            storage
                .insert(item_extent, amos_types::Tuple::new(vec![iv.clone()]))
                .unwrap();
            storage
                .insert(supplier_extent, amos_types::Tuple::new(vec![sv.clone()]))
                .unwrap();
            storage
                .set_functional(rq, std::slice::from_ref(&iv), &[Value::Int(10_000)])
                .unwrap();
            storage
                .set_functional(rmax, std::slice::from_ref(&iv), &[Value::Int(20_000)])
                .unwrap();
            storage
                .set_functional(rmin, std::slice::from_ref(&iv), &[Value::Int(100)])
                .unwrap();
            storage
                .set_functional(rcf, std::slice::from_ref(&iv), &[Value::Int(20)])
                .unwrap();
            storage
                .set_functional(rsup, std::slice::from_ref(&sv), std::slice::from_ref(&iv))
                .unwrap();
            storage
                .set_functional(rdt, &[iv, sv], &[Value::Int(2)])
                .unwrap();
        }
    }
    db.execute("activate monitor_items();").unwrap();
    for k in 0..n_rules.saturating_sub(1) {
        db.execute(&format!("activate extra_{k}();")).unwrap();
    }
    (db, items, consume_rel)
}

/// Time 100 transactions each updating one item's consume_freq — a
/// threshold-side influent, so the sharing effect is maximal.
fn run(prep: NetworkPrep, n_rules: usize) -> f64 {
    let (mut db, items, consume_rel) = build(prep, n_rules);
    let mut v = 21i64;
    // Warm-up.
    db.begin().unwrap();
    db.storage_mut()
        .set_functional(consume_rel, &[Value::Oid(items[0])], &[Value::Int(v)])
        .unwrap();
    db.commit().unwrap();
    time_secs(|| {
        for i in 0..TRANSACTIONS {
            v += 1;
            db.begin().unwrap();
            db.storage_mut()
                .set_functional(
                    consume_rel,
                    &[Value::Oid(items[i % items.len()])],
                    &[Value::Int(v)],
                )
                .unwrap();
            db.commit().unwrap();
        }
    }) * 1e3
}

fn main() {
    println!("# §7.1 node sharing — {TRANSACTIONS} transactions updating consume_freq of one item");
    println!("# ({N_ITEMS} items; rules all referencing threshold; times in ms)");
    println!(
        "{:>8} {:>10} {:>10} {:>12}",
        "rules", "flat_ms", "bushy_ms", "flat/bushy"
    );
    for &n_rules in &[1usize, 2, 4, 8] {
        let flat = run(NetworkPrep::Flat, n_rules);
        let bushy = run(NetworkPrep::Bushy, n_rules);
        println!(
            "{:>8} {:>10.2} {:>10.2} {:>12.2}",
            n_rules,
            flat,
            bushy,
            flat / bushy
        );
    }
    println!();
    println!("# Paper expectation (§7.1): sharing pays off as more rules reference threshold.");
}
