//! Regenerates **fig. 7** of the paper: "1 transaction with n changes to
//! 3 partial differentials" — every item's quantity, delivery time and
//! consume frequency change in a single transaction.
//!
//! Expected shape (paper): incremental monitoring is *slower* than naive
//! here (three overlapping differential executions per item vs one full
//! scan), but only by a roughly constant factor over database size — the
//! paper measured ≈1.6×.
//!
//! Run with: `cargo run -p amos-bench --release --bin fig7`

use amos_bench::{time_secs, InventoryWorld};
use amos_core::MonitorMode;
use amos_db::engine::NetworkPrep;

fn run(n_items: usize, mode: MonitorMode) -> f64 {
    let mut world = InventoryWorld::new(n_items, mode, NetworkPrep::Flat);
    // Warm-up round.
    world.tx_massive_update(0);
    time_secs(|| {
        world.tx_massive_update(1);
    })
}

fn main() {
    println!("# Fig. 7 — 1 transaction with n changes to 3 partial differentials");
    println!("# (times in milliseconds for the single bulk transaction)");
    println!(
        "{:>8} {:>16} {:>12} {:>20}",
        "items", "incremental_ms", "naive_ms", "incremental/naive"
    );
    for &n in &[10usize, 100, 1_000, 10_000] {
        let inc = run(n, MonitorMode::Incremental) * 1e3;
        let naive = run(n, MonitorMode::Naive) * 1e3;
        println!(
            "{:>8} {:>16.2} {:>12.2} {:>20.2}",
            n,
            inc,
            naive,
            inc / naive
        );
    }
    println!();
    println!("# Paper shape: incremental/naive ≈ constant (paper: ≈1.6) over db size.");
}
