//! Regenerates **fig. 7** of the paper: "1 transaction with n changes to
//! 3 partial differentials" — every item's quantity, delivery time and
//! consume frequency change in a single transaction.
//!
//! Expected shape (paper): incremental monitoring is *slower* than naive
//! here (three overlapping differential executions per item vs one full
//! scan), but only by a roughly constant factor over database size — the
//! paper measured ≈1.6×.
//!
//! Run with: `cargo run -p amos-bench --release --bin fig7`
//!
//! Flags (shared with the CI bench-smoke job):
//!   --json PATH     write a BENCH_fig7.json report with per-size
//!                   timings and last-pass propagation metrics
//!   --sizes A,B,C   override the database sizes to sweep
//!   --workers A,B,C additionally sweep sharded propagation at these
//!                   worker counts on the largest size, emitting a
//!                   "scaling" section (speedup vs workers=1)

use amos_bench::report::{BenchArgs, ScalingRow, SizeRow};
use amos_bench::{time_secs, InventoryWorld};
use amos_core::MonitorMode;
use amos_db::engine::NetworkPrep;
use amos_db::ExecStrategy;
use amos_metrics::PassMetrics;

const DEFAULT_SIZES: &[usize] = &[10, 100, 1_000, 10_000];

fn run(n_items: usize, mode: MonitorMode, tabling: bool) -> (f64, Option<PassMetrics>) {
    run_sharded(n_items, mode, tabling, None)
}

fn run_sharded(
    n_items: usize,
    mode: MonitorMode,
    tabling: bool,
    workers: Option<usize>,
) -> (f64, Option<PassMetrics>) {
    let mut world = InventoryWorld::new(n_items, mode, NetworkPrep::Flat);
    world.db.set_tabling(tabling);
    if let Some(workers) = workers {
        world
            .db
            .set_propagation_strategy(ExecStrategy::Sharded { workers });
    }
    // Warm-up round.
    world.tx_massive_update(0);
    let secs = time_secs(|| {
        world.tx_massive_update(1);
    });
    (secs, world.db.last_pass_metrics().cloned())
}

fn main() {
    let args = BenchArgs::parse();
    let sizes: Vec<usize> = args.sizes.clone().unwrap_or_else(|| DEFAULT_SIZES.to_vec());

    println!("# Fig. 7 — 1 transaction with n changes to 3 partial differentials");
    println!("# (times in milliseconds for the single bulk transaction)");
    if args.no_tabling {
        println!("# (derived-call tabling DISABLED — ablation run)");
    }
    println!(
        "{:>8} {:>16} {:>12} {:>20}",
        "items", "incremental_ms", "naive_ms", "incremental/naive"
    );
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in &sizes {
        let (inc_secs, last_pass) = run(n, MonitorMode::Incremental, !args.no_tabling);
        let (naive_secs, _) = run(n, MonitorMode::Naive, !args.no_tabling);
        let inc = inc_secs * 1e3;
        let naive = naive_secs * 1e3;
        println!(
            "{:>8} {:>16.2} {:>12.2} {:>20.2}",
            n,
            inc,
            naive,
            inc / naive
        );
        rows.push(SizeRow {
            n_items: n,
            incremental_ms: inc,
            naive_ms: naive,
            last_pass,
        });
    }
    println!();
    println!("# Paper shape: incremental/naive ≈ constant (paper: ≈1.6) over db size.");

    let mut scaling: Vec<ScalingRow> = Vec::new();
    if !args.workers.is_empty() {
        let n = *sizes.iter().max().expect("at least one size");
        let hw_threads = std::thread::available_parallelism().map_or(1, usize::from);
        println!();
        println!("# Sharded scaling sweep at n={n} ({hw_threads} hardware thread(s))");
        println!(
            "{:>8} {:>16} {:>14}",
            "workers", "incremental_ms", "speedup_vs_1"
        );
        let mut base_ms = None;
        for &w in &args.workers {
            let (secs, last_pass) =
                run_sharded(n, MonitorMode::Incremental, !args.no_tabling, Some(w));
            let ms = secs * 1e3;
            let base = *base_ms.get_or_insert(ms);
            let speedup = base / ms.max(f64::MIN_POSITIVE);
            println!("{:>8} {:>16.2} {:>14.2}", w, ms, speedup);
            scaling.push(ScalingRow {
                workers: w,
                hw_threads,
                incremental_ms: ms,
                speedup_vs_1: speedup,
                last_pass,
            });
        }
    }

    if let Some(path) = &args.json {
        amos_bench::report::write_report_scaled(
            path,
            "fig7",
            "1 transaction with n changes to 3 partial differentials (paper fig. 7)",
            1,
            &rows,
            &scaling,
        )
        .expect("write JSON report");
        println!("# wrote {}", path.display());
    }
}
