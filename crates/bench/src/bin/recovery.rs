//! Recovery-time benchmark: how long does it take to rebuild the
//! database from a WAL, and how much does a checkpoint (snapshot +
//! truncated log) buy?
//!
//! For each transaction count the benchmark writes a WAL, then measures
//!
//! * **replay_ms** — recovering a fresh `Storage` by replaying every
//!   WAL batch;
//! * **snapshot_ms** — recovering after a checkpoint, i.e. loading the
//!   snapshot plus the (short) post-checkpoint tail.
//!
//! Run with: `cargo run -p amos-bench --release --bin recovery`
//!
//! Flags (shared with the CI fault-matrix job):
//!   --json PATH         write a BENCH_recovery.json report
//!   --sizes A,B,C       override the transaction counts to sweep

use std::path::PathBuf;

use amos_bench::report::BenchArgs;
use amos_bench::time_secs;
use amos_metrics::JsonValue;
use amos_storage::{Storage, WalConfig};
use amos_types::tuple;

const DEFAULT_SIZES: &[usize] = &[100, 1_000, 5_000];
/// Post-checkpoint tail, as a fraction of the main workload.
const TAIL_FRACTION: usize = 10;

struct Row {
    transactions: usize,
    wal_bytes: u64,
    replay_ms: f64,
    snapshot_ms: f64,
    tail_batches: usize,
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("amos-bench-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write `n` committed transactions (two updates each) into a WAL.
fn write_workload(dir: &PathBuf, n: usize) {
    let mut db = Storage::new();
    let q = db.create_relation("q", 2).unwrap();
    db.attach_wal(dir, WalConfig::default()).unwrap();
    for i in 0..n as i64 {
        db.begin().unwrap();
        db.insert(q, tuple![i, i * 7]).unwrap();
        if i > 0 {
            db.delete(q, &tuple![i - 1, (i - 1) * 7]).unwrap();
        }
        db.commit().unwrap();
    }
}

fn recover_ms(dir: &PathBuf) -> (f64, usize) {
    let mut db = Storage::new();
    let mut info = None;
    let secs = time_secs(|| {
        info = Some(db.attach_wal(dir, WalConfig::default()).unwrap());
    });
    (secs * 1e3, info.unwrap().batches_replayed)
}

fn measure(n: usize) -> Row {
    // Pure replay.
    let replay_dir = tmpdir(&format!("replay-{n}"));
    write_workload(&replay_dir, n);
    let wal_bytes = std::fs::metadata(replay_dir.join(amos_storage::WAL_FILE))
        .unwrap()
        .len();
    let (replay_ms, replayed) = recover_ms(&replay_dir);
    assert_eq!(replayed, n);

    // Snapshot + tail: checkpoint the same state, then append a tail.
    let snap_dir = tmpdir(&format!("snap-{n}"));
    write_workload(&snap_dir, n);
    let mut db = Storage::new();
    db.attach_wal(&snap_dir, WalConfig::default()).unwrap();
    db.checkpoint().unwrap();
    let q = db.relation_id("q").unwrap();
    let tail = (n / TAIL_FRACTION).max(1);
    for i in 0..tail as i64 {
        db.begin().unwrap();
        db.insert(q, tuple![-i - 1, i]).unwrap();
        db.commit().unwrap();
    }
    drop(db);
    let (snapshot_ms, tail_batches) = recover_ms(&snap_dir);
    assert_eq!(tail_batches, tail);

    let _ = std::fs::remove_dir_all(&replay_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
    Row {
        transactions: n,
        wal_bytes,
        replay_ms,
        snapshot_ms,
        tail_batches,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let sizes: Vec<usize> = args.sizes.clone().unwrap_or_else(|| DEFAULT_SIZES.to_vec());

    println!("# Recovery time: full WAL replay vs snapshot + tail");
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12}",
        "transactions", "wal_bytes", "replay_ms", "snapshot_ms", "tail_batches"
    );
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in &sizes {
        let row = measure(n);
        println!(
            "{:>12} {:>12} {:>12.2} {:>14.2} {:>12}",
            row.transactions, row.wal_bytes, row.replay_ms, row.snapshot_ms, row.tail_batches
        );
        rows.push(row);
    }
    println!();
    println!("# Expected shape: replay grows linearly with the log; snapshot stays ~flat.");

    if let Some(path) = &args.json {
        let doc = JsonValue::object()
            .with("bench", "recovery")
            .with(
                "description",
                "WAL replay vs snapshot+tail recovery time by transaction count",
            )
            .with(
                "results",
                JsonValue::Array(
                    rows.iter()
                        .map(|r| {
                            JsonValue::object()
                                .with("transactions", r.transactions)
                                .with("wal_bytes", r.wal_bytes)
                                .with("replay_ms", r.replay_ms)
                                .with("snapshot_ms", r.snapshot_ms)
                                .with("tail_batches", r.tail_batches)
                        })
                        .collect(),
                ),
            );
        let mut file = std::fs::File::create(path).expect("create JSON report");
        use std::io::Write as _;
        writeln!(file, "{}", doc.to_pretty()).expect("write JSON report");
        println!("# wrote {}", path.display());
    }
}
