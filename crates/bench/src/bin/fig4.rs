//! Regenerates the performance face of **fig. 4**: for every relational
//! operator row, compare evaluating the partial differentials (seeded by
//! a 4-tuple update) against naive recomputation of the operator delta,
//! across relation sizes.
//!
//! Expected shape: differential evaluation is ~independent of relation
//! size for σ, π, ∪, −, ∩, ⋈ (delta-seeded probes); recomputation is
//! Ω(n). The ratio therefore grows linearly with n.
//!
//! Run with: `cargo run -p amos-bench --release --bin fig4`

use amos_algebra::diff::{delta_from_differentials, diff_expr, recompute_delta, Correction};
use amos_algebra::predicate::CmpOp;
use amos_algebra::{AlgebraDb, Predicate, RelExpr};
use amos_bench::time_secs;
use amos_types::tuple;

fn make_db(n: i64) -> AlgebraDb {
    let mut db = AlgebraDb::new();
    db.set_relation("q", (0..n).map(|i| tuple![i, i % 10]));
    db.set_relation("r", (0..n).map(|i| tuple![i % 10, i]));
    db.insert("q", tuple![n + 1, 3]);
    db.delete("q", &tuple![0, 0]);
    db.insert("r", tuple![3, n + 1]);
    db.delete("r", &tuple![0, 0]);
    db
}

fn operators() -> Vec<(&'static str, RelExpr)> {
    let q = || Box::new(RelExpr::rel("q", 2));
    let r = || Box::new(RelExpr::rel("r", 2));
    vec![
        (
            "select",
            RelExpr::Select(q(), Predicate::col_const(1, CmpOp::Lt, 5)),
        ),
        ("project", RelExpr::Project(q(), vec![1])),
        ("union", RelExpr::Union(q(), r())),
        ("difference", RelExpr::Diff(q(), r())),
        ("join", RelExpr::Join(q(), r(), vec![(1, 0)])),
        ("intersect", RelExpr::Intersect(q(), r())),
    ]
}

const DIFF_REPS: usize = 200;
const RECOMP_REPS: usize = 10;

fn main() {
    println!("# Fig. 4 — per-operator: partial differentials vs recomputation");
    println!("# (µs per delta evaluation; {DIFF_REPS}/{RECOMP_REPS} repetitions; 4-tuple update)");
    println!(
        "{:>12} {:>8} {:>16} {:>14} {:>10}",
        "operator", "n", "differential_us", "recompute_us", "speedup"
    );
    for (name, expr) in operators() {
        for &n in &[100i64, 1_000, 10_000] {
            let db = make_db(n);
            let diffs = diff_expr(&expr);
            let d = time_secs(|| {
                for _ in 0..DIFF_REPS {
                    std::hint::black_box(delta_from_differentials(
                        &expr,
                        &diffs,
                        &db,
                        Correction::Strict,
                    ));
                }
            }) * 1e6
                / DIFF_REPS as f64;
            let r = time_secs(|| {
                for _ in 0..RECOMP_REPS {
                    std::hint::black_box(recompute_delta(&expr, &db));
                }
            }) * 1e6
                / RECOMP_REPS as f64;
            println!(
                "{:>12} {:>8} {:>16.1} {:>14.1} {:>10.1}",
                name,
                n,
                d,
                r,
                r / d
            );
        }
    }
    println!();
    println!("# Paper shape: differentials ~flat in n; recomputation Ω(n).");
}
