//! Criterion version of **fig. 7**: one bulk transaction changing
//! quantity, delivery time, and consume frequency of *all* items (three
//! of the five partial differentials). The paper's claim: incremental is
//! slower than naive by a roughly constant factor (≈1.6× on their
//! hardware) independent of database size.

use amos_bench::InventoryWorld;
use amos_core::MonitorMode;
use amos_db::engine::NetworkPrep;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_massive_update_tx");
    group.sample_size(15);
    for &n in &[10usize, 100, 1_000] {
        for (label, mode) in [
            ("incremental", MonitorMode::Incremental),
            ("naive", MonitorMode::Naive),
        ] {
            let mut world = InventoryWorld::new(n, mode, NetworkPrep::Flat);
            let mut round = 1i64;
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    round += 1;
                    world.tx_massive_update(round);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
