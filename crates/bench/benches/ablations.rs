//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! * **flat vs bushy** networks (§4.3 full expansion vs §7.1 node
//!   sharing): single-update transaction cost under each shape;
//! * **§7.2 check levels**: Raw vs Nervous vs Strict propagation — the
//!   price of correction point-queries;
//! * **differential scope**: Full vs InsertionsOnly — how much the
//!   "conditions often depend only on insertions" observation saves;
//! * **hybrid strategy selection** (§8): per-transaction check cost with
//!   the cost model choosing naive/incremental, on both the fig. 6
//!   (small tx) and fig. 7 (massive tx) workloads.

use amos_bench::InventoryWorld;
use amos_core::differ::DiffScope;
use amos_core::network::PropagationNetwork;
use amos_core::propagate::{propagate, CheckLevel};
use amos_core::MonitorMode;
use amos_db::engine::NetworkPrep;
use amos_db::Value;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const N_ITEMS: usize = 1_000;

fn bench_flat_vs_bushy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_network_shape");
    group.sample_size(30);
    for (label, prep) in [("flat", NetworkPrep::Flat), ("bushy", NetworkPrep::Bushy)] {
        let mut world = InventoryWorld::new(N_ITEMS, MonitorMode::Incremental, prep);
        let mut v = 10_001i64;
        group.bench_function(BenchmarkId::new(label, N_ITEMS), |b| {
            b.iter(|| {
                v += 1;
                world.tx_single_quantity_update(0, v);
            });
        });
    }
    group.finish();
}

fn bench_check_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_check_level");
    group.sample_size(30);
    for (label, level) in [
        ("raw", CheckLevel::Raw),
        ("nervous", CheckLevel::Nervous),
        ("strict", CheckLevel::Strict),
    ] {
        // Drive propagate() directly so the check level is the only
        // variable; the workload drops one item below threshold so the
        // checks actually run on candidates.
        let mut world = InventoryWorld::new(N_ITEMS, MonitorMode::Incremental, NetworkPrep::Flat);
        let catalog = world.db.catalog().clone();
        let cnd = catalog.lookup("cnd_monitor_items").unwrap();
        let net =
            PropagationNetwork::build(&catalog, world.db.storage_mut(), &[cnd], DiffScope::Full)
                .unwrap();
        world.db.begin().unwrap();
        let item = Value::Oid(world.items[0]);
        let rel = world.quantity_rel;
        world
            .db
            .storage_mut()
            .set_functional(rel, &[item], &[Value::Int(50)])
            .unwrap();
        group.bench_function(BenchmarkId::new(label, N_ITEMS), |b| {
            b.iter(|| propagate(&net, &catalog, world.db.storage(), level));
        });
    }
    group.finish();
}

fn bench_diff_scope(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_diff_scope");
    group.sample_size(30);
    for (label, scope) in [
        ("full", DiffScope::Full),
        ("insertions_only", DiffScope::InsertionsOnly),
    ] {
        let mut world = InventoryWorld::new(N_ITEMS, MonitorMode::Incremental, NetworkPrep::Flat);
        world.db.rules_mut().scope = scope;
        // Re-activate to rebuild the network with the new scope.
        world.db.execute("deactivate monitor_items();").unwrap();
        world.db.execute("activate monitor_items();").unwrap();
        let mut v = 10_001i64;
        group.bench_function(BenchmarkId::new(label, N_ITEMS), |b| {
            b.iter(|| {
                v += 1;
                world.tx_single_quantity_update(0, v);
            });
        });
    }
    group.finish();
}

fn bench_hybrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hybrid");
    group.sample_size(15);
    for (label, mode) in [
        ("incremental", MonitorMode::Incremental),
        ("naive", MonitorMode::Naive),
        ("hybrid", MonitorMode::Hybrid),
    ] {
        // Small-transaction workload: hybrid should track incremental.
        let mut world = InventoryWorld::new(N_ITEMS, mode, NetworkPrep::Flat);
        let mut v = 10_001i64;
        group.bench_function(
            BenchmarkId::new(format!("{label}_small_tx"), N_ITEMS),
            |b| {
                b.iter(|| {
                    v += 1;
                    world.tx_single_quantity_update(0, v);
                });
            },
        );
        // Massive-transaction workload: hybrid should track naive.
        let mut world = InventoryWorld::new(N_ITEMS, mode, NetworkPrep::Flat);
        let mut round = 1i64;
        group.bench_function(
            BenchmarkId::new(format!("{label}_massive_tx"), N_ITEMS),
            |b| {
                b.iter(|| {
                    round += 1;
                    world.tx_massive_update(round);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_flat_vs_bushy,
    bench_check_levels,
    bench_diff_scope,
    bench_hybrid
);
criterion_main!(benches);
