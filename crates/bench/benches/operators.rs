//! Criterion benches for **fig. 4**: per-operator incremental delta
//! evaluation vs naive recomputation, at the relational-algebra level.
//!
//! For each operator row of fig. 4 we build two base relations of `n`
//! tuples, apply a small update (one insert + one delete per relation),
//! and compare:
//!
//! * `differential` — evaluate the fig. 4 partial differentials with
//!   Strict correction (exact delta);
//! * `recompute` — evaluate the operator in both states and diff.
//!
//! The differential side should be ~independent of `n` for selective
//! operators, while recomputation is Ω(n).

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use amos_algebra::diff::{delta_from_differentials, diff_expr, recompute_delta, Correction};
use amos_algebra::predicate::CmpOp;
use amos_algebra::{AlgebraDb, Predicate, RelExpr};
use amos_objectlog::eval::{DeltaMap, EvalConfig, EvalContext, EvalShared};
use amos_objectlog::{Catalog, ClauseBuilder, PredId, Term};
use amos_storage::{BaseRelation, StateEpoch, Storage};
use amos_types::hash::FxHasher;
use amos_types::{tuple, Tuple, TypeId, Value};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn make_db(n: i64) -> AlgebraDb {
    let mut db = AlgebraDb::new();
    db.set_relation("q", (0..n).map(|i| tuple![i, i % 10]));
    db.set_relation("r", (0..n).map(|i| tuple![i % 10, i]));
    // A small update: one insert and one delete on each side.
    db.insert("q", tuple![n + 1, 3]);
    db.delete("q", &tuple![0, 0]);
    db.insert("r", tuple![3, n + 1]);
    db.delete("r", &tuple![0, 0]);
    db
}

fn operators() -> Vec<(&'static str, RelExpr)> {
    let q = || Box::new(RelExpr::rel("q", 2));
    let r = || Box::new(RelExpr::rel("r", 2));
    vec![
        (
            "select",
            RelExpr::Select(q(), Predicate::col_const(1, CmpOp::Lt, 5)),
        ),
        ("project", RelExpr::Project(q(), vec![1])),
        ("union", RelExpr::Union(q(), r())),
        ("diff", RelExpr::Diff(q(), r())),
        ("join", RelExpr::Join(q(), r(), vec![(1, 0)])),
        ("intersect", RelExpr::Intersect(q(), r())),
    ]
}

fn bench_operators(c: &mut Criterion) {
    for (name, expr) in operators() {
        let mut group = c.benchmark_group(format!("fig4_{name}"));
        group.sample_size(20);
        for &n in &[100i64, 1_000] {
            let db = make_db(n);
            let diffs = diff_expr(&expr);
            group.bench_with_input(BenchmarkId::new("differential", n), &n, |b, _| {
                b.iter(|| delta_from_differentials(&expr, &diffs, &db, Correction::Strict));
            });
            group.bench_with_input(BenchmarkId::new("recompute", n), &n, |b, _| {
                b.iter(|| recompute_delta(&expr, &db));
            });
        }
        group.finish();
    }
}

/// Hot-path primitive: cloning and hashing interned [`Tuple`]s. A clone
/// is two atomic refcount bumps (values `Arc` + cached fingerprint copy)
/// and a hash writes the precomputed fingerprint — both should be
/// independent of tuple width.
fn bench_tuple_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuple");
    group.sample_size(20);
    for &width in &[2usize, 8, 32] {
        let tuples: Vec<Tuple> = (0..1_000i64)
            .map(|i| {
                Tuple::new(
                    (0..width)
                        .map(|j| Value::Int(i + j as i64))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("clone_1000", width), &width, |b, _| {
            b.iter(|| {
                let copies: Vec<Tuple> = tuples.clone();
                black_box(copies)
            });
        });
        group.bench_with_input(BenchmarkId::new("hash_1000", width), &width, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for t in &tuples {
                    let mut h = FxHasher::default();
                    t.hash(&mut h);
                    acc ^= h.finish();
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

/// Index-backed point probes against a stored relation — the
/// `eval_stored` fast path that replaced full scans.
fn bench_indexed_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("indexed_probe");
    group.sample_size(20);
    for &n in &[1_000i64, 10_000] {
        let mut rel = BaseRelation::new("q", 2);
        for i in 0..n {
            rel.insert(tuple![i, i % 10]);
        }
        rel.ensure_index(&[0]);
        group.bench_with_input(BenchmarkId::new("probe_1000", n), &n, |b, _| {
            b.iter(|| {
                let mut found = 0usize;
                for i in 0..1_000i64 {
                    found += rel.probe(&[0], &[Value::Int((i * 7) % n)]).len();
                }
                black_box(found)
            });
        });
    }
    group.finish();
}

/// One simulated propagation pass issuing the same derived call many
/// times — k differentials all referencing an unchanged shared node.
struct DerivedWorld {
    storage: Storage,
    catalog: Catalog,
    wrapper: PredId,
}

fn derived_world(n: i64) -> DerivedWorld {
    let mut storage = Storage::new();
    let rq = storage.create_relation("q", 2).unwrap();
    let rr = storage.create_relation("r", 2).unwrap();
    // One-to-one join (|p| = n) so the bench measures call sharing,
    // not result-set blowup; index the join column so the plan probes
    // instead of rescanning.
    for i in 0..n {
        storage.insert(rq, tuple![i, (i * 7) % n]).unwrap();
        storage.insert(rr, tuple![i, i + 1_000_000]).unwrap();
    }
    storage.ensure_index(rr, &[0]);
    storage.ensure_index(rq, &[0]);
    let sig = |k: usize| vec![TypeId(0); k];
    let mut catalog = Catalog::new();
    let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
    let r = catalog.define_stored("r", sig(2), rr, 1).unwrap();
    let p = catalog
        .define_derived(
            "p",
            sig(2),
            vec![ClauseBuilder::new(3)
                .head([Term::var(0), Term::var(2)])
                .pred(q, [Term::var(0), Term::var(1)])
                .pred(r, [Term::var(1), Term::var(2)])
                .build()],
        )
        .unwrap();
    // Wrapper keeps `p` as a PlanStep::Call instead of inlining it —
    // the bushy-network shape where tabling applies.
    let wrapper = catalog
        .define_derived(
            "w",
            sig(2),
            vec![ClauseBuilder::new(2)
                .head([Term::var(0), Term::var(1)])
                .pred(p, [Term::var(0), Term::var(1)])
                .build()],
        )
        .unwrap();
    DerivedWorld {
        storage,
        catalog,
        wrapper,
    }
}

/// Tabled vs untabled repeated derived calls: each iteration is one
/// "pass" (reset, then 16 identical calls through the wrapper). Tabling
/// computes the join once and serves 15 memo hits.
fn bench_tabled_calls(c: &mut Criterion) {
    let mut group = c.benchmark_group("derived_calls");
    group.sample_size(20);
    for &n in &[1_000i64, 10_000] {
        let world = derived_world(n);
        let deltas = DeltaMap::new();
        for (label, tabling) in [("tabled", true), ("untabled", false)] {
            let shared = Arc::new(EvalShared::new(EvalConfig {
                tabling,
                ..EvalConfig::default()
            }));
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_16calls"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        shared.reset_pass();
                        let ctx = EvalContext::with_shared(
                            &world.storage,
                            &world.catalog,
                            &deltas,
                            Arc::clone(&shared),
                        );
                        let mut total = 0usize;
                        for _ in 0..16 {
                            total += ctx
                                .eval_pred(world.wrapper, &[None, None], StateEpoch::New)
                                .unwrap()
                                .len();
                        }
                        black_box(total)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_operators,
    bench_tuple_ops,
    bench_indexed_probe,
    bench_tabled_calls
);
criterion_main!(benches);
