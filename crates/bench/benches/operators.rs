//! Criterion benches for **fig. 4**: per-operator incremental delta
//! evaluation vs naive recomputation, at the relational-algebra level.
//!
//! For each operator row of fig. 4 we build two base relations of `n`
//! tuples, apply a small update (one insert + one delete per relation),
//! and compare:
//!
//! * `differential` — evaluate the fig. 4 partial differentials with
//!   Strict correction (exact delta);
//! * `recompute` — evaluate the operator in both states and diff.
//!
//! The differential side should be ~independent of `n` for selective
//! operators, while recomputation is Ω(n).

use amos_algebra::diff::{delta_from_differentials, diff_expr, recompute_delta, Correction};
use amos_algebra::predicate::CmpOp;
use amos_algebra::{AlgebraDb, Predicate, RelExpr};
use amos_types::tuple;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn make_db(n: i64) -> AlgebraDb {
    let mut db = AlgebraDb::new();
    db.set_relation("q", (0..n).map(|i| tuple![i, i % 10]));
    db.set_relation("r", (0..n).map(|i| tuple![i % 10, i]));
    // A small update: one insert and one delete on each side.
    db.insert("q", tuple![n + 1, 3]);
    db.delete("q", &tuple![0, 0]);
    db.insert("r", tuple![3, n + 1]);
    db.delete("r", &tuple![0, 0]);
    db
}

fn operators() -> Vec<(&'static str, RelExpr)> {
    let q = || Box::new(RelExpr::rel("q", 2));
    let r = || Box::new(RelExpr::rel("r", 2));
    vec![
        (
            "select",
            RelExpr::Select(q(), Predicate::col_const(1, CmpOp::Lt, 5)),
        ),
        ("project", RelExpr::Project(q(), vec![1])),
        ("union", RelExpr::Union(q(), r())),
        ("diff", RelExpr::Diff(q(), r())),
        ("join", RelExpr::Join(q(), r(), vec![(1, 0)])),
        ("intersect", RelExpr::Intersect(q(), r())),
    ]
}

fn bench_operators(c: &mut Criterion) {
    for (name, expr) in operators() {
        let mut group = c.benchmark_group(format!("fig4_{name}"));
        group.sample_size(20);
        for &n in &[100i64, 1_000] {
            let db = make_db(n);
            let diffs = diff_expr(&expr);
            group.bench_with_input(BenchmarkId::new("differential", n), &n, |b, _| {
                b.iter(|| delta_from_differentials(&expr, &diffs, &db, Correction::Strict));
            });
            group.bench_with_input(BenchmarkId::new("recompute", n), &n, |b, _| {
                b.iter(|| recompute_delta(&expr, &db));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
