//! Criterion version of **fig. 6**: per-transaction cost of a single
//! quantity update under incremental vs naive monitoring, across
//! database sizes. The paper's claim: incremental is ~independent of
//! database size, naive is linear.

use amos_bench::InventoryWorld;
use amos_core::MonitorMode;
use amos_db::engine::NetworkPrep;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_single_update_tx");
    group.sample_size(30);
    for &n in &[10usize, 100, 1_000] {
        for (label, mode) in [
            ("incremental", MonitorMode::Incremental),
            ("naive", MonitorMode::Naive),
        ] {
            let mut world = InventoryWorld::new(n, mode, NetworkPrep::Flat);
            let mut v = 10_001i64;
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    // Always a real net change, always above threshold.
                    v += 1;
                    world.tx_single_quantity_update(0, v);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
