//! Integration tests for the abstract-interpretation layer: the
//! L006–L009 passes surfacing through `lint_script` (snapshot-style
//! rendered output), semantic (L007) differential pruning being
//! observationally invisible across check levels × execution
//! strategies, the activation-time conformance gate, and the
//! `monitor rule … naive|incremental|auto` strategy pin.

use amos_core::hybrid::Strategy;
use amos_core::propagate::ExecStrategy;
use amos_db::engine::NetworkPrep;
use amos_db::{
    Amos, CheckLevel, DbError, EngineOptions, LintCode, LintConfig, MonitorMode, Severity,
};
use proptest::prelude::*;

fn quiet(db: &mut Amos) {
    db.register_procedure("print", |_ctx, _args| Ok(()));
    db.register_procedure("order", |_ctx, _args| Ok(()));
}

/// A schema whose rule condition has one live clause and one clause
/// that only the *semantic* (cross-predicate interval) analysis can
/// prove empty: `band(i)` is bounded above by 5 by its own body, so
/// `band(i) > 100` never holds — but no single clause is syntactically
/// contradictory, keeping L005 out of the picture. Bushy preparation
/// keeps `band` as a network sub-node instead of inlining it (inlined,
/// the contradiction becomes syntactic and the L005 pruning path
/// fires instead).
const BANDED: &str = r#"
    create type item;
    create function quantity(item i) -> integer;
    create function band(item i) -> integer
        as select quantity(i) where quantity(i) < 5;
    create rule watch() as
        when for each item i
        where band(i) > 100 or quantity(i) > 50
        do print(i);
"#;

fn banded_db(semantic: bool, strategy: ExecStrategy) -> Amos {
    let mut db = Amos::with_options(EngineOptions {
        network_prep: NetworkPrep::Bushy,
        semantic_pruning: semantic,
        propagation: strategy,
        ..EngineOptions::default()
    });
    quiet(&mut db);
    db.execute(BANDED).unwrap();
    db
}

// ---------------------------------------------------------------------
// Semantic pruning prunes — and is observationally invisible
// ---------------------------------------------------------------------

#[test]
fn semantic_pruning_drops_provably_empty_differentials() {
    let mut db = banded_db(true, ExecStrategy::Parallel);
    db.execute("create item instances :a; activate watch();")
        .unwrap();
    let pruned = db.rules().network().pruned_semantic();
    assert!(
        !pruned.is_empty(),
        "expected semantically pruned differentials, network:\n{}",
        db.rules().network().render(db.catalog())
    );

    let mut db = banded_db(false, ExecStrategy::Parallel);
    db.execute("create item instances :a; activate watch();")
        .unwrap();
    assert!(db.rules().network().pruned_semantic().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// L007 pruning must be invisible: run a random update workload
    /// with and without semantic pruning and compare every commit's
    /// `CheckSummary` across all check levels × execution strategies.
    #[test]
    fn semantic_pruning_preserves_semantics(
        updates in proptest::collection::vec((0usize..3, -20i64..120), 1..8),
    ) {
        let run = |semantic: bool, check: CheckLevel, strategy: ExecStrategy| {
            let mut db = banded_db(semantic, strategy);
            db.set_check_level(check);
            db.execute("create item instances :a, :b, :c; activate watch();")
                .unwrap();
            let mut summaries = Vec::new();
            for (slot, value) in &updates {
                let var = ["a", "b", "c"][*slot];
                let results = db
                    .execute(&format!(
                        "begin; set quantity(:{var}) = {value}; commit;"
                    ))
                    .unwrap();
                for r in results {
                    if let amos_db::ExecResult::Committed(s) = r {
                        summaries.push(s);
                    }
                }
            }
            summaries
        };
        for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            for strategy in [
                ExecStrategy::Serial,
                ExecStrategy::Parallel,
                ExecStrategy::Sharded { workers: 3 },
            ] {
                let unpruned = run(false, check, strategy);
                let pruned = run(true, check, strategy);
                prop_assert_eq!(
                    &unpruned,
                    &pruned,
                    "summaries diverged at {:?}/{:?}",
                    check,
                    strategy
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// The activation-time conformance gate
// ---------------------------------------------------------------------

/// A conforming network activates cleanly (the gate runs on every
/// `activate`), and the paper's inventory schema passes it.
#[test]
fn inventory_schema_passes_the_conformance_gate() {
    let mut db = Amos::new();
    quiet(&mut db);
    db.execute(include_str!("../../../examples/osql/inventory.osql"))
        .unwrap();
    db.execute("activate monitor_items();").unwrap();
    let violations = amos_core::verify::verify_network(
        db.catalog(),
        db.storage(),
        db.rules().network(),
        db.rules().scope,
        true,
    );
    assert!(violations.is_empty(), "{violations:?}");
}

/// Build the network with semantic pruning but verify without the
/// matching entitlement: the gate must report the pruned differentials
/// as missing, refuse the activation, and roll it back.
#[test]
fn conformance_gate_rolls_back_a_refused_activation() {
    let mut db = banded_db(true, ExecStrategy::Parallel);
    db.options.semantic_pruning = false; // verifier loses the entitlement
    db.execute("create item instances :a;").unwrap();
    let err = db.execute("activate watch();").unwrap_err();
    let DbError::Conformance(violations) = err else {
        panic!("expected conformance refusal, got {err:?}");
    };
    assert!(
        violations.iter().any(|v| v.contains("was not emitted")),
        "{violations:?}"
    );
    let id = db.rules().rule_id("watch").unwrap();
    assert!(
        !db.rules().rule(id).is_active(),
        "refused activation must be rolled back"
    );
    // With consistent entitlements the same rule activates fine.
    db.options.semantic_pruning = true;
    db.execute("activate watch();").unwrap();
}

// ---------------------------------------------------------------------
// `monitor rule` strategy pins
// ---------------------------------------------------------------------

#[test]
fn monitor_rule_pins_override_the_hybrid_cost_model() {
    let mut db = Amos::new();
    quiet(&mut db);
    db.set_monitor_mode(MonitorMode::Hybrid);
    db.execute(
        r#"
        create type item;
        create function quantity(item i) -> integer;
        create rule low() as
            when for each item i where quantity(i) < 10 do print(i);
        create item instances :a;
        activate low();
    "#,
    )
    .unwrap();
    let id = db.rules().rule_id("low").unwrap();

    db.execute("monitor rule low naive;").unwrap();
    let text = explain(&mut db, "explain rule low;");
    assert!(text.contains("monitor strategy: naive"), "{text}");
    db.execute("begin; set quantity(:a) = 5; commit;").unwrap();
    assert_eq!(db.rules().last_strategies()[&id], Strategy::Naive);
    assert!(db.rules().stats().naive_recomputations > 0);

    db.execute("monitor rule low incremental;").unwrap();
    let text = explain(&mut db, "explain rule low;");
    assert!(text.contains("monitor strategy: incremental"), "{text}");
    db.execute("begin; set quantity(:a) = 50; commit;").unwrap();
    assert_eq!(db.rules().last_strategies()[&id], Strategy::Incremental);

    db.execute("monitor rule low auto;").unwrap();
    let text = explain(&mut db, "explain rule low;");
    assert!(text.contains("monitor strategy: auto"), "{text}");

    let err = db.execute("monitor rule missing naive;").unwrap_err();
    assert!(err.to_string().contains("missing"), "{err}");
}

// ---------------------------------------------------------------------
// L006–L009 through the script driver (rendered-output snapshots)
// ---------------------------------------------------------------------

fn rendered(src: &str) -> Vec<String> {
    amos_db::lint_script(src, &LintConfig::default())
        .unwrap()
        .iter()
        .map(|d| d.render("f.osql"))
        .collect()
}

#[test]
fn l006_type_mismatch_is_deny_and_rendered_with_span() {
    let out = rendered(
        r#"
        create type item;
        create function quantity(item i) -> integer;
        create function label(item i) -> charstring;
        create rule bad() as
            when for each item i where quantity(i) < label(i)
            do print(i);
    "#,
    );
    let l006: Vec<_> = out.iter().filter(|l| l.contains("[L006]")).collect();
    assert!(!l006.is_empty(), "no L006 in {out:#?}");
    assert!(
        l006.iter().any(|l| l.starts_with("f.osql:")
            && l.contains("deny[L006]")
            && l.contains("incompatible types")),
        "{l006:#?}"
    );
    // Deny severity: the script driver reports it as gate-refusing.
    let diags = amos_db::lint_script(
        r#"
        create type item;
        create function quantity(item i) -> integer;
        create function label(item i) -> charstring;
        create rule bad() as
            when for each item i where quantity(i) < label(i)
            do print(i);
    "#,
        &LintConfig::default(),
    )
    .unwrap();
    assert!(diags
        .iter()
        .any(|d| d.code == LintCode::L006 && d.severity == Severity::Deny));
}

#[test]
fn l007_provably_empty_condition_is_reported_with_rule() {
    let out = rendered(
        r#"
        create type item;
        create function quantity(item i) -> integer;
        create function band(item i) -> integer
            as select quantity(i) where quantity(i) < 5;
        create rule never() as
            when for each item i where band(i) > 100
            do print(i);
    "#,
    );
    assert!(
        out.iter().any(|l| l.contains("warn[L007]")
            && l.contains("can never fire")
            && l.contains("[never]")),
        "{out:#?}"
    );
}

#[test]
fn l008_subsumed_condition_names_both_rules() {
    let out = rendered(
        r#"
        create type item;
        create function quantity(item i) -> integer;
        create rule tight() as
            when for each item i where quantity(i) < 5 do print(i);
        create rule loose() as
            when for each item i where quantity(i) < 10 do print(i);
    "#,
    );
    assert!(
        out.iter()
            .any(|l| l.contains("warn[L008]") && l.contains("tight") && l.contains("loose")),
        "{out:#?}"
    );
}

#[test]
fn l009_foldable_subcondition_shows_residual() {
    let out = rendered(
        r#"
        create type item;
        create function quantity(item i) -> integer;
        create function small(item i) -> integer
            as select quantity(i) where quantity(i) < 5;
        create rule low() as
            when for each item i where small(i) < 10
            do print(i);
    "#,
    );
    assert!(
        out.iter().any(|l| l.contains("warn[L009]")
            && l.contains("folded away")
            && l.contains("residual")),
        "{out:#?}"
    );
}

#[test]
fn clean_inventory_schema_has_no_absint_findings() {
    let mut strict = LintConfig::default();
    strict.deny_warnings();
    let diags = amos_db::lint_script(
        include_str!("../../../examples/osql/inventory.osql"),
        &strict,
    )
    .unwrap();
    assert!(diags.is_empty(), "unexpected findings: {diags:#?}");
}

// ---------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------

fn explain(db: &mut Amos, stmt: &str) -> String {
    let results = db.execute(stmt).unwrap();
    for r in results {
        if let amos_db::ExecResult::Text(t) = r {
            return t;
        }
    }
    panic!("statement produced no text output");
}
