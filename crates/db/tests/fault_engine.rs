//! Engine-level fault injection (requires `--features fault-injection`).
//!
//! A `FaultPlan` installed on the engine reaches both layers it is
//! threaded through: the WAL (commit fails transiently, the transaction
//! survives for a retry) and the propagation wave-front (an injected
//! pass failure surfaces as a commit error without corrupting state).

#![cfg(feature = "fault-injection")]

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use amos_db::{Amos, DbError, ExecResult, Value, WalConfig};
use amos_storage::fault::{FaultPlan, WalFault};

const SCHEMA: &str = r#"
    create type item;
    create function quantity(item i) -> integer;
    create function threshold(item i) -> integer;

    create rule watch_rule() as
        when for each item i
        where quantity(i) < threshold(i)
        do note(i);
"#;

const POPULATE: &str = r#"
    create item instances :x;
    set threshold(:x) = 100;
    set quantity(:x) = 500;
    activate watch_rule();
"#;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amos-efault-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn setup(dir: Option<&PathBuf>) -> (Amos, Arc<Mutex<Vec<Value>>>) {
    let mut db = Amos::new();
    if let Some(dir) = dir {
        db.attach_wal(dir, WalConfig::default()).unwrap();
    }
    let noted: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = noted.clone();
    db.register_procedure("note", move |_ctx, args| {
        sink.lock().unwrap().push(args[0].clone());
        Ok(())
    });
    db.execute(SCHEMA).unwrap();
    db.execute(POPULATE).unwrap();
    (db, noted)
}

#[test]
fn injected_wal_error_fails_the_commit_and_a_retry_succeeds() {
    let dir = tmpdir("walerr");
    let (mut db, noted) = setup(Some(&dir));
    // POPULATE already consumed some WAL batches; fail the next one.
    let next = db.storage_mut().wal_mut().unwrap().next_seq();
    db.set_fault_plan(Arc::new(FaultPlan::wal(WalFault::IoErrorAtBatch(next))));

    let err = db
        .execute("begin; set quantity(:x) = 50; commit;")
        .unwrap_err();
    assert!(matches!(err, DbError::Storage(_)), "{err}");
    // The check phase ran (the rule fired) but durability failed; the
    // transaction is still open so the caller decides.
    assert!(db.storage().in_transaction());
    db.execute("rollback;").unwrap();
    noted.lock().unwrap().clear();

    // The fault was one-shot: the retry commits and fires the rule.
    let results = db.execute("begin; set quantity(:x) = 50; commit;").unwrap();
    assert!(matches!(results.last(), Some(ExecResult::Committed(_))));
    assert_eq!(noted.lock().unwrap().len(), 1);

    // And the retried transaction is durable.
    let mut db2 = Amos::new();
    db2.attach_wal(&dir, WalConfig::default()).unwrap();
    let q = db2.storage().relation_id("quantity").unwrap();
    let tuples: Vec<_> = db2.storage().relation(q).scan().cloned().collect();
    assert!(tuples.iter().any(|t| t[1] == Value::Int(50)), "{tuples:?}");
}

#[test]
fn injected_propagation_fault_aborts_the_commit_cleanly() {
    let (mut db, noted) = setup(None);
    db.set_fault_plan(Arc::new(FaultPlan::propagation(1)));

    let err = db.execute("set quantity(:x) = 50;").unwrap_err();
    assert!(err.to_string().contains("injected fault"), "{err}");
    // Autocommit rolled the implicit transaction back: no firing, no
    // leftover state, and the engine is reusable.
    assert!(!db.storage().in_transaction());
    assert!(noted.lock().unwrap().is_empty());

    // The one-shot fault is spent; the same update now goes through.
    let results = db.execute("set quantity(:x) = 50;").unwrap();
    assert!(matches!(results.last(), Some(ExecResult::Committed(_))));
    assert_eq!(noted.lock().unwrap().len(), 1);
}
