//! Deterministic-interleaving stress harness for session transactions.
//!
//! A single driver thread owns K sessions over one shared engine and
//! advances them statement-by-statement in a seeded random order — every
//! interleaving is reproducible from its seed. The committed history is
//! then replayed serially, in commit order, on a fresh *naive-monitor*
//! oracle engine (conditions recomputed from scratch — no partial
//! differencing, no session machinery), and the two must agree exactly:
//! final stored state, rule-firing log, and per-commit check summaries.
//! That is the serializability theorem of first-committer-wins
//! validation, checked against the paper's ground-truth monitor.
//!
//! `AMOS_STRESS_SESSIONS` overrides K; `AMOS_SWEEP_STRIDE=<n>` thins the
//! seed sweep (CI runs a matrix over both).

use std::sync::{Arc, Mutex};

use amos_db::{Amos, DbError, ExecResult, MonitorMode, SharedEngine, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_ITEMS: usize = 6;

const SCHEMA: &str = r#"
    create type item;
    create function quantity(item i) -> integer;
    create function threshold(item i) -> integer;

    create rule low() as
        when for each item i
        where quantity(i) < threshold(i)
        do note(i);
"#;

fn item(i: usize) -> String {
    format!(":i{i}")
}

/// Build an engine with the shared schema, a `note` sink, and seeded
/// initial quantities. Identical construction ⇒ identical OIDs, so
/// states compare bit-for-bit across engines.
fn build(mode: MonitorMode) -> (Amos, Arc<Mutex<Vec<Value>>>) {
    let mut db = Amos::new();
    db.set_monitor_mode(mode);
    let noted: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = noted.clone();
    db.register_procedure("note", move |_ctx, args| {
        sink.lock().unwrap().push(args[0].clone());
        Ok(())
    });
    db.execute(SCHEMA).unwrap();
    let names: Vec<String> = (0..N_ITEMS).map(item).collect();
    db.execute(&format!("create item instances {};", names.join(", ")))
        .unwrap();
    for (i, name) in names.iter().enumerate() {
        db.execute(&format!("set quantity({name}) = {};", 100 + i as i64))
            .unwrap();
        db.execute(&format!("set threshold({name}) = 50;")).unwrap();
    }
    db.execute("activate low();").unwrap();
    (db, noted)
}

/// One random transaction: a few statements mixing key-granular writes,
/// read-depending writes (the isolation-sensitive kind), and occasional
/// whole-relation scans.
fn gen_txn(rng: &mut StdRng) -> Vec<String> {
    let n = rng.gen_range(1..=3usize);
    let mut stmts = Vec::with_capacity(n);
    for _ in 0..n {
        let a = item(rng.gen_range(0..N_ITEMS));
        let b = item(rng.gen_range(0..N_ITEMS));
        stmts.push(match rng.gen_range(0..10u32) {
            // Blind write.
            0..=2 => format!("set quantity({a}) = {};", rng.gen_range(0..120i64)),
            // Read-modify-write of one key.
            3..=6 => format!(
                "set quantity({a}) = quantity({a}) {} {};",
                if rng.gen_bool(0.5) { "+" } else { "-" },
                rng.gen_range(1..20i64)
            ),
            // Cross-key dependency: a's new value reads b.
            7..=8 => format!(
                "set quantity({a}) = quantity({b}) + {};",
                rng.gen_range(0..9i64)
            ),
            // Whole-relation scan (recorded as a whole-rel read).
            _ => format!(
                "select quantity(i) for each item i; set threshold({a}) = {};",
                rng.gen_range(40..60i64)
            ),
        });
    }
    stmts
}

/// A session's cursor through its workload under the driver.
struct Runner {
    session: amos_db::Session,
    txns: Vec<Vec<String>>,
    /// (txn index, step) — step 0 is `begin`, 1..=n the statements,
    /// n+1 the `commit`.
    at: (usize, usize),
    summaries: Vec<Vec<(String, usize)>>,
}

impl Runner {
    fn done(&self) -> bool {
        self.at.0 >= self.txns.len()
    }
}

struct Outcome {
    committed: Vec<String>,
    aborts: usize,
    noted: Vec<Value>,
    summaries: Vec<Vec<(String, usize)>>,
    state: Vec<Vec<amos_types::Tuple>>,
}

/// Drive K sessions through seeded workloads in a seeded interleaving.
/// Returns the committed statement groups in commit order plus
/// everything needed for the oracle comparison.
fn run_schedule(seed: u64, k: usize) -> Outcome {
    let (db, noted) = build(MonitorMode::default());
    let engine = SharedEngine::new(db);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut runners: Vec<Runner> = (0..k)
        .map(|_| Runner {
            session: engine.session(),
            txns: (0..4).map(|_| gen_txn(&mut rng)).collect(),
            at: (0, 0),
            summaries: Vec::new(),
        })
        .collect();

    let mut committed: Vec<String> = Vec::new();
    let mut commit_summaries: Vec<Vec<(String, usize)>> = Vec::new();
    let mut aborts = 0usize;
    let mut steps = 0usize;
    while runners.iter().any(|r| !r.done()) {
        steps += 1;
        assert!(steps < 100_000, "schedule failed to terminate (livelock?)");
        let pick = rng.gen_range(0..k);
        let r = &mut runners[pick];
        if r.done() {
            continue;
        }
        let (ti, si) = r.at;
        let stmts = &r.txns[ti];
        if si == 0 {
            r.session.execute("begin;").unwrap();
            r.at.1 = 1;
        } else if si <= stmts.len() {
            r.session.execute(&stmts[si - 1]).unwrap();
            r.at.1 += 1;
        } else {
            match r.session.execute("commit;") {
                Ok(results) => {
                    let summary = results
                        .iter()
                        .find_map(|res| match res {
                            ExecResult::Committed(s) => Some(s.executed.clone()),
                            _ => None,
                        })
                        .expect("commit summary");
                    // Read-only transactions are invisible to the serial
                    // history (they commit nothing).
                    commit_summaries.push(summary.clone());
                    r.summaries.push(summary);
                    committed.push(stmts.join(" "));
                    r.at = (ti + 1, 0);
                }
                Err(e) if e.is_retryable() => {
                    aborts += 1;
                    r.at = (ti, 0); // retry the whole transaction
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    let state = dump(&engine);
    let noted = noted.lock().unwrap().clone();
    Outcome {
        committed,
        aborts,
        noted,
        summaries: commit_summaries,
        state,
    }
}

fn dump(engine: &Arc<SharedEngine>) -> Vec<Vec<amos_types::Tuple>> {
    let mut s = engine.session();
    ["quantity", "threshold"]
        .iter()
        .map(|f| {
            s.query(&format!("select i, {f}(i) for each item i;"))
                .unwrap()
        })
        .collect()
}

/// Replay the committed statement groups serially, in commit order, on a
/// naive-monitor oracle (conditions recomputed from scratch at every
/// commit — the ground truth partial differencing must agree with).
fn serial_oracle(committed: &[String]) -> Outcome {
    let (mut db, noted) = build(MonitorMode::Naive);
    let mut summaries = Vec::new();
    for group in committed {
        let results = db.execute(&format!("begin; {group} commit;")).unwrap();
        let summary = results
            .iter()
            .find_map(|res| match res {
                ExecResult::Committed(s) => Some(s.executed.clone()),
                _ => None,
            })
            .expect("commit summary");
        summaries.push(summary);
    }
    let engine = SharedEngine::new(db);
    let state = dump(&engine);
    let noted = noted.lock().unwrap().clone();
    Outcome {
        committed: committed.to_vec(),
        aborts: 0,
        noted,
        summaries,
        state,
    }
}

fn sessions_from_env(default: usize) -> usize {
    std::env::var("AMOS_STRESS_SESSIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&k| k > 0)
        .unwrap_or(default)
}

fn stride_from_env() -> u64 {
    std::env::var("AMOS_SWEEP_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

/// The main theorem: for every seeded interleaving, the concurrent
/// committed history equals its serial replay — same stored state, same
/// rule firings in the same order, same per-commit check summaries.
#[test]
fn seeded_interleavings_equal_serial_replay() {
    let k = sessions_from_env(4);
    let stride = stride_from_env();
    let mut total_aborts = 0usize;
    let mut seed = 1u64;
    while seed <= 12 {
        let outcome = run_schedule(seed, k);
        let oracle = serial_oracle(&outcome.committed);
        assert_eq!(
            outcome.state, oracle.state,
            "seed {seed}: concurrent state diverged from serial replay"
        );
        assert_eq!(
            outcome.noted, oracle.noted,
            "seed {seed}: rule-firing log diverged"
        );
        assert_eq!(
            outcome.summaries, oracle.summaries,
            "seed {seed}: check summaries diverged"
        );
        total_aborts += outcome.aborts;
        seed += stride;
    }
    // Across the sweep at least one schedule must have exercised the
    // abort path, or the harness isn't testing conflicts at all.
    if k > 1 && stride == 1 {
        assert!(total_aborts > 0, "no schedule produced a conflict");
    }
}

/// A hand-crafted hot-key schedule guaranteed to conflict: both sessions
/// read-modify-write the same key, overlapped. Pins the abort counter
/// deterministically (the sweep above only checks it in aggregate).
#[test]
fn crafted_hot_key_schedule_aborts() {
    let (db, _noted) = build(MonitorMode::default());
    let engine = SharedEngine::new(db);
    let mut s1 = engine.session();
    let mut s2 = engine.session();

    s1.execute("begin; set quantity(:i0) = quantity(:i0) + 1;")
        .unwrap();
    s2.execute("begin; set quantity(:i0) = quantity(:i0) + 1;")
        .unwrap();
    s1.execute("commit;").unwrap();
    let err = s2.execute("commit;").unwrap_err();
    assert!(matches!(err, DbError::TxnConflict { .. }), "got {err}");

    // Retried, the increment lands on top of s1's: no lost update.
    s2.execute("begin; set quantity(:i0) = quantity(:i0) + 1; commit;")
        .unwrap();
    let rows = s2.query("select quantity(:i0);").unwrap();
    assert_eq!(rows[0][0], Value::Int(102));
}
