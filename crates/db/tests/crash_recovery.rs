//! Engine-level crash-recovery differential suite.
//!
//! A seeded workload (updates + an active self-updating rule) runs with
//! a WAL attached; the suite then
//!
//! * recovers a fresh engine from the WAL and asserts it is
//!   tuple-identical to the engine that never crashed — under every
//!   `CheckLevel` (raw/nervous/strict) and `ExecStrategy`
//!   (serial/parallel);
//! * simulates a crash at **every byte offset** of the WAL, recovers,
//!   and asserts the recovered relations match an independent replay of
//!   the surviving (CRC-complete) batches — the prefix-durability and
//!   atomic-commit invariants end to end;
//! * recovers one engine in incremental mode and one in naive
//!   (full-recompute) mode and asserts their rule behaviour agrees —
//!   the `NaiveMonitor` oracle of §6.
//!
//! Set `AMOS_SWEEP_STRIDE=<n>` to thin the offset sweep (CI caps
//! runtime this way); default is every offset.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use amos_core::propagate::ExecStrategy;
use amos_db::{Amos, CheckLevel, ExecResult, MonitorMode, Tuple, WalConfig};
use amos_storage::{read_wal_bytes, LogOp, WAL_FILE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SCHEMA: &str = r#"
    create type item;
    create function quantity(item i) -> integer;
    create function threshold(item i) -> integer;

    create rule refill() as
        when for each item i
        where quantity(i) < threshold(i)
        do set quantity(i) = 500;
"#;

const POPULATE: &str = r#"
    create item instances :a, :b, :c, :d;
    set threshold(:a) = 100;
    set threshold(:b) = 150;
    set threshold(:c) = 200;
    set threshold(:d) = 250;
    set quantity(:a) = 300;
    set quantity(:b) = 300;
    set quantity(:c) = 300;
    set quantity(:d) = 300;
"#;

const ITEMS: [&str; 4] = ["a", "b", "c", "d"];

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amos-dbcrash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_wal(from: &Path, name: &str) -> PathBuf {
    let to = tmpdir(name);
    for f in [WAL_FILE, amos_storage::SNAPSHOT_FILE] {
        if from.join(f).exists() {
            std::fs::copy(from.join(f), to.join(f)).unwrap();
        }
    }
    to
}

/// Engine with the config applied, the WAL attached, and the schema
/// loaded (which adopts any recovered relations). No instances yet.
fn mk_engine(dir: &Path, level: CheckLevel, strategy: ExecStrategy, mode: MonitorMode) -> Amos {
    let mut db = Amos::new();
    db.set_check_level(level);
    db.set_propagation_strategy(strategy);
    db.set_monitor_mode(mode);
    db.attach_wal(dir, WalConfig::default()).unwrap();
    db.execute(SCHEMA).unwrap();
    db
}

/// A fully populated engine with the rule active. On a recovery dir the
/// item interface variables are rebound from the recovered extent.
fn build(dir: &Path, level: CheckLevel, strategy: ExecStrategy, mode: MonitorMode) -> Amos {
    let mut db = mk_engine(dir, level, strategy, mode);
    let items = db.query("select i for each item i;").unwrap();
    if items.is_empty() {
        db.execute(POPULATE).unwrap();
    } else {
        // Recovered world: oids come back in creation order.
        assert_eq!(items.len(), ITEMS.len());
        for (name, row) in ITEMS.iter().zip(&items) {
            db.bind_iface(name, row[0].clone());
        }
    }
    db.execute("activate refill();").unwrap();
    db
}

/// One seeded transaction: set 1–3 random items to random quantities.
fn txn_script(rng: &mut StdRng) -> String {
    let mut s = String::from("begin;\n");
    for _ in 0..rng.gen_range(1usize..=3) {
        let item = ITEMS[rng.gen_range(0usize..ITEMS.len())];
        let v = rng.gen_range(0i64..600);
        s.push_str(&format!("set quantity(:{item}) = {v};\n"));
    }
    s.push_str("commit;\n");
    s
}

/// Run `n` seeded transactions; returns the rule firings observed.
fn run_txns(db: &mut Amos, rng: &mut StdRng, n: usize) -> Vec<(String, usize)> {
    let mut fired = Vec::new();
    for _ in 0..n {
        for r in db.execute(&txn_script(rng)).unwrap() {
            if let ExecResult::Committed(summary) = r {
                assert!(summary.failed.is_empty());
                fired.extend(summary.executed);
            }
        }
    }
    fired
}

/// Every base relation's contents, keyed by name.
fn all_relations(db: &Amos) -> BTreeMap<String, BTreeSet<Tuple>> {
    let s = db.storage();
    s.relation_ids()
        .map(|id| {
            let r = s.relation(id);
            (r.name().to_string(), r.scan().cloned().collect())
        })
        .collect()
}

#[test]
fn recovered_engine_matches_uncrashed_engine_for_each_config() {
    let levels = [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict];
    let strategies = [ExecStrategy::Serial, ExecStrategy::Parallel];
    for (li, level) in levels.into_iter().enumerate() {
        for (si, strategy) in strategies.into_iter().enumerate() {
            let tag = format!("cfg{li}{si}");
            let dir = tmpdir(&tag);
            let seed = 1000 + (li * 2 + si) as u64;

            let mut live = build(&dir, level, strategy, MonitorMode::Incremental);
            let mut rng = StdRng::seed_from_u64(seed);
            run_txns(&mut live, &mut rng, 10);

            // "Crash": recover a fresh engine from a copy of the WAL.
            let rdir = copy_wal(&dir, &format!("{tag}-rec"));
            let mut recovered = build(&rdir, level, strategy, MonitorMode::Incremental);
            assert_eq!(
                all_relations(&recovered),
                all_relations(&live),
                "{level:?}/{strategy:?}: recovered state must equal the uncrashed engine"
            );

            // Both engines must behave identically from here on.
            let mut rng_a = StdRng::seed_from_u64(seed + 7);
            let mut rng_b = StdRng::seed_from_u64(seed + 7);
            let fired_live = run_txns(&mut live, &mut rng_a, 4);
            let fired_rec = run_txns(&mut recovered, &mut rng_b, 4);
            assert_eq!(
                fired_rec, fired_live,
                "{level:?}/{strategy:?}: probe firings"
            );
            assert_eq!(all_relations(&recovered), all_relations(&live));
        }
    }
}

#[test]
fn crash_at_every_wal_offset_recovers_the_durable_prefix() {
    let dir = tmpdir("sweep");
    {
        let mut db = build(
            &dir,
            CheckLevel::Nervous,
            ExecStrategy::Parallel,
            MonitorMode::Incremental,
        );
        let mut rng = StdRng::seed_from_u64(99);
        run_txns(&mut db, &mut rng, 8);
    }
    let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
    let stride: usize = std::env::var("AMOS_SWEEP_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1);

    let crash_dir = tmpdir("sweep-crash");
    let mut cut = 0usize;
    while cut <= bytes.len() {
        std::fs::write(crash_dir.join(WAL_FILE), &bytes[..cut]).unwrap();
        let _ = std::fs::remove_file(crash_dir.join(amos_storage::SNAPSHOT_FILE));

        // Independent oracle: replay the CRC-complete batches of the
        // surviving prefix with plain set semantics.
        let surviving = read_wal_bytes(&bytes[..cut]).unwrap();
        let mut oracle: BTreeMap<String, BTreeSet<Tuple>> = BTreeMap::new();
        for batch in &surviving.batches {
            for rec in &batch.records {
                let rel = oracle.entry(rec.rel.clone()).or_default();
                match rec.op {
                    LogOp::Insert => {
                        rel.insert(rec.tuple.clone());
                    }
                    LogOp::Delete => {
                        rel.remove(&rec.tuple);
                    }
                }
            }
        }

        // Schema-only recovery: POPULATE must not run here — it would
        // re-insert instances and diverge from the durable prefix.
        let recovered = mk_engine(
            &crash_dir,
            CheckLevel::Nervous,
            ExecStrategy::Parallel,
            MonitorMode::Incremental,
        );
        for (name, tuples) in all_relations(&recovered) {
            let expect = oracle.get(&name).cloned().unwrap_or_default();
            assert_eq!(
                tuples, expect,
                "cut at byte {cut}: relation `{name}` must match the oracle replay"
            );
        }
        cut += stride;
    }
    // Make sure a recovered engine is actually usable after a torn cut.
    let torn_cut = bytes.len() - 3;
    std::fs::write(crash_dir.join(WAL_FILE), &bytes[..torn_cut]).unwrap();
    let mut recovered = build(
        &crash_dir,
        CheckLevel::Nervous,
        ExecStrategy::Parallel,
        MonitorMode::Incremental,
    );
    let mut rng = StdRng::seed_from_u64(5);
    run_txns(&mut recovered, &mut rng, 2);
}

#[test]
fn recovered_incremental_agrees_with_naive_oracle() {
    for (i, level) in [CheckLevel::Nervous, CheckLevel::Strict]
        .into_iter()
        .enumerate()
    {
        let tag = format!("oracle{i}");
        let dir = tmpdir(&tag);
        {
            let mut db = build(
                &dir,
                level,
                ExecStrategy::Parallel,
                MonitorMode::Incremental,
            );
            let mut rng = StdRng::seed_from_u64(7 + i as u64);
            run_txns(&mut db, &mut rng, 8);
        }

        let inc_dir = copy_wal(&dir, &format!("{tag}-inc"));
        let naive_dir = copy_wal(&dir, &format!("{tag}-naive"));
        let mut inc = build(
            &inc_dir,
            level,
            ExecStrategy::Parallel,
            MonitorMode::Incremental,
        );
        let mut naive = build(&naive_dir, level, ExecStrategy::Serial, MonitorMode::Naive);
        assert_eq!(all_relations(&inc), all_relations(&naive));

        // Identical probes: the incremental engine must fire exactly as
        // the naive full-recompute oracle does.
        let mut rng_a = StdRng::seed_from_u64(31);
        let mut rng_b = StdRng::seed_from_u64(31);
        let fired_inc = run_txns(&mut inc, &mut rng_a, 5);
        let fired_naive = run_txns(&mut naive, &mut rng_b, 5);
        assert_eq!(
            fired_inc, fired_naive,
            "{level:?}: incremental vs naive oracle"
        );
        assert_eq!(all_relations(&inc), all_relations(&naive));
    }
}
