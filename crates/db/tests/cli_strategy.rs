//! End-to-end tests of the `amosql --strategy` flag: accepted spellings
//! start the shell under the chosen strategy, rejected ones exit 2 with
//! a caret diagnostic pointing at the offending slice.

use std::io::Write;
use std::process::{Command, Stdio};

/// Run `amosql` with the given args and empty stdin; return
/// (exit code, stdout, stderr).
fn run_amosql(args: &[&str]) -> (i32, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_amosql"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn amosql");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"")
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait amosql");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn valid_strategies_start_the_shell() {
    for strategy in ["serial", "parallel", "sharded:4"] {
        let (code, stdout, stderr) = run_amosql(&["--strategy", strategy]);
        assert_eq!(code, 0, "--strategy {strategy} failed: {stderr}");
        assert!(
            stdout.contains("amos-pdiff interactive shell"),
            "banner missing for {strategy}: {stdout}"
        );
    }
}

#[test]
fn unknown_strategy_gets_a_spanned_diagnostic() {
    let (code, _, stderr) = run_amosql(&["--strategy", "turbo"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown strategy `turbo`"), "{stderr}");
    // The caret line points at the whole bad token.
    assert!(stderr.contains("--strategy turbo"), "{stderr}");
    assert!(stderr.contains("^^^^^"), "{stderr}");
}

#[test]
fn bad_worker_count_points_after_the_colon() {
    let (code, _, stderr) = run_amosql(&["--strategy", "sharded:0"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("out of range 1..=64"), "{stderr}");
    let caret_line = stderr
        .lines()
        .find(|l| l.trim_start().starts_with('^'))
        .unwrap_or_else(|| panic!("no caret line in {stderr}"));
    // "  --strategy " is 13 chars; "sharded:" is 8 more — the caret
    // must sit under the `0`.
    assert_eq!(caret_line.find('^'), Some(13 + 8), "{stderr}");
    assert_eq!(caret_line.trim_start(), "^", "{stderr}");
}

#[test]
fn worker_count_above_cap_points_at_the_number() {
    let (code, _, stderr) = run_amosql(&["--strategy", "sharded:65"]);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("worker count 65 out of range 1..=64"),
        "{stderr}"
    );
    let caret_line = stderr
        .lines()
        .find(|l| l.trim_start().starts_with('^'))
        .unwrap_or_else(|| panic!("no caret line in {stderr}"));
    // Same geometry as `sharded:0`, but the caret spans both digits.
    assert_eq!(caret_line.find('^'), Some(13 + 8), "{stderr}");
    assert_eq!(caret_line.trim_start(), "^^", "{stderr}");
}

#[test]
fn missing_worker_count_is_rejected() {
    let (code, _, stderr) = run_amosql(&["--strategy", "sharded"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("needs a worker count"), "{stderr}");

    let (code, _, stderr) = run_amosql(&["--strategy"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("--strategy requires a value"), "{stderr}");
}
