//! The paper's running example (§3.1), end to end and near-verbatim:
//! the inventory schema, the `monitor_items` rule, population,
//! activation, and the ordering behaviour the paper describes —
//! "the quantity of items of type 1 is always kept between 5000 and 100,
//! and new items will be delivered if the quantity drops below 140. The
//! quantity of items of type 2 will be kept between 7500 and 200, and
//! new items will be ordered if the quantity drops below 290."

use std::sync::{Arc, Mutex};

use amos_core::MonitorMode;
use amos_db::engine::NetworkPrep;
use amos_db::{Amos, EngineOptions, Value};

/// The §3.1 schema and rule, verbatim modulo whitespace.
const SCHEMA: &str = r#"
    create type item;
    create type supplier;
    create function quantity(item i) -> integer;
    create function max_stock(item i) -> integer;
    create function min_stock(item i) -> integer;
    create function consume_freq(item i) -> integer;
    create function supplies(supplier s) -> item;
    create function delivery_time(item i, supplier s) -> integer;
    create function threshold(item i) -> integer
        as
        select consume_freq(i) * delivery_time(i, s) + min_stock(i)
        for each supplier s where supplies(s) = i;

    create rule monitor_items() as
        when for each item i
        where quantity(i) < threshold(i)
        do order(i, max_stock(i) - quantity(i));
"#;

const POPULATE: &str = r#"
    create item instances :item1, :item2;
    set max_stock(:item1) = 5000;
    set max_stock(:item2) = 7500;
    set min_stock(:item1) = 100;
    set min_stock(:item2) = 200;
    set consume_freq(:item1) = 20;
    set consume_freq(:item2) = 30;
    create supplier instances :sup1, :sup2;
    set supplies(:sup1) = :item1;
    set supplies(:sup2) = :item2;
    set delivery_time(:item1, :sup1) = 2;
    set delivery_time(:item2, :sup2) = 3;
    set quantity(:item1) = 5000;
    set quantity(:item2) = 7500;
    activate monitor_items();
"#;

type OrderLog = Arc<Mutex<Vec<(Value, i64)>>>;

/// Build the paper's world; `orders` collects (item oid, amount).
fn setup(prep: NetworkPrep, mode: MonitorMode) -> (Amos, OrderLog) {
    let mut db = Amos::with_options(EngineOptions {
        network_prep: prep,
        ..Default::default()
    });
    db.set_monitor_mode(mode);
    let orders: OrderLog = Arc::new(Mutex::new(Vec::new()));
    let sink = orders.clone();
    db.register_procedure("order", move |_ctx, args| {
        let amount = args[1].as_int().map_err(|e| e.to_string())?;
        sink.lock().unwrap().push((args[0].clone(), amount));
        Ok(())
    });
    db.execute(SCHEMA).unwrap();
    db.execute(POPULATE).unwrap();
    (db, orders)
}

fn run_scenario(prep: NetworkPrep, mode: MonitorMode) {
    let (mut db, orders) = setup(prep, mode);
    let item1 = db.iface_value("item1").unwrap().clone();

    // Thresholds per the paper: item1 → 20*2+100 = 140; item2 → 30*3+200 = 290.
    let rows = db.query("select threshold(:item1);").unwrap();
    assert_eq!(rows[0][0], Value::Int(140), "{prep:?}/{mode:?}");
    let rows = db.query("select threshold(:item2);").unwrap();
    assert_eq!(rows[0][0], Value::Int(290));

    // Quantity above threshold: no order.
    db.execute("set quantity(:item1) = 200;").unwrap();
    assert!(orders.lock().unwrap().is_empty());

    // Drop item1 below 140 → order 5000 − 120 = 4880.
    db.execute("set quantity(:item1) = 120;").unwrap();
    {
        let o = orders.lock().unwrap();
        assert_eq!(o.len(), 1, "{prep:?}/{mode:?}");
        assert_eq!(o[0], (item1.clone(), 4880));
    }

    // Strict semantics: "we only want to order an item once when it
    // becomes low in stock" — staying low must not re-order.
    db.execute("set quantity(:item1) = 110;").unwrap();
    assert_eq!(orders.lock().unwrap().len(), 1, "no re-order while low");

    // Recover and drop again → a second order (new false→true transition).
    db.execute("set quantity(:item1) = 5000;").unwrap();
    db.execute("set quantity(:item1) = 100;").unwrap();
    {
        let o = orders.lock().unwrap();
        assert_eq!(o.len(), 2);
        assert_eq!(o[1], (item1.clone(), 4900));
    }

    // item2 independently: drop below 290.
    db.execute("set quantity(:item2) = 250;").unwrap();
    assert_eq!(orders.lock().unwrap().len(), 3);

    // A no-net-effect transaction (the §4.1 example) must not trigger.
    db.execute("begin; set quantity(:item2) = 400; set quantity(:item2) = 250; commit;")
        .unwrap();
    assert_eq!(
        orders.lock().unwrap().len(),
        3,
        "no net change → no trigger"
    );

    // Threshold-side influents also trigger: raising min_stock above the
    // current quantity makes the condition true.
    db.execute("set quantity(:item1) = 150;").unwrap(); // above 140 again
    db.execute("set min_stock(:item1) = 120;").unwrap(); // threshold → 160 > 150
    assert_eq!(orders.lock().unwrap().len(), 4, "{prep:?}/{mode:?}");
}

#[test]
fn paper_example_flat_incremental() {
    run_scenario(NetworkPrep::Flat, MonitorMode::Incremental);
}

#[test]
fn paper_example_bushy_incremental() {
    run_scenario(NetworkPrep::Bushy, MonitorMode::Incremental);
}

#[test]
fn paper_example_naive() {
    run_scenario(NetworkPrep::Flat, MonitorMode::Naive);
}

#[test]
fn paper_example_hybrid() {
    run_scenario(NetworkPrep::Flat, MonitorMode::Hybrid);
}

/// fig. 2: the flat network has the five stored influents (plus the item
/// extent) feeding the condition directly.
#[test]
fn flat_network_shape_matches_fig2() {
    let (db, _) = setup(NetworkPrep::Flat, MonitorMode::Incremental);
    let net = db.rules().network();
    let catalog = db.catalog();
    assert_eq!(net.levels().len(), 2, "stored + condition levels only");
    let stored: Vec<String> = net
        .stored_nodes(catalog)
        .into_iter()
        .map(|p| catalog.name(p).to_string())
        .collect();
    for name in [
        "quantity",
        "consume_freq",
        "delivery_time",
        "supplies",
        "min_stock",
        "item_extent",
    ] {
        assert!(
            stored.contains(&name.to_string()),
            "{stored:?} missing {name}"
        );
    }
    // Δcnd_monitor_items/Δ+quantity exists (the fig. 1 `*` edge).
    let quantity = catalog.lookup("quantity").unwrap();
    let node = net.node_of(quantity).unwrap();
    let names: Vec<String> = node
        .out_diffs
        .iter()
        .map(|d| net.differential(*d).display_name(catalog))
        .collect();
    assert!(names.contains(&"Δcnd_monitor_items/Δ+quantity".to_string()));
}

/// fig. 1: the bushy network keeps `threshold` as an intermediate node.
#[test]
fn bushy_network_shape_matches_fig1() {
    let (db, _) = setup(NetworkPrep::Bushy, MonitorMode::Incremental);
    let net = db.rules().network();
    let catalog = db.catalog();
    let threshold = catalog.lookup("threshold").unwrap();
    let node = net.node_of(threshold).expect("threshold is a network node");
    assert_eq!(node.level, 1);
    assert_eq!(net.levels().len(), 3);
}

/// Explainability (§8): the trace identifies which influent fired.
#[test]
fn explanations_identify_influent() {
    let (mut db, _) = setup(NetworkPrep::Flat, MonitorMode::Incremental);
    db.execute("set quantity(:item1) = 120;").unwrap();
    let catalog = db.catalog();
    let trace = db.rules().last_trace();
    assert!(!trace.explanations.is_empty());
    let quantity = catalog.lookup("quantity").unwrap();
    assert!(trace.explanations[0]
        .causes
        .iter()
        .any(|(p, _)| *p == quantity));
}

/// Rollback throws away both updates and pending triggers.
#[test]
fn rollback_discards_pending_triggers() {
    let (mut db, orders) = setup(NetworkPrep::Flat, MonitorMode::Incremental);
    db.execute("begin; set quantity(:item1) = 1; rollback;")
        .unwrap();
    assert!(orders.lock().unwrap().is_empty());
    let rows = db.query("select quantity(:item1);").unwrap();
    assert_eq!(rows[0][0], Value::Int(5000));
    // Next real drop still fires exactly once.
    db.execute("set quantity(:item1) = 1;").unwrap();
    assert_eq!(orders.lock().unwrap().len(), 1);
}

/// Deactivation stops monitoring; reactivation resumes.
#[test]
fn deactivate_reactivate() {
    let (mut db, orders) = setup(NetworkPrep::Flat, MonitorMode::Incremental);
    db.execute("deactivate monitor_items();").unwrap();
    db.execute("set quantity(:item1) = 1;").unwrap();
    assert!(orders.lock().unwrap().is_empty());
    db.execute("activate monitor_items();").unwrap();
    // Already low at activation: strict semantics needs a transition —
    // recover first, then drop.
    db.execute("set quantity(:item1) = 5000;").unwrap();
    db.execute("set quantity(:item1) = 1;").unwrap();
    assert_eq!(orders.lock().unwrap().len(), 1);
}
