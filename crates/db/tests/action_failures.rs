//! Rule-action failure handling at the engine level.
//!
//! A failing (erroring or panicking) action must quarantine exactly its
//! own rule: the action's partial writes are rolled back to the
//! savepoint, the other triggered rules still fire, and the commit's
//! check phase completes and reports the failure — under every
//! `MonitorMode`. `clear quarantine` + a fixed action resumes the rule.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use amos_db::{Amos, ExecResult, MonitorMode, Value};
use amos_types::Tuple;

const SCHEMA: &str = r#"
    create type item;
    create function quantity(item i) -> integer;
    create function threshold(item i) -> integer;
    create function audit(item i) -> integer;

    create rule bad_rule() as
        when for each item i
        where quantity(i) < threshold(i)
        do blowup(i);

    create rule good_rule() as
        when for each item i
        where quantity(i) < threshold(i)
        do note(i);
"#;

const POPULATE: &str = r#"
    create item instances :x, :y;
    set threshold(:x) = 100;
    set threshold(:y) = 100;
    set quantity(:x) = 500;
    set quantity(:y) = 500;
    activate bad_rule();
    activate good_rule();
"#;

struct World {
    db: Amos,
    /// Items seen by `good_rule`'s action.
    noted: Arc<Mutex<Vec<Value>>>,
    /// When set, `blowup` fails (Err or panic per `panics`).
    failing: Arc<AtomicBool>,
    panics: Arc<AtomicBool>,
}

/// `blowup` writes an audit tuple *before* failing, so the tests can
/// observe that the savepoint rollback undid the partial write.
fn setup(mode: MonitorMode) -> World {
    let mut db = Amos::new();
    db.set_monitor_mode(mode);
    let noted: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
    let failing = Arc::new(AtomicBool::new(true));
    let panics = Arc::new(AtomicBool::new(false));

    let sink = noted.clone();
    db.register_procedure("note", move |_ctx, args| {
        sink.lock().unwrap().push(args[0].clone());
        Ok(())
    });
    let f = failing.clone();
    let p = panics.clone();
    db.register_procedure("blowup", move |ctx, args| {
        let audit = ctx
            .storage
            .relation_id("audit")
            .map_err(|e| e.to_string())?;
        ctx.storage
            .insert(audit, Tuple::new(vec![args[0].clone(), Value::Int(1)]))
            .map_err(|e| e.to_string())?;
        if f.load(Ordering::SeqCst) {
            if p.load(Ordering::SeqCst) {
                panic!("blowup exploded");
            }
            return Err("blowup failed".into());
        }
        Ok(())
    });

    db.execute(SCHEMA).unwrap();
    db.execute(POPULATE).unwrap();
    World {
        db,
        noted,
        failing,
        panics,
    }
}

fn audit_rows(db: &Amos) -> usize {
    let id = db.storage().relation_id("audit").unwrap();
    db.storage().relation(id).scan().count()
}

/// Run one statement and return its commit summary.
fn commit_of(db: &mut Amos, stmt: &str) -> amos_core::rules::CheckSummary {
    match db.execute(stmt).unwrap().pop().unwrap() {
        ExecResult::Committed(summary) => summary,
        other => panic!("expected a committed statement, got {other:?}"),
    }
}

fn check_failure_handling(mode: MonitorMode, panic_kind: bool) {
    let mut w = setup(mode);
    w.panics.store(panic_kind, Ordering::SeqCst);

    // Trigger both rules; `blowup` fails after its partial write.
    let summary = commit_of(&mut w.db, "set quantity(:x) = 50;");

    // Exactly bad_rule failed, and the reason is surfaced.
    assert_eq!(summary.failed.len(), 1, "{mode:?}");
    let (name, reason) = &summary.failed[0];
    assert_eq!(name, "bad_rule");
    if panic_kind {
        assert!(reason.contains("blowup exploded"), "{reason}");
    } else {
        assert!(reason.contains("blowup failed"), "{reason}");
    }

    // The failure did not abort the check phase: good_rule still fired.
    assert!(
        summary.executed.iter().any(|(n, _)| n == "good_rule"),
        "{mode:?}: {summary:?}"
    );
    assert_eq!(w.noted.lock().unwrap().len(), 1);
    // The partial audit write was rolled back with the savepoint.
    assert_eq!(
        audit_rows(&w.db),
        0,
        "{mode:?}: partial action write must not survive"
    );

    // Metrics report the quarantine (when the mode produces metrics).
    if let Some(m) = w.db.last_pass_metrics() {
        assert!(
            m.failed_actions.iter().any(|f| f.contains("bad_rule")),
            "{mode:?}: {:?}",
            m.failed_actions
        );
    }

    // `explain rule` surfaces the quarantine.
    let text = match w
        .db
        .execute("explain rule bad_rule;")
        .unwrap()
        .pop()
        .unwrap()
    {
        ExecResult::Text(t) => t,
        other => panic!("{other:?}"),
    };
    assert!(text.contains("QUARANTINED"), "{text}");

    // While quarantined, bad_rule never runs again — good_rule does.
    let summary = commit_of(&mut w.db, "set quantity(:y) = 50;");
    assert!(
        summary.failed.is_empty(),
        "{mode:?}: no repeated failure while quarantined"
    );
    assert!(summary.executed.iter().any(|(n, _)| n == "good_rule"));
    assert!(!summary.executed.iter().any(|(n, _)| n == "bad_rule"));
    assert_eq!(w.noted.lock().unwrap().len(), 2);
    assert_eq!(audit_rows(&w.db), 0);

    // Fix the action, clear the quarantine: the rule resumes cleanly.
    // (Strict semantics: the condition must go false → true again.)
    w.failing.store(false, Ordering::SeqCst);
    assert!(w.db.clear_quarantine("bad_rule").unwrap());
    commit_of(&mut w.db, "set quantity(:x) = 500;");
    let summary = commit_of(&mut w.db, "set quantity(:x) = 40;");
    assert!(summary.failed.is_empty(), "{mode:?}: {summary:?}");
    assert!(
        summary.executed.iter().any(|(n, _)| n == "bad_rule"),
        "{mode:?}: {summary:?}"
    );
    assert!(
        audit_rows(&w.db) > 0,
        "{mode:?}: the fixed action's write persists"
    );
}

#[test]
fn erroring_action_quarantines_only_its_rule_incremental() {
    check_failure_handling(MonitorMode::Incremental, false);
}

#[test]
fn erroring_action_quarantines_only_its_rule_naive() {
    check_failure_handling(MonitorMode::Naive, false);
}

#[test]
fn erroring_action_quarantines_only_its_rule_hybrid() {
    check_failure_handling(MonitorMode::Hybrid, false);
}

#[test]
fn panicking_action_quarantines_only_its_rule_incremental() {
    check_failure_handling(MonitorMode::Incremental, true);
}

#[test]
fn panicking_action_quarantines_only_its_rule_naive() {
    check_failure_handling(MonitorMode::Naive, true);
}

#[test]
fn panicking_action_quarantines_only_its_rule_hybrid() {
    check_failure_handling(MonitorMode::Hybrid, true);
}
