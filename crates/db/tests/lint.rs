//! Integration tests for the static rule analyzer: the `activate`
//! lint gate, `explain rule` surfacing, the script-lint driver, and
//! the satellite properties — L004-pruned networks are observationally
//! identical to unpruned ones, and rule sets the analyzer accepts
//! terminate under Strict semantics in bounded passes.

use amos_db::engine::NetworkPrep;
use amos_db::{Amos, CheckLevel, DbError, EngineOptions, LintCode, LintConfig, Severity, Value};
use amos_objectlog::clause::ClauseBuilder;
use amos_objectlog::Term;
use proptest::prelude::*;

const INVENTORY: &str = include_str!("../../../examples/osql/inventory.osql");
const BAD_RULES: &str = include_str!("../../../examples/osql/bad_rules.osql");

fn quiet(db: &mut Amos) {
    db.register_procedure("print", |_ctx, _args| Ok(()));
    db.register_procedure("order", |_ctx, _args| Ok(()));
}

// ---------------------------------------------------------------------
// The activate gate
// ---------------------------------------------------------------------

/// Mutual recursion through negation cannot be written in AMOSQL (the
/// compiler's two-phase definition only permits self-reference), but
/// the catalog can be rewired into it programmatically. The scoped
/// L002 pass must catch it at `activate` and refuse with a deny-level
/// diagnostic.
#[test]
fn activate_refuses_non_stratifiable_rule() {
    let mut db = Amos::with_options(EngineOptions {
        // Bushy keeps `flip` as a network sub-node, so the rewiring
        // below stays reachable from the rule's condition.
        network_prep: NetworkPrep::Bushy,
        ..EngineOptions::default()
    });
    quiet(&mut db);
    db.execute(
        r#"
        create type item;
        create function quantity(item i) -> integer;
        create function flip(item i) -> boolean
            as select true where quantity(i) > 0;
        create function flop(item i) -> boolean
            as select true where quantity(i) > 0;
        create rule watch() as
            when for each item i where flip(i) do print(i);
    "#,
    )
    .unwrap();
    let flip = db.catalog().lookup("flip").unwrap();
    let flop = db.catalog().lookup("flop").unwrap();
    let quantity = db.catalog().lookup("quantity").unwrap();
    // flip(X, true) ← quantity(X, Q) ∧ ¬flop(X, true)
    db.catalog_mut()
        .replace_clauses(
            flip,
            vec![ClauseBuilder::new(2)
                .head([Term::var(0), Term::val(true)])
                .pred(quantity, [Term::var(0), Term::var(1)])
                .not_pred(flop, [Term::var(0), Term::val(true)])
                .build()],
        )
        .unwrap();
    // flop(X, true) ← flip(X, true)
    db.catalog_mut()
        .replace_clauses(
            flop,
            vec![ClauseBuilder::new(1)
                .head([Term::var(0), Term::val(true)])
                .pred(flip, [Term::var(0), Term::val(true)])
                .build()],
        )
        .unwrap();
    let err = db.execute("activate watch();").unwrap_err();
    let DbError::Lint(diags) = err else {
        panic!("expected lint refusal, got {err:?}");
    };
    assert!(diags
        .iter()
        .any(|d| d.code == LintCode::L002 && d.severity == Severity::Deny));
    assert!(db.to_owned_err_msg(&diags).contains("flip"));
}

/// Escalating a default-warn code to deny makes the gate refuse; the
/// default configuration lets the same rule activate (with a warning
/// visible in `explain rule`).
#[test]
fn lint_level_escalation_gates_activation() {
    let schema = r#"
        create type item;
        create function flagged(item i) -> integer;
        create rule purge() as
            when for each item i where flagged(i) = 1
            do remove flagged(i) = 1;
    "#;
    // Default: L003 warns, activation proceeds.
    let mut db = Amos::new();
    quiet(&mut db);
    db.execute(schema).unwrap();
    db.execute("activate purge();").unwrap();

    // Escalated: L003 denies, activation refused.
    let mut level = LintConfig::default();
    level.set_level(LintCode::L003, Severity::Deny);
    let mut db = Amos::with_options(EngineOptions {
        lint_level: level,
        ..EngineOptions::default()
    });
    quiet(&mut db);
    db.execute(schema).unwrap();
    let err = db.execute("activate purge();").unwrap_err();
    let DbError::Lint(diags) = err else {
        panic!("expected lint refusal, got {err:?}");
    };
    assert!(diags
        .iter()
        .any(|d| d.code == LintCode::L003 && d.message.contains("self-disactivating")));
}

#[test]
fn explain_rule_includes_lint_findings() {
    let mut db = Amos::new();
    quiet(&mut db);
    db.execute(
        r#"
        create type item;
        create function quantity(item i) -> integer;
        create rule impossible() as
            when for each item i
            where quantity(i) < 3 and quantity(i) > 9
            do print(i);
    "#,
    )
    .unwrap();
    let text = db.explain("explain rule impossible;");
    assert!(text.contains("lint:"), "missing lint section:\n{text}");
    assert!(text.contains("[L005]"), "missing L005 finding:\n{text}");
    assert!(text.contains("contradictory bounds"), "{text}");
}

// ---------------------------------------------------------------------
// Script-lint driver
// ---------------------------------------------------------------------

#[test]
fn lint_script_reports_all_nine_codes_with_spans() {
    let diags = amos_db::lint_script(BAD_RULES, &LintConfig::default()).unwrap();
    for code in [
        LintCode::L001,
        LintCode::L002,
        LintCode::L003,
        LintCode::L004,
        LintCode::L005,
        LintCode::L006,
        LintCode::L007,
        LintCode::L008,
        LintCode::L009,
    ] {
        let found: Vec<_> = diags.iter().filter(|d| d.code == code).collect();
        assert!(!found.is_empty(), "no {code} finding in:\n{diags:#?}");
        assert!(
            found.iter().all(|d| d.span.is_some()),
            "{code} finding lacks a span:\n{found:#?}"
        );
    }
    // The L001 finding names the unbindable variable by source name.
    assert!(diags
        .iter()
        .any(|d| d.code == LintCode::L001 && d.message.contains('n')));
    assert!(amos_lint::has_deny(&diags));
}

#[test]
fn lint_script_accepts_the_clean_inventory_schema() {
    let mut strict = LintConfig::default();
    strict.deny_warnings();
    let diags = amos_db::lint_script(INVENTORY, &strict).unwrap();
    assert!(diags.is_empty(), "unexpected findings: {diags:#?}");
}

// ---------------------------------------------------------------------
// Satellite: L004 pruning is observationally invisible
// ---------------------------------------------------------------------

/// Run the inventory workload with and without the append-only marks
/// and compare every commit's `CheckSummary` across all check levels ×
/// execution strategies. Pruned networks must be bit-identical in
/// observable behaviour (the Δ₋ sets they skip are always empty).
#[test]
fn pruned_network_matches_unpruned_check_summaries() {
    use amos_core::propagate::ExecStrategy;

    let run_world = |db: &mut Amos, pruned: bool| -> Vec<amos_core::rules::CheckSummary> {
        let schema = r#"
            create type item;
            create function arrivals(item i) -> integer;
            create function quantity(item i) -> integer;
            create rule low() as
                when for each item i
                where quantity(i) < 10 and arrivals(i) > 0
                do print(i);
        "#;
        quiet(db);
        db.execute(schema).unwrap();
        if pruned {
            db.set_append_only("arrivals", true).unwrap();
            db.set_append_only("item_extent", true).unwrap();
        }
        db.execute("create item instances :a, :b, :c;").unwrap();
        db.execute("activate low();").unwrap();
        if pruned {
            assert!(
                db.rules().network().pruned_count() > 0,
                "append-only marks should prune Δ₋ differentials"
            );
        } else {
            assert_eq!(db.rules().network().pruned_count(), 0);
        }
        let mut summaries = Vec::new();
        // Append-only workload: inserts and quantity updates only.
        for (tx, stmts) in [
            "begin; add arrivals(:a) = 1; set quantity(:a) = 5; commit;",
            "begin; add arrivals(:b) = 2; commit;",
            "begin; set quantity(:b) = 3; set quantity(:c) = 50; commit;",
            "begin; add arrivals(:c) = 7; set quantity(:a) = 4; commit;",
        ]
        .into_iter()
        .enumerate()
        {
            let results = db.execute(stmts).unwrap();
            for r in results {
                if let amos_db::ExecResult::Committed(s) = r {
                    summaries.push((tx, s));
                }
            }
        }
        summaries.into_iter().map(|(_, s)| s).collect()
    };

    for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
        for strategy in [ExecStrategy::Serial, ExecStrategy::Parallel] {
            let opts = || EngineOptions {
                propagation: strategy,
                ..EngineOptions::default()
            };
            let mut plain = Amos::with_options(opts());
            plain.set_check_level(check);
            let baseline = run_world(&mut plain, false);

            let mut marked = Amos::with_options(opts());
            marked.set_check_level(check);
            let pruned = run_world(&mut marked, true);

            assert_eq!(
                baseline, pruned,
                "summaries diverged at {check:?}/{strategy:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Satellite: accepted rule sets terminate under Strict
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generate small acyclic cascades — rule k monitors level k and
    /// writes level k+1 — which L002/L003 accept (no recursion, no
    /// triggering cycle), and check that a Strict check phase
    /// terminates within the bounded number of cascade passes.
    #[test]
    fn accepted_rule_sets_terminate_under_strict(
        depth in 1usize..4,
        seed in 0i64..50,
    ) {
        let mut db = Amos::new();
        quiet(&mut db);
        db.set_check_level(CheckLevel::Strict);
        db.execute("create type item;").unwrap();
        for lvl in 0..=depth {
            db.execute(&format!("create function lvl{lvl}(item i) -> integer;"))
                .unwrap();
        }
        // Rule k: when lvl_k(i) > 0, set lvl_{k+1}(i) — a pure forward
        // cascade, no cycle, every rule accepted by the analyzer.
        for lvl in 0..depth {
            let next = lvl + 1;
            db.execute(&format!(
                "create rule cascade{lvl}() as \
                 when for each item i where lvl{lvl}(i) > 0 \
                 do set lvl{next}(i) = lvl{lvl}(i);"
            ))
            .unwrap();
        }
        for lvl in 0..depth {
            let diags = db.lint_rule(&format!("cascade{lvl}")).unwrap();
            prop_assert!(
                !amos_lint::has_deny(&diags),
                "analyzer rejected an acyclic cascade: {diags:#?}"
            );
            db.execute(&format!("activate cascade{lvl}();")).unwrap();
        }
        db.execute("create item instances :x;").unwrap();
        let results = db
            .execute(&format!("begin; set lvl0(:x) = {}; commit;", 1 + seed))
            .unwrap();
        let mut passes = 0usize;
        let mut fired = 0usize;
        for r in results {
            if let amos_db::ExecResult::Committed(s) = r {
                passes = s.passes;
                fired = s.executed.iter().map(|(_, n)| n).sum();
            }
        }
        // The cascade is `depth` rules deep: each pass fires the next
        // stage, plus one quiescent pass to detect the fixpoint.
        prop_assert!(fired >= depth, "cascade did not run to completion");
        prop_assert!(
            passes <= depth + 2,
            "Strict check phase needed {passes} passes for depth {depth}"
        );
        let val = db.query(&format!("select lvl{depth}(:x);")).unwrap();
        prop_assert_eq!(val[0][0].clone(), Value::Int(1 + seed));
    }
}

// ---------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------

trait ExplainExt {
    fn explain(&mut self, stmt: &str) -> String;
    fn to_owned_err_msg(&self, diags: &[amos_db::Diagnostic]) -> String;
}

impl ExplainExt for Amos {
    fn explain(&mut self, stmt: &str) -> String {
        let results = self.execute(stmt).unwrap();
        for r in results {
            if let amos_db::ExecResult::Text(t) = r {
                return t;
            }
        }
        panic!("statement produced no text output");
    }

    fn to_owned_err_msg(&self, diags: &[amos_db::Diagnostic]) -> String {
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}
