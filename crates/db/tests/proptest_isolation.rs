//! Snapshot-isolation property test: for random multi-session workloads
//! and random interleavings, the concurrently committed history is
//! indistinguishable from a serial execution of the committed
//! transactions in commit order — bit-identical stored state, rule
//! firings (order included), and per-commit check summaries (executed
//! counts, failures, and propagation pass counters) — at every §7.2
//! check level (`Raw`, `Nervous`, `Strict`) and up to 8 sessions.
//!
//! The serial twin runs the *same* engine configuration, so the property
//! isolates exactly the session machinery (snapshot overlays, buffered
//! write-sets, commit-time validation); the companion stress harness in
//! `concurrency_stress.rs` separately cross-validates against a naive
//! monitor.
//!
//! The concurrent run additionally commits through a real group-commit
//! WAL (pipelined durability path), and after the schedule drains the
//! log is replayed into a fresh engine: recovery must reproduce the
//! engine's committed storage state exactly — every acknowledged commit
//! durable, nothing else.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use amos_core::rules::CheckSummary;
use amos_db::{Amos, CheckLevel, ExecResult, SharedEngine, Value, WalConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_ITEMS: usize = 5;

fn item(i: usize) -> String {
    format!(":i{i}")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amos-piso-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn build(level: CheckLevel, wal: Option<&Path>) -> (Amos, Arc<Mutex<Vec<Value>>>) {
    let mut db = Amos::new();
    if let Some(dir) = wal {
        db.attach_wal(dir, WalConfig::grouped(4)).unwrap();
    }
    db.set_check_level(level);
    let noted: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = noted.clone();
    db.register_procedure("note", move |_ctx, args| {
        sink.lock().unwrap().push(args[0].clone());
        Ok(())
    });
    db.execute(
        r#"
        create type item;
        create function quantity(item i) -> integer;
        create function threshold(item i) -> integer;

        create rule low() as
            when for each item i
            where quantity(i) < threshold(i)
            do note(i);
    "#,
    )
    .unwrap();
    let names: Vec<String> = (0..N_ITEMS).map(item).collect();
    db.execute(&format!("create item instances {};", names.join(", ")))
        .unwrap();
    for (i, name) in names.iter().enumerate() {
        db.execute(&format!("set quantity({name}) = {};", 60 + 2 * i as i64))
            .unwrap();
        db.execute(&format!("set threshold({name}) = 55;")).unwrap();
    }
    db.execute("activate low();").unwrap();
    if wal.is_some() {
        // Truncate setup-era records so recovery replays exactly the
        // workload's commits on top of the checkpoint snapshot.
        db.checkpoint().unwrap();
    }
    (db, noted)
}

/// Storage-level contents of the stored functions — recovery replays
/// the WAL below the catalog, so equivalence is checked on the base
/// relations themselves.
fn storage_dump(db: &Amos) -> Vec<BTreeSet<amos_types::Tuple>> {
    ["quantity", "threshold"]
        .iter()
        .map(|f| {
            let rel = db.storage().relation_id(f).unwrap();
            db.storage().relation(rel).scan().cloned().collect()
        })
        .collect()
}

fn gen_txn(rng: &mut StdRng) -> Vec<String> {
    let n = rng.gen_range(1..=3usize);
    (0..n)
        .map(|_| {
            let a = item(rng.gen_range(0..N_ITEMS));
            let b = item(rng.gen_range(0..N_ITEMS));
            match rng.gen_range(0..8u32) {
                0..=2 => format!("set quantity({a}) = {};", rng.gen_range(40..80i64)),
                3..=5 => format!(
                    "set quantity({a}) = quantity({a}) - {};",
                    rng.gen_range(1..10i64)
                ),
                _ => format!(
                    "set quantity({a}) = quantity({b}) + {};",
                    rng.gen_range(0..5i64)
                ),
            }
        })
        .collect()
}

struct History {
    committed: Vec<String>,
    noted: Vec<Value>,
    summaries: Vec<CheckSummary>,
    state: Vec<amos_types::Tuple>,
}

fn commit_summary(results: &[ExecResult]) -> CheckSummary {
    results
        .iter()
        .find_map(|r| match r {
            ExecResult::Committed(s) => Some(s.clone()),
            _ => None,
        })
        .expect("commit summary")
}

fn dump(engine: &Arc<SharedEngine>) -> Vec<amos_types::Tuple> {
    let mut s = engine.session();
    let mut out = s.query("select i, quantity(i) for each item i;").unwrap();
    out.extend(s.query("select i, threshold(i) for each item i;").unwrap());
    out
}

/// Concurrent run: K sessions advanced in a seeded random interleaving,
/// committing through a group-commit WAL in `wal_dir`.
fn concurrent(seed: u64, k: usize, level: CheckLevel, wal_dir: &Path) -> History {
    let (db, noted) = build(level, Some(wal_dir));
    let engine = SharedEngine::new(db);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sessions: Vec<_> = (0..k).map(|_| engine.session()).collect();
    let txns: Vec<Vec<Vec<String>>> = (0..k)
        .map(|_| (0..3).map(|_| gen_txn(&mut rng)).collect())
        .collect();
    let mut at: Vec<(usize, usize)> = vec![(0, 0); k];
    let mut committed = Vec::new();
    let mut summaries = Vec::new();
    let mut steps = 0;
    while at.iter().zip(&txns).any(|(a, t)| a.0 < t.len()) {
        steps += 1;
        assert!(steps < 100_000, "livelock");
        let p = rng.gen_range(0..k);
        if at[p].0 >= txns[p].len() {
            continue;
        }
        let (ti, si) = at[p];
        let stmts = txns[p][ti].clone();
        if si == 0 {
            sessions[p].execute("begin;").unwrap();
            at[p].1 = 1;
        } else if si <= stmts.len() {
            sessions[p].execute(&stmts[si - 1]).unwrap();
            at[p].1 += 1;
        } else {
            match sessions[p].execute("commit;") {
                Ok(results) => {
                    summaries.push(commit_summary(&results));
                    committed.push(stmts.join(" "));
                    at[p] = (ti + 1, 0);
                }
                Err(e) if e.is_retryable() => at[p] = (ti, 0),
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
    drop(sessions);
    let state = dump(&engine);
    let noted = noted.lock().unwrap().clone();

    // Recovery equivalence: replaying the WAL into a fresh engine must
    // reproduce the committed storage state bit-for-bit — every
    // acknowledged commit durable, aborted transactions invisible.
    let final_storage = engine.with_read(storage_dump);
    drop(engine);
    let mut recovered = Amos::new();
    recovered.attach_wal(wal_dir, WalConfig::default()).unwrap();
    assert_eq!(
        storage_dump(&recovered),
        final_storage,
        "WAL replay diverged from the engine's committed state \
         (seed {seed}, k {k}, {level:?})"
    );

    History {
        committed,
        noted,
        summaries,
        state,
    }
}

/// Serial twin: the committed groups replayed in commit order on an
/// identically configured single-session engine.
fn serial(committed: &[String], level: CheckLevel) -> History {
    let (mut db, noted) = build(level, None);
    let mut summaries = Vec::new();
    for group in committed {
        let results = db.execute(&format!("begin; {group} commit;")).unwrap();
        summaries.push(commit_summary(&results));
    }
    let engine = SharedEngine::new(db);
    let state = dump(&engine);
    let noted = noted.lock().unwrap().clone();
    History {
        committed: committed.to_vec(),
        noted,
        summaries,
        state,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn committed_history_is_serializable(seed in 0u64..10_000, k in 1usize..=8) {
        for level in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            let dir = tmpdir(&format!("{seed}-{k}-{level:?}"));
            let conc = concurrent(seed, k, level, &dir);
            let _ = std::fs::remove_dir_all(&dir);
            let twin = serial(&conc.committed, level);
            prop_assert_eq!(
                &conc.state, &twin.state,
                "state diverged at {:?} (seed {}, k {})", level, seed, k
            );
            prop_assert_eq!(
                &conc.noted, &twin.noted,
                "fired order diverged at {:?} (seed {}, k {})", level, seed, k
            );
            prop_assert_eq!(
                &conc.summaries, &twin.summaries,
                "check summaries diverged at {:?} (seed {}, k {})", level, seed, k
            );
        }
    }
}
