//! Crash during concurrent session commits (requires
//! `--features fault-injection`).
//!
//! K sessions commit overlapping transactions through the shared
//! engine's group-commit WAL while an injected [`WalFault`] kills the
//! "disk" mid-stream: the record containing the crash point is torn and
//! every later write is silently dropped, exactly as if the process had
//! died inside a group commit. Recovery must adopt **exactly the
//! committed prefix**: every transaction whose WAL batch landed in full
//! is replayed, the torn batch is rejected whole, and nothing of any
//! later commit — or of a transaction that *aborted* on conflict before
//! the crash — is visible. The expected state for each crash point is
//! the serial replay of the first `batches_replayed` committed groups.

#![cfg(feature = "fault-injection")]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use amos_db::{Amos, DbError, SharedEngine, WalConfig};
use amos_storage::fault::{FaultPlan, WalFault};
use amos_types::Tuple;

const N_ITEMS: usize = 4;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amos-ccrash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn schema(db: &mut Amos) {
    db.execute("create type item; create function quantity(item i) -> integer;")
        .unwrap();
    let names: Vec<String> = (0..N_ITEMS).map(|i| format!(":i{i}")).collect();
    db.execute(&format!("create item instances {};", names.join(", ")))
        .unwrap();
    for (i, name) in names.iter().enumerate() {
        db.execute(&format!("set quantity({name}) = {};", 100 + i as i64))
            .unwrap();
    }
}

/// The deterministic concurrent workload: overlapping transactions on
/// three sessions, committed in a fixed order, with one conflict abort
/// in the middle. Returns the committed statement groups in commit
/// order.
fn drive(engine: &Arc<SharedEngine>) -> Vec<String> {
    let mut s1 = engine.session();
    let mut s2 = engine.session();
    let mut s3 = engine.session();
    let mut committed = Vec::new();
    let mut run = |s: &mut amos_db::Session, group: &str, log: &mut Vec<String>| match s
        .execute(&format!("begin; {group} commit;"))
    {
        Ok(_) => log.push(group.to_string()),
        Err(e) => panic!("unexpected error: {e}"),
    };

    // Overlapped, non-conflicting: both validate against the same base.
    s1.execute("begin; set quantity(:i0) = 1;").unwrap();
    s2.execute("begin; set quantity(:i1) = 2;").unwrap();
    s1.execute("commit;").unwrap();
    committed.push("set quantity(:i0) = 1;".to_string());
    s2.execute("commit;").unwrap();
    committed.push("set quantity(:i1) = 2;".to_string());

    // A conflict: s3 loses to s1 and aborts — its write must never be
    // durable, before or after any crash point.
    s1.execute("begin; set quantity(:i2) = 3;").unwrap();
    s3.execute("begin; set quantity(:i2) = 99;").unwrap();
    s1.execute("commit;").unwrap();
    committed.push("set quantity(:i2) = 3;".to_string());
    match s3.execute("commit;") {
        Err(DbError::TxnConflict { .. }) => {}
        other => panic!("expected conflict, got {other:?}"),
    }

    // A few more serial commits past the crash point.
    run(&mut s2, "set quantity(:i3) = 4;", &mut committed);
    run(&mut s3, "set quantity(:i0) = 5;", &mut committed);
    run(&mut s1, "set quantity(:i1) = 6;", &mut committed);
    committed
}

/// Storage-level contents of `quantity` — recovery replays the WAL into
/// base relations; schema DDL is not durable, so comparisons stay below
/// the catalog.
fn quantities(db: &Amos) -> BTreeSet<Tuple> {
    let rel = db.storage().relation_id("quantity").unwrap();
    db.storage().relation(rel).scan().cloned().collect()
}

/// Serial replay of the first `n` committed groups on a fresh engine.
fn prefix_state(committed: &[String], n: usize) -> BTreeSet<Tuple> {
    let mut db = Amos::new();
    schema(&mut db);
    for group in &committed[..n] {
        db.execute(&format!("begin; {group} commit;")).unwrap();
    }
    quantities(&db)
}

#[test]
fn recovery_adopts_exactly_the_committed_prefix() {
    // Each commit writes one 2-record batch (delete old + insert new
    // quantity tuple), so crash points 1..=13 sweep every boundary:
    // mid-batch, between batches, and past the last commit.
    let mut prefixes_seen = std::collections::BTreeSet::new();
    for crash_after in 1..=13u64 {
        let dir = tmpdir(&format!("p{crash_after}"));
        let mut db = Amos::new();
        db.attach_wal(&dir, WalConfig::default()).unwrap();
        schema(&mut db);
        // Truncate the WAL so recovery's batch count below counts
        // exactly the workload's commits.
        db.checkpoint().unwrap();
        db.set_fault_plan(Arc::new(FaultPlan::wal(WalFault::CrashAfterRecords(
            crash_after,
        ))));
        let engine = SharedEngine::new(db);

        // The in-memory engine survives the "crash" (the disk is dead,
        // the process is not) — every commit still succeeds in memory.
        let committed = drive(&engine);
        assert_eq!(committed.len(), 6);
        drop(engine);

        // Recover from what actually reached the disk.
        let mut db2 = Amos::new();
        let info = db2.attach_wal(&dir, WalConfig::default()).unwrap();
        let adopted = info.batches_replayed as usize;
        assert!(
            adopted <= committed.len(),
            "recovered more batches than commits"
        );
        assert_eq!(
            quantities(&db2),
            prefix_state(&committed, adopted),
            "crash after {crash_after} records: recovered state is not \
             the serial replay of the first {adopted} commits"
        );
        // The conflicted transaction's write (quantity(:i2) = 99) must
        // never be visible.
        assert!(
            !quantities(&db2)
                .iter()
                .any(|t| t[1] == amos_db::Value::Int(99)),
            "aborted transaction leaked into recovery"
        );
        prefixes_seen.insert(adopted);
        let _ = std::fs::remove_dir_all(&dir);
    }
    // The sweep must actually have exercised partial prefixes, not just
    // all-or-nothing.
    assert!(
        prefixes_seen.len() > 2,
        "sweep too coarse: {prefixes_seen:?}"
    );
}
