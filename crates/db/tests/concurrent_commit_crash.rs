//! Crash during concurrent session commits (requires
//! `--features fault-injection`).
//!
//! K sessions commit overlapping transactions through the shared
//! engine's group-commit WAL while an injected [`WalFault`] kills the
//! "disk" mid-stream: the record containing the crash point is torn and
//! every later write is silently dropped, exactly as if the process had
//! died inside a group commit. Recovery must adopt **exactly the
//! committed prefix**: every transaction whose WAL batch landed in full
//! is replayed, the torn batch is rejected whole, and nothing of any
//! later commit — or of a transaction that *aborted* on conflict before
//! the crash — is visible. The expected state for each crash point is
//! the serial replay of the first `batches_replayed` committed groups.

#![cfg(feature = "fault-injection")]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use amos_db::{Amos, DbError, SharedEngine, WalConfig};
use amos_storage::fault::{FaultPlan, WalFault};
use amos_types::Tuple;

const N_ITEMS: usize = 4;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amos-ccrash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn schema(db: &mut Amos) {
    db.execute("create type item; create function quantity(item i) -> integer;")
        .unwrap();
    let names: Vec<String> = (0..N_ITEMS).map(|i| format!(":i{i}")).collect();
    db.execute(&format!("create item instances {};", names.join(", ")))
        .unwrap();
    for (i, name) in names.iter().enumerate() {
        db.execute(&format!("set quantity({name}) = {};", 100 + i as i64))
            .unwrap();
    }
}

/// The deterministic concurrent workload: overlapping transactions on
/// three sessions, committed in a fixed order, with one conflict abort
/// in the middle. Returns the committed statement groups in commit
/// order.
fn drive(engine: &Arc<SharedEngine>) -> Vec<String> {
    let mut s1 = engine.session();
    let mut s2 = engine.session();
    let mut s3 = engine.session();
    let mut committed = Vec::new();
    let run = |s: &mut amos_db::Session, group: &str, log: &mut Vec<String>| match s
        .execute(&format!("begin; {group} commit;"))
    {
        Ok(_) => log.push(group.to_string()),
        Err(e) => panic!("unexpected error: {e}"),
    };

    // Overlapped, non-conflicting: both validate against the same base.
    s1.execute("begin; set quantity(:i0) = 1;").unwrap();
    s2.execute("begin; set quantity(:i1) = 2;").unwrap();
    s1.execute("commit;").unwrap();
    committed.push("set quantity(:i0) = 1;".to_string());
    s2.execute("commit;").unwrap();
    committed.push("set quantity(:i1) = 2;".to_string());

    // A conflict: s3 loses to s1 and aborts — its write must never be
    // durable, before or after any crash point.
    s1.execute("begin; set quantity(:i2) = 3;").unwrap();
    s3.execute("begin; set quantity(:i2) = 99;").unwrap();
    s1.execute("commit;").unwrap();
    committed.push("set quantity(:i2) = 3;".to_string());
    match s3.execute("commit;") {
        Err(DbError::TxnConflict { .. }) => {}
        other => panic!("expected conflict, got {other:?}"),
    }

    // A few more serial commits past the crash point.
    run(&mut s2, "set quantity(:i3) = 4;", &mut committed);
    run(&mut s3, "set quantity(:i0) = 5;", &mut committed);
    run(&mut s1, "set quantity(:i1) = 6;", &mut committed);
    committed
}

/// Storage-level contents of `quantity` — recovery replays the WAL into
/// base relations; schema DDL is not durable, so comparisons stay below
/// the catalog.
fn quantities(db: &Amos) -> BTreeSet<Tuple> {
    let rel = db.storage().relation_id("quantity").unwrap();
    db.storage().relation(rel).scan().cloned().collect()
}

/// Serial replay of the first `n` committed groups on a fresh engine.
fn prefix_state(committed: &[String], n: usize) -> BTreeSet<Tuple> {
    let mut db = Amos::new();
    schema(&mut db);
    for group in &committed[..n] {
        db.execute(&format!("begin; {group} commit;")).unwrap();
    }
    quantities(&db)
}

#[test]
fn recovery_adopts_exactly_the_committed_prefix() {
    // Each commit writes one 2-record batch (delete old + insert new
    // quantity tuple), so crash points 1..=13 sweep every boundary:
    // mid-batch, between batches, and past the last commit.
    let mut prefixes_seen = std::collections::BTreeSet::new();
    for crash_after in 1..=13u64 {
        let dir = tmpdir(&format!("p{crash_after}"));
        let mut db = Amos::new();
        db.attach_wal(&dir, WalConfig::default()).unwrap();
        schema(&mut db);
        // Truncate the WAL so recovery's batch count below counts
        // exactly the workload's commits.
        db.checkpoint().unwrap();
        db.set_fault_plan(Arc::new(FaultPlan::wal(WalFault::CrashAfterRecords(
            crash_after,
        ))));
        let engine = SharedEngine::new(db);

        // The in-memory engine survives the "crash" (the disk is dead,
        // the process is not) — every commit still succeeds in memory.
        let committed = drive(&engine);
        assert_eq!(committed.len(), 6);
        drop(engine);

        // Recover from what actually reached the disk.
        let mut db2 = Amos::new();
        let info = db2.attach_wal(&dir, WalConfig::default()).unwrap();
        let adopted = info.batches_replayed as usize;
        assert!(
            adopted <= committed.len(),
            "recovered more batches than commits"
        );
        assert_eq!(
            quantities(&db2),
            prefix_state(&committed, adopted),
            "crash after {crash_after} records: recovered state is not \
             the serial replay of the first {adopted} commits"
        );
        // The conflicted transaction's write (quantity(:i2) = 99) must
        // never be visible.
        assert!(
            !quantities(&db2)
                .iter()
                .any(|t| t[1] == amos_db::Value::Int(99)),
            "aborted transaction leaked into recovery"
        );
        prefixes_seen.insert(adopted);
        let _ = std::fs::remove_dir_all(&dir);
    }
    // The sweep must actually have exercised partial prefixes, not just
    // all-or-nothing.
    assert!(
        prefixes_seen.len() > 2,
        "sweep too coarse: {prefixes_seen:?}"
    );
}

/// The same sweep through the *coalesced* sync path: `group_commit = 3`
/// with pipelining off buffers batches in memory and writes them three
/// at a time, so the crash lands inside a multi-commit fsync group.
/// The acked-prefix invariant is unchanged — recovery adopts exactly
/// the complete frames on disk, commits whose group never flushed are
/// lost whole, and the torn frame is rejected whole, never partially.
#[test]
fn crash_mid_coalesced_fsync_adopts_whole_groups_only() {
    let mut prefixes_seen = std::collections::BTreeSet::new();
    for crash_after in 1..=13u64 {
        let dir = tmpdir(&format!("g{crash_after}"));
        let mut db = Amos::new();
        db.attach_wal(&dir, WalConfig::grouped(3)).unwrap();
        // Sync path: the driver thread must not block on its own
        // durability, or groups would never grow past one batch.
        db.options.commit_pipeline = false;
        schema(&mut db);
        db.checkpoint().unwrap();
        db.set_fault_plan(Arc::new(FaultPlan::wal(WalFault::CrashAfterRecords(
            crash_after,
        ))));
        let engine = SharedEngine::new(db);

        let committed = drive(&engine);
        assert_eq!(committed.len(), 6);
        drop(engine);

        let mut db2 = Amos::new();
        let info = db2.attach_wal(&dir, WalConfig::default()).unwrap();
        let adopted = info.batches_replayed as usize;
        assert!(
            adopted <= committed.len(),
            "recovered more batches than commits"
        );
        assert_eq!(
            quantities(&db2),
            prefix_state(&committed, adopted),
            "crash after {crash_after} records inside a coalesced group: \
             recovered state is not the serial replay of the first \
             {adopted} commits"
        );
        assert!(
            !quantities(&db2)
                .iter()
                .any(|t| t[1] == amos_db::Value::Int(99)),
            "aborted transaction leaked into recovery"
        );
        prefixes_seen.insert(adopted);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        prefixes_seen.len() > 2,
        "sweep too coarse: {prefixes_seen:?}"
    );
}

/// Crash inside a *pipelined* group commit: three threads commit
/// disjoint keys simultaneously, the leader coalesces their batches
/// into one flush, and the injected fault kills the disk partway
/// through the group's records. The members that reached the disk in
/// full are recovered; the rest are lost whole — no key ever recovers
/// to a torn or foreign value.
#[test]
fn pipelined_group_crash_loses_unwritten_members_whole() {
    let mut adopted_seen = std::collections::BTreeSet::new();
    for crash_after in 1..=7u64 {
        let dir = tmpdir(&format!("t{crash_after}"));
        let mut db = Amos::new();
        db.attach_wal(
            &dir,
            WalConfig {
                group_commit: 3,
                max_delay_us: 2_000_000,
            },
        )
        .unwrap();
        schema(&mut db);
        db.checkpoint().unwrap();
        db.set_fault_plan(Arc::new(FaultPlan::wal(WalFault::CrashAfterRecords(
            crash_after,
        ))));
        let engine = SharedEngine::new(db);

        let barrier = Arc::new(std::sync::Barrier::new(3));
        let mut handles = Vec::new();
        for t in 0..3usize {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut s = engine.session();
                s.execute(&format!("begin; set quantity(:i{t}) = {};", 1000 + t))
                    .unwrap();
                barrier.wait();
                // The in-memory engine survives the dead disk: the
                // commit still succeeds (and its batch may or may not
                // have reached the file).
                s.execute("commit;").unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(engine);

        let mut db2 = Amos::new();
        let info = db2.attach_wal(&dir, WalConfig::default()).unwrap();
        let adopted = info.batches_replayed as usize;
        assert!(adopted <= 3, "recovered more batches than commits");

        // Each key is either untouched (its commit's frame was lost
        // whole) or carries exactly its committed value — and the
        // number of new-valued keys equals the adopted frame count.
        let mut new_values = 0usize;
        for tuple in quantities(&db2) {
            let v = match &tuple[1] {
                amos_db::Value::Int(v) => *v,
                other => panic!("non-integer quantity: {other:?}"),
            };
            let initial = (100..100 + N_ITEMS as i64).contains(&v);
            let committed = (1000..1003).contains(&v);
            assert!(
                initial || committed,
                "crash after {crash_after}: torn or foreign value {v}"
            );
            if committed {
                new_values += 1;
            }
        }
        assert_eq!(
            new_values, adopted,
            "crash after {crash_after}: adopted {adopted} frames but \
             {new_values} keys carry committed values"
        );
        adopted_seen.insert(adopted);
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Record-granular crash points must split at least one group.
    assert!(adopted_seen.len() > 1, "sweep too coarse: {adopted_seen:?}");
}
