//! Session-transaction semantics over a shared engine: snapshot reads,
//! buffered writes, first-committer-wins conflict detection, rule firing
//! at commit, and the forwarding policy for out-of-transaction
//! statements.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use amos_db::{Amos, DbError, ExecResult, SharedEngine, Value, WalConfig};
use amos_types::Tuple;

const SCHEMA: &str = r#"
    create type item;
    create function quantity(item i) -> integer;
    create function threshold(item i) -> integer;
"#;

fn shared() -> Arc<SharedEngine> {
    let mut db = Amos::new();
    db.execute(SCHEMA).unwrap();
    db.execute(
        r#"
        create item instances :a, :b;
        set quantity(:a) = 100;
        set quantity(:b) = 200;
        set threshold(:a) = 10;
        set threshold(:b) = 10;
    "#,
    )
    .unwrap();
    SharedEngine::new(db)
}

fn ints(rows: &[Tuple]) -> Vec<i64> {
    rows.iter().map(|t| t[0].as_int().unwrap()).collect()
}

#[test]
fn snapshot_read_ignores_concurrent_commit() {
    let eng = shared();
    let mut s1 = eng.session();
    let mut s2 = eng.session();

    s1.execute("begin;").unwrap();
    assert_eq!(ints(&s1.query("select quantity(:a);").unwrap()), [100]);

    // s2 commits a change after s1's snapshot.
    s2.execute("begin; set quantity(:a) = 77; commit;").unwrap();
    assert_eq!(ints(&s2.query("select quantity(:a);").unwrap()), [77]);

    // s1 still sees its snapshot…
    assert_eq!(ints(&s1.query("select quantity(:a);").unwrap()), [100]);
    s1.execute("rollback;").unwrap();
    // …and the new state once outside the transaction.
    assert_eq!(ints(&s1.query("select quantity(:a);").unwrap()), [77]);
}

#[test]
fn own_writes_visible_before_commit_and_invisible_to_others() {
    let eng = shared();
    let mut s1 = eng.session();
    let mut s2 = eng.session();

    s1.execute("begin; set quantity(:a) = 5;").unwrap();
    assert_eq!(ints(&s1.query("select quantity(:a);").unwrap()), [5]);
    // Buffered only: s2 (non-transactional read) sees the old value.
    assert_eq!(ints(&s2.query("select quantity(:a);").unwrap()), [100]);

    s1.execute("commit;").unwrap();
    assert_eq!(ints(&s2.query("select quantity(:a);").unwrap()), [5]);
}

#[test]
fn write_write_conflict_first_committer_wins() {
    let eng = shared();
    let mut s1 = eng.session();
    let mut s2 = eng.session();

    s1.execute("begin;").unwrap();
    s2.execute("begin;").unwrap();
    s1.execute("set quantity(:a) = 1;").unwrap();
    s2.execute("set quantity(:a) = 2;").unwrap();

    // First committer wins.
    s1.execute("commit;").unwrap();
    let err = s2.execute("commit;").unwrap_err();
    assert!(matches!(err, DbError::TxnConflict { .. }), "got {err}");
    assert!(err.is_retryable());
    assert!(err.to_string().contains("quantity"));
    assert!(!s2.in_transaction(), "conflict must abort the transaction");

    // The loser's write never reached shared state.
    assert_eq!(ints(&s2.query("select quantity(:a);").unwrap()), [1]);

    // A retry of the same statements succeeds.
    s2.execute("begin; set quantity(:a) = 2; commit;").unwrap();
    assert_eq!(ints(&s2.query("select quantity(:a);").unwrap()), [2]);
}

#[test]
fn disjoint_keys_do_not_conflict() {
    let eng = shared();
    let mut s1 = eng.session();
    let mut s2 = eng.session();

    s1.execute("begin;").unwrap();
    s2.execute("begin;").unwrap();
    s1.execute("set quantity(:a) = 1;").unwrap();
    s2.execute("set quantity(:b) = 2;").unwrap();
    s1.execute("commit;").unwrap();
    // Same relation, different conflict keys: no conflict.
    s2.execute("commit;").unwrap();
    assert_eq!(ints(&s2.query("select quantity(:a);").unwrap()), [1]);
    assert_eq!(ints(&s2.query("select quantity(:b);").unwrap()), [2]);
}

#[test]
fn read_write_conflict_on_probed_key() {
    let eng = shared();
    let mut s1 = eng.session();
    let mut s2 = eng.session();

    s1.execute("begin;").unwrap();
    s2.execute("begin;").unwrap();
    // s1 reads quantity(:a) (key probe) and writes threshold(:a).
    s1.execute("set threshold(:a) = quantity(:a) + 1;").unwrap();
    // s2 writes the key s1 read.
    s2.execute("set quantity(:a) = 0; commit;").unwrap();
    let err = s1.execute("commit;").unwrap_err();
    assert!(matches!(err, DbError::TxnConflict { .. }), "got {err}");
}

#[test]
fn read_only_transaction_never_aborts() {
    let eng = shared();
    let mut s1 = eng.session();
    let mut s2 = eng.session();

    s1.execute("begin;").unwrap();
    // Scan-level read (whole relation) of everything.
    assert_eq!(ints(&s1.query("select quantity(:a);").unwrap()), [100]);
    s2.execute("begin; set quantity(:a) = 1; commit;").unwrap();
    // A read-only transaction serializes at its snapshot: commit is
    // always clean, even though its reads were overwritten.
    let results = s1.execute("commit;").unwrap();
    assert!(matches!(results[0], ExecResult::Committed(_)));
}

#[test]
fn select_scan_conflicts_with_any_write_to_relation() {
    let eng = shared();
    let mut s1 = eng.session();
    let mut s2 = eng.session();

    s1.execute("begin;").unwrap();
    // A select records a whole-relation read on quantity's backing rel.
    s1.query("select quantity(i) for each item i;").unwrap();
    s1.execute("set threshold(:b) = 42;").unwrap();
    // Concurrent write to a *different* key of the scanned relation.
    s2.execute("begin; set quantity(:b) = 9; commit;").unwrap();
    let err = s1.execute("commit;").unwrap_err();
    assert!(matches!(err, DbError::TxnConflict { .. }), "got {err}");
}

#[test]
fn add_remove_buffer_and_cancel() {
    let mut db = Amos::new();
    db.execute("create type t; create function tags(t x) -> integer;")
        .unwrap();
    db.execute("create t instances :x; add tags(:x) = 1;")
        .unwrap();
    let eng = SharedEngine::new(db);
    let mut s = eng.session();

    s.execute("begin; add tags(:x) = 2; add tags(:x) = 3; remove tags(:x) = 1;")
        .unwrap();
    assert_eq!(ints(&s.query("select tags(:x);").unwrap()), [2, 3]);
    // Δ-fold: removing a buffered insert cancels it.
    s.execute("remove tags(:x) = 3;").unwrap();
    s.execute("commit;").unwrap();
    let mut got = ints(&s.query("select tags(:x);").unwrap());
    got.sort();
    assert_eq!(got, [2]);
}

#[test]
fn rules_fire_on_session_commit() {
    let mut db = Amos::new();
    db.execute(SCHEMA).unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let count = fired.clone();
    db.register_procedure("note", move |_ctx, _args| {
        count.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    db.execute(
        r#"
        create rule low() as
            when for each item i
            where quantity(i) < threshold(i)
            do note(i);
        create item instances :a;
        set quantity(:a) = 100;
        set threshold(:a) = 10;
        activate low();
    "#,
    )
    .unwrap();
    let eng = SharedEngine::new(db);
    let mut s = eng.session();

    let results = s.execute("begin; set quantity(:a) = 5; commit;").unwrap();
    // The deferred check phase ran at the session commit and fired the
    // rule exactly once.
    assert_eq!(fired.load(Ordering::SeqCst), 1);
    let committed = results
        .iter()
        .find_map(|r| match r {
            ExecResult::Committed(s) => Some(s),
            _ => None,
        })
        .expect("commit summary");
    assert!(committed
        .executed
        .iter()
        .any(|(name, n)| name == "low" && *n == 1));
}

#[test]
fn statements_refused_inside_transaction() {
    let eng = shared();
    let mut s = eng.session();
    s.execute("begin;").unwrap();
    for stmt in [
        "create type gadget;",
        "create function f(item i) -> integer;",
    ] {
        let err = s.execute(stmt).unwrap_err();
        assert!(
            err.to_string().contains("inside a session transaction"),
            "{stmt}: {err}"
        );
    }
    // The transaction survives refused statements.
    assert!(s.in_transaction());
    s.execute("rollback;").unwrap();
}

#[test]
fn begin_commit_rollback_errors() {
    let eng = shared();
    let mut s = eng.session();
    assert!(s.execute("commit;").is_err());
    assert!(s.execute("rollback;").is_err());
    s.execute("begin;").unwrap();
    assert!(s.execute("begin;").is_err());
    s.execute("rollback;").unwrap();
}

#[test]
fn dropped_session_releases_pin() {
    let eng = shared();
    {
        let mut s = eng.session();
        s.execute("begin; set quantity(:a) = 1;").unwrap();
        // dropped here mid-transaction
    }
    // Pin released: version GC may run; a new txn sees current state and
    // the dropped session's buffered write is gone.
    let mut s = eng.session();
    assert_eq!(ints(&s.query("select quantity(:a);").unwrap()), [100]);
    s.execute("begin; set quantity(:a) = 3; commit;").unwrap();
    assert_eq!(ints(&s.query("select quantity(:a);").unwrap()), [3]);
}

#[test]
fn forwarded_create_instances_publishes_version() {
    let eng = shared();
    let mut s1 = eng.session();
    let mut s2 = eng.session();

    s1.execute("begin;").unwrap();
    assert_eq!(ints(&s1.query("select quantity(:a);").unwrap()), [100]);

    // Non-transactional DDL-ish mutation on another session: must be
    // invisible to s1's pinned snapshot (it is wrapped in an engine
    // transaction, publishing a version that the overlay undoes).
    s2.execute("create item instances :c; set quantity(:c) = 7;")
        .unwrap();
    let rows = s1.query("select quantity(i) for each item i;").unwrap();
    assert_eq!(ints(&rows), [100, 200]);
    s1.execute("rollback;").unwrap();
}

#[test]
fn concurrent_threads_hot_key_all_increments_survive() {
    let eng = shared();
    let threads = 4;
    let per = 8;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let eng = Arc::clone(&eng);
        handles.push(std::thread::spawn(move || {
            let mut s = eng.session();
            let mut aborts = 0usize;
            for _ in 0..per {
                loop {
                    let r = s.execute("begin; set quantity(:a) = quantity(:a) - 1; commit;");
                    match r {
                        Ok(_) => break,
                        Err(e) if e.is_retryable() => aborts += 1,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
            aborts
        }));
    }
    let total_aborts: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let mut s = eng.session();
    let rows = s.query("select quantity(:a);").unwrap();
    // Every committed decrement is preserved: lost updates are impossible
    // under first-committer-wins, so the counter is exact.
    assert_eq!(ints(&rows), [100 - (threads * per) as i64]);
    // (aborts may be 0 on a fast machine; just exercise the counter.)
    let _ = total_aborts;
}

/// Three sessions commit simultaneously through the pipelined commit
/// path: the critical sections serialize (validate/apply/check under
/// the write lock), but all three durability waits coalesce into a
/// single group — one fsync covers the whole group, and the two
/// non-leader waiters are acknowledged without ever touching the file.
#[test]
fn pipelined_group_commit_coalesces_fsyncs() {
    let dir = std::env::temp_dir().join(format!("amos-sess-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut db = Amos::new();
    // A generous leader delay so the test doesn't depend on scheduler
    // timing: the first committer parks until the other two arrive.
    db.attach_wal(
        &dir,
        WalConfig {
            group_commit: 3,
            max_delay_us: 2_000_000,
        },
    )
    .unwrap();
    db.execute(SCHEMA).unwrap();
    db.execute(
        r#"
        create item instances :a, :b, :c;
        set quantity(:a) = 100;
        set quantity(:b) = 200;
        set quantity(:c) = 300;
    "#,
    )
    .unwrap();
    // Flush + truncate so the deltas below count only the workload.
    db.checkpoint().unwrap();
    let eng = SharedEngine::new(db);

    let before = eng.commit_metrics();
    let barrier = Arc::new(std::sync::Barrier::new(3));
    let mut handles = Vec::new();
    for key in ["a", "b", "c"] {
        let eng = Arc::clone(&eng);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut s = eng.session();
            s.execute(&format!("begin; set quantity(:{key}) = 7;"))
                .unwrap();
            barrier.wait();
            s.execute("commit;").unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let after = eng.commit_metrics();

    assert_eq!(after.commits - before.commits, 3);
    assert!(after.lock_hold_ns > before.lock_hold_ns);
    let (b, a) = (before.wal.unwrap(), after.wal.unwrap());
    assert_eq!(a.batches - b.batches, 3);
    assert_eq!(
        a.fsyncs - b.fsyncs,
        1,
        "three pipelined commits must share one fsync"
    );
    assert_eq!(
        a.waiters_woken - b.waiters_woken,
        2,
        "two followers must be acknowledged by the leader's flush"
    );
    assert!(a.max_group >= 3, "group never formed: {a:?}");

    // Acked ⇒ durable: recovery sees all three writes.
    drop(eng);
    let mut db2 = Amos::new();
    db2.attach_wal(&dir, WalConfig::default()).unwrap();
    let rel = db2.storage().relation_id("quantity").unwrap();
    let sevens = db2
        .storage()
        .relation(rel)
        .scan()
        .filter(|t| t[1] == Value::Int(7))
        .count();
    assert_eq!(sevens, 3, "an acknowledged commit was not durable");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn values_roundtrip_through_snapshot() {
    let mut db = Amos::new();
    db.execute("create type t; create function name(t x) -> charstring;")
        .unwrap();
    db.execute("create t instances :x; set name(:x) = \"before\";")
        .unwrap();
    let eng = SharedEngine::new(db);
    let mut s1 = eng.session();
    let mut s2 = eng.session();
    s1.execute("begin;").unwrap();
    s2.execute("begin; set name(:x) = \"after\"; commit;")
        .unwrap();
    let rows = s1.query("select name(:x);").unwrap();
    assert_eq!(rows[0][0], Value::Str("before".into()));
    s1.execute("rollback;").unwrap();
    let rows = s1.query("select name(:x);").unwrap();
    assert_eq!(rows[0][0], Value::Str("after".into()));
}
