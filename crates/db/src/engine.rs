//! The AMOS engine: statement execution, scalar evaluation, rule
//! wiring, and transaction/check-phase orchestration.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use amos_amosql::ast::{Expr, ProcStmt, Select, Statement, TypedVar};
use amos_amosql::compiler::{compile_predicate_at, compile_select, compile_select_at, QueryEnv};
use amos_amosql::parser::parse_spanned;
use amos_amosql::ParseError;
use amos_core::aggregate::{AggFn, AggregateView};
use amos_core::maintained::{MaintainedAggregate, SourceDeltas, UserView};
use amos_core::propagate::ExecStrategy;
use amos_core::rules::{
    ActionFn, CheckSummary, MonitorMode, RuleManager, RuleSemantics, StrategyPin,
};
use amos_lint::{Diagnostic, LintConfig, RuleFacts, RuleWrite, Span};
use amos_objectlog::catalog::{Catalog, ForeignFn, PredId, PredKind};
use amos_objectlog::eval::{DeltaMap, EvalConfig, EvalContext};
use amos_objectlog::expand::{expand_clause, ExpandOptions};
use amos_objectlog::plan::compile_clause;
use amos_storage::{
    CommitWaiter, ReadOverlay, RecoveryInfo, RelId, Savepoint, StateEpoch, Storage, WalConfig,
    WalMetrics,
};
use amos_types::{Tuple, TypeRegistry, Value};

use crate::error::DbError;

/// How rule conditions are prepared at rule-creation time, which shapes
/// the propagation network (§4.3 vs §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetworkPrep {
    /// Expand derived sub-functions fully — the AMOS default, producing
    /// the flat network of fig. 2.
    #[default]
    Flat,
    /// Keep derived sub-functions as intermediate nodes — the bushy,
    /// node-sharing network of fig. 1 / §7.1.
    Bushy,
}

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Condition preparation style.
    pub network_prep: NetworkPrep,
    /// Default rule semantics for `create rule`.
    pub default_semantics: RuleSemantics,
    /// Immediate rule processing (§1): run the rule check after every
    /// update statement instead of deferring to commit. The calculus is
    /// identical; only the check-phase timing changes.
    pub immediate: bool,
    /// Wave-front execution strategy for propagation passes (parallel
    /// by default; serial retained for the ablation benches; sharded
    /// runs each level as a hash-partitioned exchange over `workers`
    /// shard-owning threads).
    pub propagation: ExecStrategy,
    /// Per-pass tabling of derived-call results (on by default; the
    /// `--no-tabling` bench flag disables it for ablation runs).
    pub tabling: bool,
    /// Statistics-driven adaptive differential planning (on by default;
    /// the `--static-plans` bench flag pins activation-time plans).
    pub adaptive: bool,
    /// Per-code lint severities. `activate` refuses a rule whose lint
    /// findings include a deny-level diagnostic (L001/L002 by default);
    /// warn-level findings surface in `explain rule` and the `lint`
    /// CLI command.
    pub lint_level: LintConfig,
    /// Commit pipelining (on by default): sessions release the engine
    /// write lock before the WAL fsync and block on a
    /// [`amos_storage::CommitWaiter`] instead, so independent commits
    /// share one group fsync. Disable (`--no-pipeline` on the server)
    /// to restore fsync-under-lock commits.
    pub commit_pipeline: bool,
    /// Abstract-interpretation pruning (on by default): differentials
    /// whose differenced clause is provably empty under the interval /
    /// constant analysis (L007) are dropped from the network, and the
    /// inferred column bounds feed the adaptive planner as static NDV
    /// floors. The conformance verifier mirrors the same entitlements,
    /// so pruned networks still verify.
    pub semantic_pruning: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            network_prep: NetworkPrep::default(),
            default_semantics: RuleSemantics::default(),
            immediate: false,
            propagation: ExecStrategy::default(),
            tabling: true,
            adaptive: true,
            lint_level: LintConfig::default(),
            commit_pipeline: true,
            semantic_pruning: true,
        }
    }
}

/// Context handed to registered procedures (rule actions' side-effect
/// vocabulary — the paper's `order(...)`).
pub struct ProcCtx<'a> {
    /// Mutable database access.
    pub storage: &'a mut Storage,
    /// The catalog.
    pub catalog: &'a Catalog,
}

/// A registered procedure.
pub type ProcedureFn = Arc<dyn Fn(&mut ProcCtx<'_>, &[Value]) -> Result<(), String> + Send + Sync>;

type Procedures = Arc<Mutex<HashMap<String, ProcedureFn>>>;

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub enum ExecResult {
    /// DDL / update / activation succeeded.
    Ok,
    /// Query result rows (sorted).
    Rows(Vec<Tuple>),
    /// Commit ran the check phase.
    Committed(CheckSummary),
    /// `explain` output.
    Text(String),
}

struct ViewReg {
    view: Box<dyn UserView>,
    backing: RelId,
    sources: Vec<RelId>,
}

/// Lint-relevant facts about a defined rule, recorded at `create rule`
/// time — the action AST is consumed by the action closure, so the
/// stored-function writes it performs are extracted up front.
struct RuleLintInfo {
    name: String,
    condition: PredId,
    writes: Vec<RuleWrite>,
    span: Option<Span>,
}

/// The embeddable active DBMS.
pub struct Amos {
    storage: Storage,
    catalog: Catalog,
    types: TypeRegistry,
    rules: RuleManager,
    extents: HashMap<String, PredId>,
    iface: HashMap<String, Value>,
    procedures: Procedures,
    views: Vec<ViewReg>,
    rule_lint: Vec<RuleLintInfo>,
    fn_spans: HashMap<String, Span>,
    /// Options (network style, default semantics).
    pub options: EngineOptions,
}

impl Default for Amos {
    fn default() -> Self {
        Amos::new()
    }
}

impl Amos {
    /// A fresh database with default options.
    pub fn new() -> Self {
        Amos::with_options(EngineOptions::default())
    }

    /// A fresh database with the given options.
    pub fn with_options(options: EngineOptions) -> Self {
        let mut rules = RuleManager::new();
        rules.exec = options.propagation;
        if !options.tabling {
            rules.set_eval_config(EvalConfig {
                tabling: false,
                ..EvalConfig::default()
            });
        }
        if !options.adaptive {
            rules.set_adaptive(false);
        }
        rules.semantic_pruning = options.semantic_pruning;
        Amos {
            storage: Storage::new(),
            catalog: Catalog::new(),
            types: TypeRegistry::new(),
            rules,
            extents: HashMap::new(),
            iface: HashMap::new(),
            procedures: Arc::new(Mutex::new(HashMap::new())),
            views: Vec::new(),
            rule_lint: Vec::new(),
            fn_spans: HashMap::new(),
            options,
        }
    }

    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Execute an AMOSQL script; returns one result per statement.
    pub fn execute(&mut self, src: &str) -> Result<Vec<ExecResult>, DbError> {
        let stmts = parse_spanned(src)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.exec_statement(stmt.node, Some((stmt.line, stmt.col)))?);
        }
        Ok(out)
    }

    /// Execute a single `select` and return its rows (sorted).
    ///
    /// ```
    /// use amos_db::{Amos, Value};
    /// let mut db = Amos::new();
    /// db.execute("create type t; create function f(t x) -> integer;").unwrap();
    /// db.execute("create t instances :a; set f(:a) = 41;").unwrap();
    /// let rows = db.query("select f(:a) + 1;").unwrap();
    /// assert_eq!(rows[0][0], Value::Int(42));
    /// ```
    pub fn query(&mut self, src: &str) -> Result<Vec<Tuple>, DbError> {
        let results = self.execute(src)?;
        for r in results {
            if let ExecResult::Rows(rows) = r {
                return Ok(rows);
            }
        }
        Err(DbError::Other("statement was not a query".to_string()))
    }

    /// Register a procedure callable from rule actions and scripts.
    ///
    /// ```
    /// use amos_db::Amos;
    /// use std::sync::{Arc, Mutex};
    /// let mut db = Amos::new();
    /// let hits = Arc::new(Mutex::new(0));
    /// let h = hits.clone();
    /// db.register_procedure("ping", move |_ctx, _args| {
    ///     *h.lock().unwrap() += 1;
    ///     Ok(())
    /// });
    /// db.execute("ping(1);").unwrap();
    /// assert_eq!(*hits.lock().unwrap(), 1);
    /// ```
    pub fn register_procedure(
        &mut self,
        name: &str,
        f: impl Fn(&mut ProcCtx<'_>, &[Value]) -> Result<(), String> + Send + Sync + 'static,
    ) {
        self.procedures
            .lock()
            .expect("procedures lock")
            .insert(name.to_string(), Arc::new(f));
    }

    /// Register a foreign function (a computed predicate, the paper's
    /// Lisp/C foreign functions — here a Rust closure). `arg_types` and
    /// `result_type` are type names.
    pub fn register_foreign(
        &mut self,
        name: &str,
        arg_types: &[&str],
        result_type: &str,
        f: ForeignFn,
    ) -> Result<(), DbError> {
        let mut signature = Vec::with_capacity(arg_types.len() + 1);
        for t in arg_types {
            signature.push(self.types.lookup(t)?);
        }
        signature.push(self.types.lookup(result_type)?);
        self.catalog.define_foreign(name, signature, f)?;
        Ok(())
    }

    /// Register an incrementally maintained aggregate
    /// `name(group…) -> value` = `agg(value_col of source_fn)` grouped
    /// by `group_cols` (§8 extension). The aggregate becomes an ordinary
    /// stored function: rules can monitor conditions over it and the
    /// engine maintains it at every commit.
    pub fn register_aggregate(
        &mut self,
        name: &str,
        source_fn: &str,
        group_cols: Vec<usize>,
        value_col: usize,
        agg: AggFn,
    ) -> Result<(), DbError> {
        let source = self.catalog.lookup(source_fn)?;
        let source_rel = self
            .catalog
            .def(source)
            .stored_rel()
            .ok_or_else(|| DbError::Other(format!("`{source_fn}` is not a stored function")))?;
        let arity = group_cols.len() + 1;
        let view = MaintainedAggregate::new(
            AggregateView::new(source, group_cols.clone(), value_col, agg),
            source_rel,
        );
        self.register_view(name, arity, group_cols.len(), Box::new(view))
    }

    /// Register an incrementally maintained view with a **user-defined
    /// differential** (§8 future work): `view` declares the stored
    /// relations it reads and computes its own Δ-set from theirs at
    /// every commit. The result is materialized into an ordinary stored
    /// function named `name`, so rule conditions can monitor it.
    ///
    /// This is the hook for "incremental evaluation of foreign functions
    /// through user defined differentials" — see
    /// [`amos_core::maintained::ClosureView`] for the closure-based
    /// entry point.
    pub fn register_view(
        &mut self,
        name: &str,
        arity: usize,
        key_arity: usize,
        mut view: Box<dyn UserView>,
    ) -> Result<(), DbError> {
        let backing = self.storage.create_relation(name, arity)?;
        let object = self.types.object();
        self.catalog
            .define_stored(name, vec![object; arity], backing, key_arity)?;
        for t in view.initialize(&self.catalog, &self.storage)? {
            if t.arity() != arity {
                return Err(DbError::Other(format!(
                    "view `{name}` produced a tuple of arity {}, declared {arity}",
                    t.arity()
                )));
            }
            self.storage.insert(backing, t)?;
        }
        let sources = view.sources();
        for &rel in &sources {
            self.rules.pinned.insert(rel);
            self.storage.monitor(rel);
        }
        self.views.push(ViewReg {
            view,
            backing,
            sources,
        });
        Ok(())
    }

    /// Switch the condition-monitoring implementation (incremental /
    /// naive / hybrid). Takes effect from the next activation or check.
    pub fn set_monitor_mode(&mut self, mode: MonitorMode) {
        self.rules.mode = mode;
    }

    /// Switch the wave-front execution strategy (parallel / serial /
    /// sharded). Takes effect from the next propagation pass.
    pub fn set_propagation_strategy(&mut self, strategy: ExecStrategy) {
        self.options.propagation = strategy;
        self.rules.exec = strategy;
    }

    /// Switch the §7.2 correction-check level used by propagation passes
    /// (raw / nervous / strict — ablation knob). Takes effect from the
    /// next pass.
    pub fn set_check_level(&mut self, level: amos_core::CheckLevel) {
        self.rules.check = level;
    }

    /// Enable/disable per-pass tabling of derived-call results (the
    /// `--no-tabling` ablation). Takes effect from the next pass.
    pub fn set_tabling(&mut self, on: bool) {
        self.options.tabling = on;
        self.rules.set_eval_config(EvalConfig {
            tabling: on,
            ..self.rules.eval_config()
        });
    }

    /// Enable/disable statistics-driven adaptive differential planning
    /// (the `--static-plans` ablation). Takes effect from the next pass;
    /// disabling drops the plan cache.
    pub fn set_adaptive_planning(&mut self, on: bool) {
        self.options.adaptive = on;
        self.rules.set_adaptive(on);
    }

    /// Instrumentation of the most recent propagation pass, if any.
    pub fn last_pass_metrics(&self) -> Option<&amos_metrics::PassMetrics> {
        self.rules.last_metrics()
    }

    /// The session value of an interface variable, if bound.
    pub fn iface_value(&self, name: &str) -> Option<&Value> {
        self.iface.get(name)
    }

    /// Bind an interface variable programmatically.
    pub fn bind_iface(&mut self, name: &str, v: Value) {
        self.iface.insert(name.to_string(), v);
    }

    /// Read access to the storage layer (benchmarks, tests).
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Mutable access to the storage layer (benchmarks drive updates
    /// directly to exclude parsing from timings).
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Read access to the rule manager.
    pub fn rules(&self) -> &RuleManager {
        &self.rules
    }

    /// Mutable access to the rule manager (ablation benches flip check
    /// levels and scopes).
    pub fn rules_mut(&mut self) -> &mut RuleManager {
        &mut self.rules
    }

    /// Mutable access to the catalog (tests construct predicate graphs —
    /// e.g. mutual recursion through negation — that AMOSQL cannot
    /// express directly).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Declare a stored function append-only (or clear the mark): its
    /// relation promises to never see deletes, so the engine prunes the
    /// always-empty Δ₋ differentials from the propagation network at
    /// the next activation. Advisory — deletes are not rejected, but a
    /// workload that does delete voids the pruning's soundness.
    pub fn set_append_only(&mut self, func: &str, on: bool) -> Result<(), DbError> {
        let pred = self
            .catalog
            .lookup(func)
            .map_err(|_| DbError::Other(format!("unknown function `{func}`")))?;
        let rel = self
            .catalog
            .def(pred)
            .stored_rel()
            .ok_or_else(|| DbError::Other(format!("`{func}` is not a stored function")))?;
        self.storage.set_append_only(rel, on);
        Ok(())
    }

    /// Run every lint pass over the whole catalog and rule set.
    ///
    /// L001 findings do not appear here: unsafe clauses are rejected at
    /// definition time, so nothing unsafe can reach the catalog — the
    /// [`crate::lint_script`] driver reports them pre-definition.
    pub fn lint_all(&self) -> Vec<Diagnostic> {
        let config = &self.options.lint_level;
        let mut out = Vec::new();
        out.extend(amos_lint::check_stratification(
            config,
            &self.catalog,
            None,
            &|p| self.span_of_pred(p),
        ));
        out.extend(amos_lint::check_triggering(
            config,
            &self.catalog,
            &self.rule_facts(),
        ));
        let conds = self.rule_conditions();
        out.extend(amos_lint::check_dead_differentials(
            config,
            &self.catalog,
            &conds,
            &|rel| self.storage.is_append_only(rel),
            &|r| self.span_of_rule(r),
        ));
        out.extend(amos_lint::check_conditions(
            config,
            &self.catalog,
            &conds,
            &|r| self.span_of_rule(r),
        ));
        out.extend(amos_lint::absint::check_types(
            config,
            &self.catalog,
            &self.types,
            None,
            &|p| self.span_of_pred(p),
        ));
        let analysis = amos_lint::absint::analyze(&self.catalog);
        out.extend(amos_lint::absint::check_provably_empty(
            config,
            &self.catalog,
            &analysis,
            &conds,
            &|r| self.span_of_rule(r),
        ));
        out.extend(amos_lint::absint::check_subsumption(
            config,
            &self.catalog,
            &analysis,
            &conds,
            &|r| self.span_of_rule(r),
        ));
        out.extend(amos_lint::absint::check_const_fold(
            config,
            &self.catalog,
            &analysis,
            &conds,
            &|r| self.span_of_rule(r),
        ));
        out
    }

    /// Run the lint passes scoped to one rule: stratification restricted
    /// to predicates reachable from its condition, triggering findings
    /// that involve the rule, and its own dead-differential and
    /// condition findings. This is the set `activate` gates on.
    pub fn lint_rule(&self, name: &str) -> Result<Vec<Diagnostic>, DbError> {
        let info = self
            .rule_lint
            .iter()
            .find(|r| r.name == name)
            .ok_or_else(|| DbError::Other(format!("unknown rule `{name}`")))?;
        let config = &self.options.lint_level;
        let mut out = Vec::new();
        out.extend(amos_lint::check_stratification(
            config,
            &self.catalog,
            Some(&[info.condition]),
            &|p| self.span_of_pred(p),
        ));
        // Triggering cycles span rules: keep findings attributed to this
        // rule or whose cycle rendering names it.
        let mentions = |msg: &str| {
            msg.split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .any(|tok| tok == name)
        };
        out.extend(
            amos_lint::check_triggering(config, &self.catalog, &self.rule_facts())
                .into_iter()
                .filter(|d| d.rule.as_deref() == Some(name) || mentions(&d.message)),
        );
        let own = vec![(info.name.clone(), info.condition)];
        out.extend(amos_lint::check_dead_differentials(
            config,
            &self.catalog,
            &own,
            &|rel| self.storage.is_append_only(rel),
            &|_| info.span,
        ));
        out.extend(
            amos_lint::check_conditions(config, &self.catalog, &self.rule_conditions(), &|r| {
                self.span_of_rule(r)
            })
            .into_iter()
            .filter(|d| d.rule.as_deref() == Some(name)),
        );
        out.extend(amos_lint::absint::check_types(
            config,
            &self.catalog,
            &self.types,
            Some(&[info.condition]),
            &|p| self.span_of_pred(p),
        ));
        // The abstract-interpretation condition passes run over the
        // full rule set (L008 compares conditions pairwise) and are
        // filtered down to findings anchored on this rule.
        let analysis = amos_lint::absint::analyze(&self.catalog);
        let conds = self.rule_conditions();
        let spans = |r: &str| self.span_of_rule(r);
        out.extend(
            amos_lint::absint::check_provably_empty(
                config,
                &self.catalog,
                &analysis,
                &conds,
                &spans,
            )
            .into_iter()
            .chain(amos_lint::absint::check_subsumption(
                config,
                &self.catalog,
                &analysis,
                &conds,
                &spans,
            ))
            .chain(amos_lint::absint::check_const_fold(
                config,
                &self.catalog,
                &analysis,
                &conds,
                &spans,
            ))
            .filter(|d| d.rule.as_deref() == Some(name)),
        );
        Ok(out)
    }

    fn rule_facts(&self) -> Vec<RuleFacts> {
        self.rule_lint
            .iter()
            .map(|r| RuleFacts {
                name: r.name.clone(),
                span: r.span,
                influents: self.catalog.stored_influents(r.condition),
                writes: r.writes.clone(),
            })
            .collect()
    }

    fn rule_conditions(&self) -> Vec<(String, PredId)> {
        self.rule_lint
            .iter()
            .map(|r| (r.name.clone(), r.condition))
            .collect()
    }

    fn span_of_rule(&self, name: &str) -> Option<Span> {
        self.rule_lint
            .iter()
            .find(|r| r.name == name)
            .and_then(|r| r.span)
    }

    fn span_of_pred(&self, p: PredId) -> Option<Span> {
        if let Some(r) = self.rule_lint.iter().find(|r| r.condition == p) {
            return r.span;
        }
        self.fn_spans.get(self.catalog.name(p)).copied()
    }

    /// Evaluate `f(args…)` and return its (single, smallest if
    /// multi-valued) value.
    pub fn call_function(&self, name: &str, args: &[Value]) -> Result<Value, DbError> {
        let pred = self
            .catalog
            .lookup(name)
            .map_err(|_| DbError::Other(format!("unknown function `{name}`")))?;
        let arity = self.catalog.def(pred).arity;
        if args.len() + 1 != arity {
            return Err(DbError::Other(format!(
                "function `{name}` takes {} arguments, {} supplied",
                arity - 1,
                args.len()
            )));
        }
        let mut pattern: Vec<Option<Value>> = args.iter().cloned().map(Some).collect();
        pattern.push(None);
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&self.storage, &self.catalog, &deltas);
        let results = ctx.eval_pred(pred, &pattern, StateEpoch::New)?;
        let mut vals: Vec<Value> = results.into_iter().map(|t| t[arity - 1].clone()).collect();
        vals.sort();
        vals.into_iter().next().ok_or_else(|| {
            DbError::Other(format!("no value stored for `{name}` at these arguments"))
        })
    }

    // ------------------------------------------------------------------
    // Statement execution
    // ------------------------------------------------------------------

    /// The global interface-variable bindings (`:name` → value).
    /// Sessions snapshot these for scalar evaluation; `create
    /// instances` forwarded from a session writes through them.
    pub(crate) fn iface_map(&self) -> &HashMap<String, Value> {
        &self.iface
    }

    pub(crate) fn query_env(&self) -> QueryEnv<'_> {
        QueryEnv {
            catalog: &self.catalog,
            types: &self.types,
            extents: &self.extents,
            iface: &self.iface,
        }
    }

    pub(crate) fn exec_statement(
        &mut self,
        stmt: Statement,
        at: Option<(usize, usize)>,
    ) -> Result<ExecResult, DbError> {
        match stmt {
            Statement::CreateType { name, under } => {
                self.types.create(&name, under.as_deref())?;
                let rel = self.storage.create_relation(format!("{name}_extent"), 1)?;
                let object = self.types.object();
                let pred =
                    self.catalog
                        .define_stored(&format!("{name}_extent"), vec![object], rel, 1)?;
                self.extents.insert(name, pred);
                Ok(ExecResult::Ok)
            }
            Statement::CreateFunction {
                name,
                params,
                results,
                append_only,
                body,
            } => {
                self.create_function(&name, &params, &results, append_only, body, at)?;
                if let Some((line, col)) = at {
                    self.fn_spans.insert(name, Span::new(line, col));
                }
                Ok(ExecResult::Ok)
            }
            Statement::CreateRule {
                name,
                params,
                events,
                condition,
                action,
                priority,
            } => {
                self.create_rule(&name, &params, &events, condition, action, priority, at)?;
                Ok(ExecResult::Ok)
            }
            Statement::CreateInstances { type_name, names } => {
                // An instance belongs to its type and to every
                // supertype: insert into the whole extent chain so
                // `for each <supertype>` (and rules over it) sees it.
                let mut chain_rels = Vec::new();
                let mut ty = Some(self.types.lookup(&type_name)?);
                while let Some(t) = ty {
                    let def = self.types.def(t);
                    if !def.builtin {
                        let pred = *self.extents.get(&def.name).ok_or_else(|| {
                            DbError::Other(format!("type `{}` has no extent", def.name))
                        })?;
                        chain_rels.push(
                            self.catalog
                                .def(pred)
                                .stored_rel()
                                .expect("extent is stored"),
                        );
                    }
                    ty = def.supertype;
                }
                if chain_rels.is_empty() {
                    return Err(DbError::Other(format!(
                        "cannot create instances of builtin type `{type_name}`"
                    )));
                }
                for n in names {
                    let oid = self.storage.fresh_oid();
                    for &rel in &chain_rels {
                        self.storage
                            .insert(rel, Tuple::new(vec![Value::Oid(oid)]))?;
                    }
                    self.iface.insert(n, Value::Oid(oid));
                }
                Ok(ExecResult::Ok)
            }
            Statement::Update(p) => self.autocommit(|this| {
                let env = HashMap::new();
                exec_proc_stmt(
                    &mut this.storage,
                    &this.catalog,
                    &env,
                    &this.iface,
                    &this.procedures,
                    &p,
                )
                .map_err(DbError::Other)
            }),
            Statement::CallProc { name, args } => self.autocommit(|this| {
                let env = HashMap::new();
                exec_proc_stmt(
                    &mut this.storage,
                    &this.catalog,
                    &env,
                    &this.iface,
                    &this.procedures,
                    &ProcStmt::Call { name, args },
                )
                .map_err(DbError::Other)
            }),
            Statement::Select(sel) => {
                let rows = self.run_select(&sel)?;
                Ok(ExecResult::Rows(rows))
            }
            Statement::Activate { rule, args } => {
                let id = self.rules.rule_id(&rule)?;
                // Static analysis gate: refuse to monitor a rule with
                // deny-level lint findings (unsafe, non-stratifiable, …).
                let diags = self.lint_rule(&rule)?;
                if amos_lint::has_deny(&diags) {
                    return Err(DbError::Lint(diags));
                }
                let params = self.eval_args(&args)?;
                let params = Tuple::new(params);
                self.rules
                    .activate(id, params.clone(), &self.catalog, &mut self.storage)?;
                // Conformance gate: the rebuilt network must agree with
                // the differencing calculus (one Δ₊/Δ₋ per influent
                // occurrence, monotone levels, consistent shard keys).
                // A violation means the compiler produced a network that
                // could lose or double-count updates — roll the
                // activation back rather than monitor with it.
                let violations = amos_core::verify::verify_network(
                    &self.catalog,
                    &self.storage,
                    self.rules.network(),
                    self.rules.scope,
                    self.options.semantic_pruning,
                );
                if !violations.is_empty() {
                    self.rules
                        .deactivate(id, &params, &self.catalog, &mut self.storage)?;
                    return Err(DbError::Conformance(
                        violations.iter().map(ToString::to_string).collect(),
                    ));
                }
                Ok(ExecResult::Ok)
            }
            Statement::Deactivate { rule, args } => {
                let id = self.rules.rule_id(&rule)?;
                let params = self.eval_args(&args)?;
                self.rules
                    .deactivate(id, &Tuple::new(params), &self.catalog, &mut self.storage)?;
                Ok(ExecResult::Ok)
            }
            Statement::DropRule(name) => {
                let id = self.rules.rule_id(&name)?;
                self.rules.drop_rule(id, &self.catalog, &mut self.storage)?;
                self.rule_lint.retain(|r| r.name != name);
                Ok(ExecResult::Ok)
            }
            Statement::ExplainSelect(sel) => Ok(ExecResult::Text(self.explain_select(&sel)?)),
            Statement::ExplainRule(name) => Ok(ExecResult::Text(self.explain_rule(&name)?)),
            Statement::MonitorRule { rule, pin } => {
                let id = self.rules.rule_id(&rule)?;
                let pin = match pin.as_str() {
                    "naive" => StrategyPin::Naive,
                    "incremental" => StrategyPin::Incremental,
                    "auto" => StrategyPin::Auto,
                    other => {
                        return Err(DbError::Other(format!(
                            "unknown monitoring strategy `{other}`"
                        )))
                    }
                };
                self.rules
                    .pin_strategy(&self.catalog, &self.storage, id, pin)?;
                Ok(ExecResult::Ok)
            }
            Statement::Begin => {
                self.storage.begin()?;
                Ok(ExecResult::Ok)
            }
            Statement::Commit => {
                let summary = self.commit()?;
                Ok(ExecResult::Committed(summary))
            }
            Statement::Rollback => {
                self.storage.rollback()?;
                Ok(ExecResult::Ok)
            }
        }
    }

    /// Run `f` inside the current transaction, or wrap it in an
    /// implicit begin/commit (with check phase) when none is open —
    /// the usual active-DBMS autocommit semantics.
    fn autocommit(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<(), DbError>,
    ) -> Result<ExecResult, DbError> {
        if self.storage.in_transaction() {
            f(self)?;
            if self.options.immediate {
                let summary = self.check_now()?;
                return Ok(ExecResult::Committed(summary));
            }
            Ok(ExecResult::Ok)
        } else {
            self.storage.begin()?;
            match f(self).and_then(|()| self.commit()) {
                Ok(summary) => Ok(ExecResult::Committed(summary)),
                Err(e) => {
                    // A failed statement — or a failed commit (check
                    // phase or WAL error) — leaves the implicit
                    // transaction open; undo it so autocommit is atomic.
                    if self.storage.in_transaction() {
                        self.storage.rollback()?;
                    }
                    Err(e)
                }
            }
        }
    }

    /// Commit the open transaction: maintain aggregates, run the
    /// deferred rule check phase, then make the changes durable.
    pub fn commit(&mut self) -> Result<CheckSummary, DbError> {
        self.maintain_views()?;
        let summary = self.rules.check_phase(&self.catalog, &mut self.storage)?;
        self.storage.commit()?;
        Ok(summary)
    }

    /// Commit with deferred durability (the pipelined session path):
    /// identical to [`Amos::commit`] — views, check phase, apply — except
    /// the WAL batch only enters the group-commit buffer. The caller
    /// must block on the returned [`CommitWaiter`] *after* releasing the
    /// engine lock; `None` means nothing needed logging (no WAL, or a
    /// no-op transaction).
    pub fn commit_deferred_durability(
        &mut self,
    ) -> Result<(CheckSummary, Option<CommitWaiter>), DbError> {
        self.maintain_views()?;
        let summary = self.rules.check_phase(&self.catalog, &mut self.storage)?;
        let waiter = self.storage.commit_buffered()?;
        Ok((summary, waiter))
    }

    /// Run the rule check phase *now*, inside the open transaction —
    /// immediate rule processing (§1). Maintains views, propagates the
    /// Δ-sets accumulated since the last check, and executes triggered
    /// rules; the transaction stays open.
    pub fn check_now(&mut self) -> Result<CheckSummary, DbError> {
        self.maintain_views()?;
        let summary = self.rules.check_phase(&self.catalog, &mut self.storage)?;
        Ok(summary)
    }

    /// Open a transaction.
    pub fn begin(&mut self) -> Result<(), DbError> {
        self.storage.begin()?;
        Ok(())
    }

    /// Roll the open transaction back.
    pub fn rollback(&mut self) -> Result<(), DbError> {
        self.storage.rollback()?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    /// Attach a write-ahead log directory: replay any snapshot + WAL
    /// found there (crash recovery), then log every later commit to it.
    /// Call before or after running the schema script — recovered
    /// relations are adopted by matching `create …` statements. Naive /
    /// hybrid condition materializations are recomputed from the
    /// recovered state.
    pub fn attach_wal(
        &mut self,
        dir: impl AsRef<std::path::Path>,
        config: WalConfig,
    ) -> Result<RecoveryInfo, DbError> {
        let info = self.storage.attach_wal(dir, config)?;
        self.rules.rematerialize(&self.catalog, &self.storage)?;
        Ok(info)
    }

    /// Whether a WAL is attached.
    pub fn wal_attached(&self) -> bool {
        self.storage.wal_attached()
    }

    /// Durability counters of the attached WAL (fsyncs, batch-size
    /// histogram, woken commit waiters). `None` without a WAL.
    pub fn wal_metrics(&self) -> Option<WalMetrics> {
        self.storage.wal_metrics()
    }

    /// Write a snapshot of all base relations and truncate the WAL
    /// (bounds recovery time). No transaction may be open.
    pub fn checkpoint(&mut self) -> Result<(), DbError> {
        self.storage.checkpoint()?;
        Ok(())
    }

    /// Mark a savepoint inside the open transaction. Updates made after
    /// it can be undone with [`Amos::rollback_to`] without aborting the
    /// whole transaction — the mechanism rule quarantine uses to contain
    /// failed actions.
    pub fn savepoint(&self) -> Savepoint {
        self.storage.savepoint()
    }

    /// Undo every update made since the savepoint (relations **and**
    /// Δ-sets); the transaction stays open. Returns how many update
    /// events were undone.
    pub fn rollback_to(&mut self, sp: Savepoint) -> Result<usize, DbError> {
        Ok(self.storage.rollback_to(sp)?)
    }

    /// Lift a rule's quarantine (by name) so it can trigger again.
    pub fn clear_quarantine(&mut self, rule: &str) -> Result<bool, DbError> {
        let id = self.rules.rule_id(rule)?;
        Ok(self.rules.clear_quarantine(id))
    }

    /// Install a deterministic fault plan across the engine: storage WAL
    /// faults, rule-action failures, and propagation faults (test-only).
    #[cfg(feature = "fault-injection")]
    pub fn set_fault_plan(&mut self, plan: Arc<amos_storage::fault::FaultPlan>) {
        self.rules.set_fault_plan(Arc::clone(&plan));
        if let Some(w) = self.storage.wal_mut() {
            w.set_fault_plan(plan);
        }
    }

    fn maintain_views(&mut self) -> Result<(), DbError> {
        for reg in &mut self.views {
            // Clone the source Δ-sets out so the view's user differential
            // can also consult storage (old-state views) while applying.
            let deltas: Vec<(RelId, amos_storage::DeltaSet)> = reg
                .sources
                .iter()
                .filter_map(|&rel| {
                    self.storage
                        .delta(rel)
                        .filter(|d| !d.is_empty())
                        .map(|d| (rel, d.clone()))
                })
                .collect();
            if deltas.is_empty() {
                continue;
            }
            let source_deltas: SourceDeltas<'_> = deltas.iter().map(|(rel, d)| (*rel, d)).collect();
            let out = reg
                .view
                .apply(&source_deltas, &self.catalog, &self.storage)?;
            for t in out.minus() {
                self.storage.delete(reg.backing, t)?;
            }
            for t in out.plus() {
                self.storage.insert(reg.backing, t.clone())?;
            }
        }
        Ok(())
    }

    fn eval_args(&self, args: &[Expr]) -> Result<Vec<Value>, DbError> {
        let env = HashMap::new();
        args.iter()
            .map(|a| eval_scalar(&self.storage, &self.catalog, &env, &self.iface, a))
            .collect()
    }

    fn create_function(
        &mut self,
        name: &str,
        params: &[TypedVar],
        results: &[String],
        append_only: bool,
        body: Option<Select>,
        at: Option<(usize, usize)>,
    ) -> Result<(), DbError> {
        let mut signature = Vec::with_capacity(params.len() + results.len());
        for p in params {
            signature.push(self.types.lookup(&p.type_name)?);
        }
        for r in results {
            signature.push(self.types.lookup(r)?);
        }
        match body {
            None => {
                let arity = signature.len();
                let key_arity = params.len();
                let rel = self.storage.create_relation(name, arity)?;
                if key_arity > 0 && key_arity < arity {
                    // `set` updates probe by key.
                    let key_cols: Vec<usize> = (0..key_arity).collect();
                    self.storage.ensure_index(rel, &key_cols);
                }
                self.catalog
                    .define_stored(name, signature, rel, key_arity)?;
                if append_only {
                    self.storage.set_append_only(rel, true);
                }
            }
            Some(sel) => {
                if sel.exprs.len() != results.len() {
                    return Err(DbError::Parse(ParseError::unpositioned(format!(
                        "function `{name}` declares {} results but selects {}",
                        results.len(),
                        sel.exprs.len()
                    ))));
                }
                // Two-phase definition so the body can reference the
                // function itself — linear recursion (`reach`-style
                // transitive closure, §5 note 1). The name is declared
                // (empty clauses), the body compiled against the catalog
                // that now contains it, and the clauses installed with
                // linearity validation.
                let pred = self.catalog.define_derived(name, signature, Vec::new())?;
                let q = compile_select_at(&self.query_env(), &sel, params, at)?;
                self.catalog.replace_clauses(pred, q.clauses)?;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn create_rule(
        &mut self,
        name: &str,
        params: &[TypedVar],
        events: &[String],
        condition: amos_amosql::ast::RuleCondition,
        action: Vec<ProcStmt>,
        priority: i32,
        at: Option<(usize, usize)>,
    ) -> Result<(), DbError> {
        let q = compile_predicate_at(
            &self.query_env(),
            &condition.for_each,
            &condition.predicate,
            params,
            at,
        )?;
        // Prepare the network shape: flat expands derived sub-functions
        // away; bushy keeps them as shared intermediate nodes.
        let clauses = match self.options.network_prep {
            NetworkPrep::Flat => {
                let mut out = Vec::new();
                for c in &q.clauses {
                    out.extend(expand_clause(&self.catalog, c, &ExpandOptions::full())?);
                }
                out
            }
            NetworkPrep::Bushy => q.clauses,
        };
        let object = self.types.object();
        let cnd_name = format!("cnd_{name}");
        let condition_pred =
            self.catalog
                .define_derived(&cnd_name, vec![object; q.head_arity], clauses)?;

        // Extract the stored-function writes for the L003 triggering-
        // graph analysis before the action closure consumes the AST:
        // `set` both deletes and inserts, `add` inserts, `remove`
        // deletes. Calls to registered procedures are opaque.
        let mut writes: Vec<RuleWrite> = Vec::new();
        for stmt in &action {
            let (func, inserts, deletes) = match stmt {
                ProcStmt::Set { func, .. } => (func, true, true),
                ProcStmt::Add { func, .. } => (func, true, false),
                ProcStmt::Remove { func, .. } => (func, false, true),
                ProcStmt::Call { .. } => continue,
            };
            if let Ok(pred) = self.catalog.lookup(func) {
                if self.catalog.def(pred).stored_rel().is_some() {
                    if let Some(w) = writes.iter_mut().find(|w| w.pred == pred) {
                        w.inserts |= inserts;
                        w.deletes |= deletes;
                    } else {
                        writes.push(RuleWrite {
                            pred,
                            inserts,
                            deletes,
                        });
                    }
                }
            }
        }

        // Compile the action into a closure over the shared-variable
        // environment (params then for-each vars — the order of the
        // condition head).
        let var_names: Vec<String> = params
            .iter()
            .map(|p| p.var.clone())
            .chain(condition.for_each.iter().map(|tv| tv.var.clone()))
            .collect();
        let iface_snapshot = self.iface.clone();
        let procedures = Arc::clone(&self.procedures);
        let action_fn: ActionFn = Arc::new(move |ctx, instance| {
            let mut env: HashMap<String, Value> = HashMap::with_capacity(var_names.len());
            for (n, v) in var_names.iter().zip(instance.values()) {
                env.insert(n.clone(), v.clone());
            }
            for stmt in &action {
                exec_proc_stmt(
                    ctx.storage,
                    ctx.catalog,
                    &env,
                    &iface_snapshot,
                    &procedures,
                    stmt,
                )?;
            }
            Ok(())
        });
        let rule_id = self.rules.define_rule(
            name,
            condition_pred,
            params.len(),
            action_fn,
            priority,
            self.options.default_semantics,
        )?;
        if !events.is_empty() {
            let mut rels = std::collections::HashSet::new();
            for ev in events {
                let pred = self
                    .catalog
                    .lookup(ev)
                    .map_err(|_| DbError::Other(format!("unknown event function `{ev}`")))?;
                let rel = self.catalog.def(pred).stored_rel().ok_or_else(|| {
                    DbError::Other(format!("event function `{ev}` is not stored"))
                })?;
                rels.insert(rel);
            }
            self.rules.set_events(rule_id, rels);
        }
        self.rule_lint.push(RuleLintInfo {
            name: name.to_string(),
            condition: condition_pred,
            writes,
            span: at.map(|(line, col)| Span::new(line, col)),
        });
        Ok(())
    }

    /// Render the compiled clauses and execution plans of a query.
    fn explain_select(&self, sel: &Select) -> Result<String, DbError> {
        let q = compile_select(&self.query_env(), sel, &[])?;
        let mut out = String::new();
        for (i, clause) in q.clauses.iter().enumerate() {
            out.push_str(&format!(
                "clause {i} ({} vars, {} literals):\n",
                clause.n_vars,
                clause.body.len()
            ));
            let plan = compile_clause(&self.catalog, clause, &Default::default())?;
            out.push_str(&plan.render(&self.catalog));
        }
        Ok(out)
    }

    /// Render a rule's monitoring setup: condition predicate, network
    /// slice, and every partial differential with its plan.
    fn explain_rule(&self, name: &str) -> Result<String, DbError> {
        let id = self.rules.rule_id(name)?;
        let rule = self.rules.rule(id);
        let mut out = String::new();
        out.push_str(&format!(
            "rule {name}: condition {} ({} params, {:?} semantics, priority {})\n",
            self.catalog.name(rule.condition),
            rule.n_params,
            rule.semantics,
            rule.priority,
        ));
        out.push_str(&format!("monitor strategy: {}\n", self.rules.pin(id)));
        if let Some(reason) = self.rules.quarantine_reason(id) {
            out.push_str(&format!(
                "  QUARANTINED: {reason}\n  (the action failed; updates were rolled back to the \
                 pre-action savepoint — fix the cause and lift the quarantine to resume)\n"
            ));
        }
        let diags = self.lint_rule(name)?;
        if !diags.is_empty() {
            out.push_str("lint:\n");
            for d in &diags {
                out.push_str(&format!("  {d}\n"));
            }
        }
        if !rule.is_active() {
            out.push_str("  (inactive — activate it to build the network)\n");
            return Ok(out);
        }
        out.push_str("propagation network:\n");
        out.push_str(&self.rules.network().render(&self.catalog));
        out.push_str("differentials and plans:\n");
        for d in self.rules.network().differentials() {
            if d.affected != rule.condition {
                continue;
            }
            out.push_str(&format!("{}\n", d.display_name(&self.catalog)));
            for line in d.plan.render(&self.catalog).lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
        if let Some(metrics) = self.rules.last_metrics() {
            out.push_str("last propagation pass:\n");
            for line in metrics.render().lines() {
                out.push_str(&format!("  {line}\n"));
            }
        }
        Ok(out)
    }

    pub(crate) fn run_select(&self, sel: &Select) -> Result<Vec<Tuple>, DbError> {
        let q = compile_select(&self.query_env(), sel, &[])?;
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&self.storage, &self.catalog, &deltas);
        let mut rows: Vec<Tuple> = Vec::new();
        for clause in &q.clauses {
            let plan = compile_clause(&self.catalog, clause, &Default::default())?;
            let bindings = vec![None; clause.n_vars as usize];
            ctx.run_plan(&plan, bindings, StateEpoch::New, 0, &mut |b, head| {
                let vals: Option<Vec<Value>> = head
                    .iter()
                    .map(|t| match t {
                        amos_objectlog::clause::Term::Const(v) => Some(v.clone()),
                        amos_objectlog::clause::Term::Var(v) => b[v.0 as usize].clone(),
                    })
                    .collect();
                if let Some(vals) = vals {
                    rows.push(Tuple::new(vals));
                }
                Ok(())
            })?;
        }
        rows.sort();
        rows.dedup();
        Ok(rows)
    }
}

/// Evaluate a scalar expression against the current database state.
pub fn eval_scalar(
    storage: &Storage,
    catalog: &Catalog,
    env: &HashMap<String, Value>,
    iface: &HashMap<String, Value>,
    expr: &Expr,
) -> Result<Value, DbError> {
    ScalarEval {
        storage,
        catalog,
        env,
        iface,
        view: None,
        reads: None,
    }
    .eval(expr)
}

/// Relations a session transaction has read, at two granularities:
/// whole-relation (scans, derived-function calls) and conflict-key
/// (stored-function probes). Commit-time validation intersects these
/// with the write-sets of concurrently committed transactions.
#[derive(Debug, Default)]
pub(crate) struct ReadTrace {
    /// Relations read in full.
    pub whole: HashSet<RelId>,
    /// Per-relation conflict keys probed (key-column prefix tuples).
    pub keys: HashMap<RelId, HashSet<Tuple>>,
}

impl ReadTrace {
    /// Record the read footprint of a stored/derived function call with
    /// fully-bound arguments: key-granular for stored functions (the
    /// probed key is the conflict key), whole-relation for every stored
    /// influent of a derived function.
    pub(crate) fn record_call(&mut self, catalog: &Catalog, pred: PredId, args: &[Value]) {
        match &catalog.def(pred).kind {
            PredKind::Stored { rel, key_arity } => {
                let k = *key_arity;
                if k > 0 && k <= args.len() {
                    self.keys
                        .entry(*rel)
                        .or_default()
                        .insert(Tuple::new(args[..k].to_vec()));
                } else {
                    self.whole.insert(*rel);
                }
            }
            PredKind::Derived(_) => {
                for p in catalog.stored_influents(pred) {
                    if let Some(rel) = catalog.def(p).stored_rel() {
                        self.whole.insert(rel);
                    }
                }
            }
            PredKind::Foreign(_) => {}
        }
    }

    /// Record the read footprint of an unbounded scan over `pred` (a
    /// select clause literal): whole-relation on the backing relation of
    /// a stored predicate, or on every stored influent of a derived one.
    pub(crate) fn record_scan(&mut self, catalog: &Catalog, pred: PredId) {
        match &catalog.def(pred).kind {
            PredKind::Stored { rel, .. } => {
                self.whole.insert(*rel);
            }
            PredKind::Derived(_) => {
                for p in catalog.stored_influents(pred) {
                    if let Some(rel) = catalog.def(p).stored_rel() {
                        self.whole.insert(rel);
                    }
                }
            }
            PredKind::Foreign(_) => {}
        }
    }
}

/// Scalar-expression evaluator parameterized by an optional snapshot
/// view (session transactions read through their overlay) and an
/// optional read trace (commit-time conflict validation needs the read
/// footprint). [`eval_scalar`] is the plain single-session instance.
pub(crate) struct ScalarEval<'a> {
    pub storage: &'a Storage,
    pub catalog: &'a Catalog,
    pub env: &'a HashMap<String, Value>,
    pub iface: &'a HashMap<String, Value>,
    pub view: Option<&'a ReadOverlay>,
    pub reads: Option<&'a RefCell<ReadTrace>>,
}

impl ScalarEval<'_> {
    pub(crate) fn eval(&self, expr: &Expr) -> Result<Value, DbError> {
        match expr {
            Expr::Var(n) => self
                .env
                .get(n)
                .cloned()
                .ok_or_else(|| DbError::Other(format!("unbound variable `{n}`"))),
            Expr::IfaceVar(n) => self
                .iface
                .get(n)
                .cloned()
                .ok_or_else(|| DbError::Other(format!("unbound interface variable `:{n}`"))),
            Expr::Int(i) => Ok(Value::Int(*i)),
            Expr::Real(r) => Ok(Value::real(*r)?),
            Expr::Str(s) => Ok(Value::str(s.as_str())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Arith { op, lhs, rhs } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                Ok(op.apply(&l, &r)?)
            }
            Expr::Neg(e) => {
                let v = self.eval(e)?;
                Ok(v.neg()?)
            }
            Expr::Cmp { op, lhs, rhs } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                Ok(Value::Bool(op.apply(&l, &r)?))
            }
            Expr::And(a, b) => {
                let l = self.eval(a)?.as_bool()?;
                let r = self.eval(b)?.as_bool()?;
                Ok(Value::Bool(l && r))
            }
            Expr::Or(a, b) => {
                let l = self.eval(a)?.as_bool()?;
                let r = self.eval(b)?.as_bool()?;
                Ok(Value::Bool(l || r))
            }
            Expr::Not(e) => {
                let v = self.eval(e)?.as_bool()?;
                Ok(Value::Bool(!v))
            }
            Expr::Call { func, args } => {
                let pred = self
                    .catalog
                    .lookup(func)
                    .map_err(|_| DbError::Other(format!("unknown function `{func}`")))?;
                let arity = self.catalog.def(pred).arity;
                if args.len() + 1 != arity {
                    return Err(DbError::Other(format!(
                        "function `{func}` takes {} arguments, {} supplied",
                        arity - 1,
                        args.len()
                    )));
                }
                let mut vals: Vec<Value> = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                if let Some(reads) = self.reads {
                    reads.borrow_mut().record_call(self.catalog, pred, &vals);
                }
                let mut pattern: Vec<Option<Value>> = vals.into_iter().map(Some).collect();
                pattern.push(None);
                let deltas = DeltaMap::new();
                let ctx = match self.view {
                    Some(v) => EvalContext::with_view(self.storage, self.catalog, &deltas, v),
                    None => EvalContext::new(self.storage, self.catalog, &deltas),
                };
                let results = ctx.eval_pred(pred, &pattern, StateEpoch::New)?;
                let mut vals: Vec<Value> =
                    results.into_iter().map(|t| t[arity - 1].clone()).collect();
                vals.sort();
                vals.into_iter().next().ok_or_else(|| {
                    DbError::Other(format!("no value stored for `{func}` at these arguments"))
                })
            }
        }
    }
}

/// Execute one action/update statement in a variable environment.
fn exec_proc_stmt(
    storage: &mut Storage,
    catalog: &Catalog,
    env: &HashMap<String, Value>,
    iface: &HashMap<String, Value>,
    procedures: &Procedures,
    stmt: &ProcStmt,
) -> Result<(), String> {
    let eval = |storage: &Storage, e: &Expr| -> Result<Value, String> {
        eval_scalar(storage, catalog, env, iface, e).map_err(|e| e.to_string())
    };
    match stmt {
        ProcStmt::Set { func, args, value } => {
            let (rel, key_arity) = resolve_stored(catalog, func)?;
            let key: Vec<Value> = args
                .iter()
                .map(|a| eval(storage, a))
                .collect::<Result<_, _>>()?;
            if key.len() != key_arity {
                return Err(format!(
                    "`set {func}` expects {key_arity} key arguments, got {}",
                    key.len()
                ));
            }
            let v = eval(storage, value)?;
            storage
                .set_functional(rel, &key, &[v])
                .map_err(|e| e.to_string())
        }
        ProcStmt::Add { func, args, value } => {
            let (rel, _) = resolve_stored(catalog, func)?;
            let key: Vec<Value> = args
                .iter()
                .map(|a| eval(storage, a))
                .collect::<Result<_, _>>()?;
            let v = eval(storage, value)?;
            storage
                .add_functional(rel, &key, &[v])
                .map(|_| ())
                .map_err(|e| e.to_string())
        }
        ProcStmt::Remove { func, args, value } => {
            let (rel, _) = resolve_stored(catalog, func)?;
            let key: Vec<Value> = args
                .iter()
                .map(|a| eval(storage, a))
                .collect::<Result<_, _>>()?;
            let v = eval(storage, value)?;
            storage
                .remove_functional(rel, &key, &[v])
                .map(|_| ())
                .map_err(|e| e.to_string())
        }
        ProcStmt::Call { name, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(storage, a))
                .collect::<Result<_, _>>()?;
            let proc = procedures
                .lock()
                .expect("procedures lock")
                .get(name)
                .cloned()
                .ok_or_else(|| format!("unknown procedure `{name}`"))?;
            let mut ctx = ProcCtx { storage, catalog };
            proc(&mut ctx, &vals)
        }
    }
}

pub(crate) fn resolve_stored(catalog: &Catalog, func: &str) -> Result<(RelId, usize), String> {
    let pred = catalog
        .lookup(func)
        .map_err(|_| format!("unknown function `{func}`"))?;
    match catalog.def(pred).kind {
        amos_objectlog::catalog::PredKind::Stored { rel, key_arity } => Ok((rel, key_arity)),
        _ => Err(format!("`{func}` is not a stored function")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_updates_and_queries() {
        let mut db = Amos::new();
        db.execute(
            r#"
            create type item;
            create function quantity(item i) -> integer;
            create item instances :a, :b;
            set quantity(:a) = 10;
            set quantity(:b) = 20;
        "#,
        )
        .unwrap();
        let rows = db.query("select quantity(:a);").unwrap();
        assert_eq!(rows, vec![Tuple::new(vec![Value::Int(10)])]);
        let rows = db
            .query("select i for each item i where quantity(i) > 15;")
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], *db.iface_value("b").unwrap());
    }

    #[test]
    fn derived_functions_evaluate() {
        let mut db = Amos::new();
        db.execute(
            r#"
            create type item;
            create function price(item i) -> integer;
            create function tax(item i) -> integer as select price(i) / 5;
            create item instances :x;
            set price(:x) = 100;
        "#,
        )
        .unwrap();
        let rows = db.query("select tax(:x);").unwrap();
        assert_eq!(rows, vec![Tuple::new(vec![Value::Int(20)])]);
    }

    #[test]
    fn unknown_names_error() {
        let mut db = Amos::new();
        assert!(db.execute("select nosuch(1);").is_err());
        assert!(db.execute("set nosuch(1) = 2;").is_err());
        assert!(db.execute("activate nosuch();").is_err());
        assert!(db.execute("create nosuchtype instances :x;").is_err());
    }

    #[test]
    fn autocommit_rolls_back_failed_updates() {
        let mut db = Amos::new();
        db.execute(
            r#"
            create type item;
            create function quantity(item i) -> integer;
            create item instances :a;
            set quantity(:a) = 1;
        "#,
        )
        .unwrap();
        // A procedure that updates then fails: autocommit must undo.
        db.register_procedure("boom", |ctx, _args| {
            let rel = ctx.catalog.lookup("quantity").unwrap();
            let rel = ctx.catalog.def(rel).stored_rel().unwrap();
            ctx.storage
                .set_functional(rel, &[Value::Int(999)], &[Value::Int(1)])
                .map_err(|e| e.to_string())?;
            Err("boom".to_string())
        });
        assert!(db.execute("boom(0);").is_err());
        assert!(!db.storage().in_transaction());
        let rows = db.query("select quantity(:a);").unwrap();
        assert_eq!(rows.len(), 1, "original value intact, junk rolled back");
    }
}
