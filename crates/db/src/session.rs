//! Multi-session transactions over a shared engine.
//!
//! [`SharedEngine`] wraps one [`Amos`] behind an `RwLock` so many
//! [`Session`]s — one per client connection — run concurrently:
//!
//! * **Snapshot reads.** `begin` pins the storage commit sequence
//!   ([`Storage::pin_snapshot`]); every read inside the transaction is
//!   corrected through a [`ReadOverlay`] that undoes transactions
//!   committed after the pin and replays the session's own buffered
//!   writes — the paper's logical-rollback algebra
//!   `S_old = (S_new ∪ Δ₋S) − Δ₊S` generalized per committed version.
//!   Reads take the engine's *read* lock, so they proceed in parallel.
//! * **Buffered write-sets.** Updates inside a transaction never touch
//!   shared storage; they fold into per-relation [`DeltaSet`]s exactly
//!   like the engine's Δ-accumulation (double updates cancel, §4.1).
//! * **Commit-time validation (first-committer-wins).** `commit` takes
//!   the write lock, replays nothing, and checks the session's read and
//!   write footprints against every version committed since its pin:
//!   write-write conflicts at conflict-key granularity (the stored
//!   function's key prefix), read-write conflicts at key granularity
//!   for probes and whole-relation granularity for scans. A conflicting
//!   transaction aborts with the retryable [`DbError::TxnConflict`]
//!   without having touched shared state. A clean transaction applies
//!   its write-set inside a normal storage transaction, runs the
//!   deferred check phase (rules fire exactly as if the statements had
//!   run serially at commit point), and group-commits through the WAL.
//!
//! Because validation is conservative and commits are fully serialized
//! by the write lock, the committed history is equivalent to a serial
//! execution of the committed transactions in commit order — the
//! property the isolation proptests pin bit-identically.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use amos_amosql::ast::{ProcStmt, Select, Statement};
use amos_amosql::compiler::compile_select_at;
use amos_amosql::parser::parse_spanned;
use amos_core::rules::CheckSummary;
use amos_objectlog::catalog::PredKind;
use amos_objectlog::clause::{Literal, Term};
use amos_objectlog::eval::{DeltaMap, EvalContext};
use amos_objectlog::plan::compile_clause;
use amos_storage::{CommitWaiter, DeltaSet, ReadOverlay, RelId, StateEpoch, Storage, WalMetrics};
use amos_types::{Tuple, Value};

use crate::engine::{resolve_stored, Amos, ExecResult, ReadTrace, ScalarEval};
use crate::error::DbError;

/// One engine shared by many sessions. Reads (snapshot selects, scalar
/// probes) hold the read lock; commits, DDL, and autocommit statements
/// hold the write lock — commit-time check phases are thereby fully
/// serialized, in the same spirit as the WAL's group commit.
pub struct SharedEngine {
    inner: RwLock<Amos>,
    /// Commit-pipeline lock accounting: nanoseconds the engine write
    /// lock was *held* by session commits (acquisition wait excluded),
    /// the single longest hold, and the number of commits measured.
    commit_lock_ns: AtomicU64,
    commit_lock_ns_max: AtomicU64,
    commit_lock_count: AtomicU64,
}

/// Commit-pipeline observability: the WAL's durability counters plus
/// the engine-lock hold accounting — everything the `concurrent_sessions`
/// bench exports as `commit` metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommitMetrics {
    /// WAL durability counters (fsyncs, batch-size histogram, woken
    /// waiters). `None` without an attached WAL.
    pub wal: Option<WalMetrics>,
    /// Total ns the engine write lock was held by session commits.
    pub lock_hold_ns: u64,
    /// Longest single commit critical section, ns.
    pub lock_hold_ns_max: u64,
    /// Session commits measured (read-only and conflicted included).
    pub commits: u64,
}

impl SharedEngine {
    /// Share an engine. Existing state (schema, rules, data) carries
    /// over; the original handle is consumed.
    pub fn new(db: Amos) -> Arc<SharedEngine> {
        Arc::new(SharedEngine {
            inner: RwLock::new(db),
            commit_lock_ns: AtomicU64::new(0),
            commit_lock_ns_max: AtomicU64::new(0),
            commit_lock_count: AtomicU64::new(0),
        })
    }

    /// Snapshot the commit-pipeline metrics (WAL durability counters +
    /// engine-lock hold accounting).
    pub fn commit_metrics(&self) -> CommitMetrics {
        CommitMetrics {
            wal: self.with_read(|eng| eng.wal_metrics()),
            lock_hold_ns: self.commit_lock_ns.load(Ordering::Relaxed),
            lock_hold_ns_max: self.commit_lock_ns_max.load(Ordering::Relaxed),
            commits: self.commit_lock_count.load(Ordering::Relaxed),
        }
    }

    fn note_commit_lock_hold(&self, ns: u64) {
        self.commit_lock_ns.fetch_add(ns, Ordering::Relaxed);
        self.commit_lock_ns_max.fetch_max(ns, Ordering::Relaxed);
        self.commit_lock_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Open a new session over this engine.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            engine: Arc::clone(self),
            txn: None,
        }
    }

    /// Run `f` under the engine's read lock (parallel with other
    /// readers; excluded by commits).
    pub fn with_read<R>(&self, f: impl FnOnce(&Amos) -> R) -> R {
        f(&self.inner.read().expect("engine lock poisoned"))
    }

    /// Run `f` under the engine's write lock (exclusive).
    pub fn with_write<R>(&self, f: impl FnOnce(&mut Amos) -> R) -> R {
        f(&mut self.inner.write().expect("engine lock poisoned"))
    }
}

/// Buffered state of one open session transaction.
struct OpenTxn {
    /// Commit sequence pinned at `begin`; reads are corrected back to
    /// it, validation runs against every version committed after it.
    begin_seq: u64,
    /// Net buffered write-set per relation (Δ-fold semantics: a delete
    /// of a pending insert cancels, §4.1).
    writes: HashMap<RelId, DeltaSet>,
    /// Conflict keys written, per relation (stored-key prefix, or the
    /// whole tuple for keyless relations).
    write_keys: HashMap<RelId, HashSet<Tuple>>,
    /// Read footprint (whole-relation and key-granular).
    reads: RefCell<ReadTrace>,
}

/// A client session: executes AMOSQL, optionally inside an isolated
/// transaction (`begin; …; commit;`). Outside a transaction statements
/// autocommit through the shared engine exactly as in single-session
/// use. Dropping a session rolls back any open transaction.
pub struct Session {
    engine: Arc<SharedEngine>,
    txn: Option<OpenTxn>,
}

impl Session {
    /// Execute an AMOSQL script; one result per statement.
    ///
    /// On [`DbError::TxnConflict`] the open transaction has already
    /// been aborted (buffered writes discarded, snapshot unpinned);
    /// the client may simply re-run the transaction.
    pub fn execute(&mut self, src: &str) -> Result<Vec<ExecResult>, DbError> {
        let stmts = parse_spanned(src)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            let at = Some((stmt.line, stmt.col));
            out.push(self.exec_statement(stmt.node, at).inspect_err(|e| {
                if matches!(e, DbError::TxnConflict { .. }) {
                    // The conflicting transaction is dead; make sure the
                    // session is usable for a retry.
                    debug_assert!(self.txn.is_none());
                }
            })?);
        }
        Ok(out)
    }

    /// Execute a single `select` and return its rows (sorted).
    pub fn query(&mut self, src: &str) -> Result<Vec<Tuple>, DbError> {
        let results = self.execute(src)?;
        for r in results {
            if let ExecResult::Rows(rows) = r {
                return Ok(rows);
            }
        }
        Err(DbError::Other("statement was not a query".to_string()))
    }

    /// Is a transaction open on this session?
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    fn exec_statement(
        &mut self,
        stmt: Statement,
        at: Option<(usize, usize)>,
    ) -> Result<ExecResult, DbError> {
        match stmt {
            Statement::Begin => self.begin(),
            Statement::Commit => self.commit(),
            Statement::Rollback => self.rollback(),
            Statement::Select(sel) if self.txn.is_some() => self.txn_select(&sel, at),
            Statement::Update(p) if self.txn.is_some() => self.txn_update(&p),
            Statement::CallProc { name, .. } if self.txn.is_some() => Err(DbError::Other(format!(
                "procedure `{name}` cannot run inside a session transaction \
                 (procedures execute against shared storage); commit first"
            ))),
            // Read-only statements outside a transaction run under the
            // read lock, in parallel with other sessions' reads.
            Statement::Select(sel) => self
                .engine
                .with_read(|eng| eng.run_select(&sel).map(ExecResult::Rows)),
            // Schema DDL inside a transaction would bypass both the
            // write buffer and conflict validation; refuse it.
            _ if self.txn.is_some() => Err(DbError::Other(
                "only select / set / add / remove / commit / rollback are \
                 allowed inside a session transaction"
                    .to_string(),
            )),
            // Data-mutating statements forwarded outside a transaction
            // are wrapped in an engine transaction so they publish a
            // TxnVersion — pinned sessions must see them as committed
            // versions, not as silent in-place mutation.
            Statement::CreateInstances { .. } => self.engine.with_write(|eng| {
                eng.storage_mut().begin()?;
                match eng
                    .exec_statement(stmt, at)
                    .and_then(|_| eng.commit().map(ExecResult::Committed))
                {
                    Ok(r) => Ok(r),
                    Err(e) => {
                        if eng.storage().in_transaction() {
                            let _ = eng.storage_mut().rollback();
                        }
                        Err(e)
                    }
                }
            }),
            // Everything else (schema DDL, activate, autocommit updates,
            // procedure calls, explain) behaves exactly as in
            // single-session use, serialized under the write lock. The
            // engine's own autocommit already wraps updates and calls in
            // a storage transaction, which publishes versions.
            _ => self.engine.with_write(|eng| eng.exec_statement(stmt, at)),
        }
    }

    // ------------------------------------------------------------------
    // Transaction control
    // ------------------------------------------------------------------

    fn begin(&mut self) -> Result<ExecResult, DbError> {
        if self.txn.is_some() {
            return Err(DbError::Other("transaction already open".to_string()));
        }
        // Pin under the read lock: commits hold the write lock, so the
        // observed commit_seq cannot move between the read and the pin.
        let begin_seq = self.engine.with_read(|eng| eng.storage().pin_snapshot());
        self.txn = Some(OpenTxn {
            begin_seq,
            writes: HashMap::new(),
            write_keys: HashMap::new(),
            reads: RefCell::new(ReadTrace::default()),
        });
        Ok(ExecResult::Ok)
    }

    fn rollback(&mut self) -> Result<ExecResult, DbError> {
        match self.txn.take() {
            Some(txn) => {
                self.engine
                    .with_read(|eng| eng.storage().unpin_snapshot(txn.begin_seq));
                Ok(ExecResult::Ok)
            }
            None => Err(DbError::Other("no open transaction".to_string())),
        }
    }

    /// Validate against concurrently committed versions, then apply the
    /// buffered write-set and run the deferred check phase — all under
    /// the write lock. With [`EngineOptions::commit_pipeline`] on (the
    /// default), the WAL batch only enters the group-commit buffer
    /// inside the critical section; the fsync wait happens *after* the
    /// write lock is released, on the returned [`CommitWaiter`], so
    /// independent sessions coalesce their durability into one group
    /// fsync while the next commit already holds the lock.
    fn commit(&mut self) -> Result<ExecResult, DbError> {
        let txn = match self.txn.take() {
            Some(t) => t,
            None => return Err(DbError::Other("no open transaction".to_string())),
        };
        let engine = Arc::clone(&self.engine);
        let (result, waiter) = engine.with_write(|eng| {
            let start = Instant::now();
            let out = Self::commit_critical(eng, &txn);
            engine.note_commit_lock_hold(start.elapsed().as_nanos() as u64);
            out
        })?;
        // Off-lock durability wait: the engine state (and this commit's
        // rule firings) are already published; only the fsync
        // acknowledgment is pending. On error the batch's durability is
        // unknown — surface it, the transaction is not silently lost
        // (it stays queued for the next flush / shutdown).
        if let Some(w) = waiter {
            w.wait().map_err(DbError::from)?;
        }
        Ok(result)
    }

    /// The commit critical section (runs under the engine write lock):
    /// validate → apply write-set → deferred check phase → frame the
    /// WAL batch. Returns the statement result plus the durability
    /// waiter to block on after the lock is released.
    fn commit_critical(
        eng: &mut Amos,
        txn: &OpenTxn,
    ) -> Result<(ExecResult, Option<CommitWaiter>), DbError> {
        let read_only = txn.writes.values().all(DeltaSet::is_empty);
        if read_only {
            // A read-only transaction serializes at its snapshot
            // point; nothing to validate, nothing to apply.
            eng.storage().unpin_snapshot(txn.begin_seq);
            return Ok((
                ExecResult::Committed(CheckSummary {
                    executed: Vec::new(),
                    failed: Vec::new(),
                    passes: 0,
                }),
                None,
            ));
        }
        if let Some(relation) = validate(eng, txn) {
            eng.storage().unpin_snapshot(txn.begin_seq);
            return Err(DbError::TxnConflict { relation });
        }
        // First committer: replay the net write-set inside a normal
        // storage transaction (Δ-sets accumulate for monitored
        // relations; the WAL sees one group-committed batch).
        eng.storage_mut().begin()?;
        let mut rels: Vec<RelId> = txn.writes.keys().copied().collect();
        rels.sort();
        let mut applied: Result<(), DbError> = Ok(());
        'apply: for rel in rels {
            let d = &txn.writes[&rel];
            let mut minus: Vec<&Tuple> = d.minus().iter().collect();
            minus.sort();
            let mut plus: Vec<&Tuple> = d.plus().iter().collect();
            plus.sort();
            for t in minus {
                if let Err(e) = eng.storage_mut().delete(rel, t) {
                    applied = Err(e.into());
                    break 'apply;
                }
            }
            for t in plus {
                if let Err(e) = eng.storage_mut().insert(rel, t.clone()) {
                    applied = Err(e.into());
                    break 'apply;
                }
            }
        }
        let pipelined = eng.options.commit_pipeline;
        let committed = applied.and_then(|()| {
            if pipelined {
                eng.commit_deferred_durability()
            } else {
                eng.commit().map(|summary| (summary, None))
            }
        });
        match committed {
            Ok((summary, waiter)) => {
                eng.storage().unpin_snapshot(txn.begin_seq);
                Ok((ExecResult::Committed(summary), waiter))
            }
            Err(e) => {
                if eng.storage().in_transaction() {
                    let _ = eng.storage_mut().rollback();
                }
                eng.storage().unpin_snapshot(txn.begin_seq);
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // In-transaction statements
    // ------------------------------------------------------------------

    fn txn_select(
        &mut self,
        sel: &Select,
        at: Option<(usize, usize)>,
    ) -> Result<ExecResult, DbError> {
        let txn = self.txn.as_ref().expect("txn checked by caller");
        self.engine.with_read(|eng| {
            let q = compile_select_at(&eng.query_env(), sel, &[], at)?;
            // Record the read footprint: a select scans its stored
            // relations (directly or through derived predicates), so
            // the whole relation is a dependency.
            {
                let mut reads = txn.reads.borrow_mut();
                for clause in &q.clauses {
                    for lit in &clause.body {
                        if let Literal::Pred { pred, .. } = lit {
                            reads.record_scan(eng.catalog(), *pred);
                        }
                    }
                }
            }
            let overlay = ReadOverlay::build(
                eng.storage().versions_since(txn.begin_seq),
                txn.writes.iter(),
            );
            let deltas = DeltaMap::new();
            let ctx = EvalContext::with_view(eng.storage(), eng.catalog(), &deltas, &overlay);
            let mut rows: Vec<Tuple> = Vec::new();
            for clause in &q.clauses {
                let plan = compile_clause(eng.catalog(), clause, &Default::default())?;
                let bindings = vec![None; clause.n_vars as usize];
                ctx.run_plan(&plan, bindings, StateEpoch::New, 0, &mut |b, head| {
                    let vals: Option<Vec<Value>> = head
                        .iter()
                        .map(|t| match t {
                            Term::Const(v) => Some(v.clone()),
                            Term::Var(v) => b[v.0 as usize].clone(),
                        })
                        .collect();
                    if let Some(vals) = vals {
                        rows.push(Tuple::new(vals));
                    }
                    Ok(())
                })?;
            }
            rows.sort();
            rows.dedup();
            Ok(ExecResult::Rows(rows))
        })
    }

    fn txn_update(&mut self, p: &ProcStmt) -> Result<ExecResult, DbError> {
        let txn = self.txn.as_mut().expect("txn checked by caller");
        self.engine.with_read(|eng| {
            let storage = eng.storage();
            let catalog = eng.catalog();
            let overlay =
                ReadOverlay::build(storage.versions_since(txn.begin_seq), txn.writes.iter());
            let env = HashMap::new();
            let scalar = ScalarEval {
                storage,
                catalog,
                env: &env,
                iface: eng.iface_map(),
                view: Some(&overlay),
                reads: Some(&txn.reads),
            };
            match p {
                ProcStmt::Set { func, args, value } => {
                    let (rel, key_arity) = resolve_stored(catalog, func).map_err(DbError::Other)?;
                    let key: Vec<Value> = args
                        .iter()
                        .map(|a| scalar.eval(a))
                        .collect::<Result<_, _>>()?;
                    if key.len() != key_arity {
                        return Err(DbError::Other(format!(
                            "`set {func}` expects {key_arity} key arguments, got {}",
                            key.len()
                        )));
                    }
                    let v = scalar.eval(value)?;
                    // `set` semantics: delete every tuple at the key (as
                    // visible in this transaction's snapshot), insert the
                    // new one. The probe itself is a key-granular read.
                    let key_cols: Vec<usize> = (0..key_arity).collect();
                    let olds = overlay.probe(rel, storage.relation(rel), &key_cols, &key);
                    record_key_read(&txn.reads, rel, key_arity, &key);
                    let writes = txn.writes.entry(rel).or_default();
                    let wkeys = txn.write_keys.entry(rel).or_default();
                    for t in olds {
                        wkeys.insert(conflict_key(&t, key_arity));
                        writes.apply_delete(t);
                    }
                    let mut vals = key;
                    vals.push(v);
                    let t = Tuple::new(vals);
                    wkeys.insert(conflict_key(&t, key_arity));
                    writes.apply_insert(t);
                    Ok(ExecResult::Ok)
                }
                ProcStmt::Add { func, args, value } => {
                    let (rel, key_arity) = resolve_stored(catalog, func).map_err(DbError::Other)?;
                    let mut vals: Vec<Value> = args
                        .iter()
                        .map(|a| scalar.eval(a))
                        .collect::<Result<_, _>>()?;
                    vals.push(scalar.eval(value)?);
                    let t = Tuple::new(vals);
                    check_arity(storage, rel, &t, func)?;
                    txn.write_keys
                        .entry(rel)
                        .or_default()
                        .insert(conflict_key(&t, key_arity));
                    txn.writes.entry(rel).or_default().apply_insert(t);
                    Ok(ExecResult::Ok)
                }
                ProcStmt::Remove { func, args, value } => {
                    let (rel, key_arity) = resolve_stored(catalog, func).map_err(DbError::Other)?;
                    let mut vals: Vec<Value> = args
                        .iter()
                        .map(|a| scalar.eval(a))
                        .collect::<Result<_, _>>()?;
                    vals.push(scalar.eval(value)?);
                    let t = Tuple::new(vals);
                    check_arity(storage, rel, &t, func)?;
                    txn.write_keys
                        .entry(rel)
                        .or_default()
                        .insert(conflict_key(&t, key_arity));
                    txn.writes.entry(rel).or_default().apply_delete(t);
                    Ok(ExecResult::Ok)
                }
                ProcStmt::Call { name, .. } => Err(DbError::Other(format!(
                    "procedure `{name}` cannot run inside a session transaction"
                ))),
            }
        })
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if let Some(txn) = self.txn.take() {
            // Disconnected mid-transaction: abort, releasing the pin so
            // version retention does not grow unboundedly.
            self.engine
                .with_read(|eng| eng.storage().unpin_snapshot(txn.begin_seq));
        }
    }
}

/// The conflict key of a written tuple: the stored function's key-column
/// prefix, or the whole tuple when the relation has no proper key
/// (key_arity 0, or key_arity spanning the full tuple — extents).
fn conflict_key(t: &Tuple, key_arity: usize) -> Tuple {
    if key_arity == 0 || key_arity >= t.values().len() {
        t.clone()
    } else {
        Tuple::new(t.values()[..key_arity].to_vec())
    }
}

fn record_key_read(reads: &RefCell<ReadTrace>, rel: RelId, key_arity: usize, key: &[Value]) {
    let mut reads = reads.borrow_mut();
    if key_arity == 0 {
        reads.whole.insert(rel);
    } else {
        reads
            .keys
            .entry(rel)
            .or_default()
            .insert(Tuple::new(key.to_vec()));
    }
}

fn check_arity(storage: &Storage, rel: RelId, t: &Tuple, func: &str) -> Result<(), DbError> {
    let arity = storage.relation(rel).arity();
    if t.values().len() != arity {
        return Err(DbError::Other(format!(
            "`{func}` stores {arity}-tuples, got {}",
            t.values().len()
        )));
    }
    Ok(())
}

/// First-committer-wins validation: intersect this transaction's read
/// and write footprints with the write-set of every version committed
/// after its snapshot pin. Returns the name of the first conflicting
/// relation, or `None` when the transaction is safe to commit.
fn validate(eng: &Amos, txn: &OpenTxn) -> Option<String> {
    let catalog = eng.catalog();
    let storage = eng.storage();
    // rel → key_arity, for projecting committed tuples to conflict keys.
    let mut key_arity_of: HashMap<RelId, usize> = HashMap::new();
    for def in catalog.iter() {
        if let PredKind::Stored { rel, key_arity } = def.kind {
            key_arity_of.insert(rel, key_arity);
        }
    }
    let reads = txn.reads.borrow();
    for v in storage.versions_since(txn.begin_seq) {
        for (rel, d) in &v.writes {
            let conflict = || Some(storage.relation(*rel).name().to_string());
            if reads.whole.contains(rel) {
                return conflict();
            }
            let ka = key_arity_of.get(rel).copied().unwrap_or(0);
            let wk = txn.write_keys.get(rel);
            let rk = reads.keys.get(rel);
            if wk.is_none() && rk.is_none() {
                continue;
            }
            for t in d.plus().iter().chain(d.minus()) {
                let k = conflict_key(t, ka);
                if wk.is_some_and(|s| s.contains(&k)) || rk.is_some_and(|s| s.contains(&k)) {
                    return conflict();
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared engine must be usable from many threads; a session is
    /// movable to a worker thread (`Send`) but owned by exactly one at
    /// a time (its read trace is a `RefCell`, deliberately not `Sync`).
    #[test]
    fn shared_engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<SharedEngine>();
        assert_send::<Session>();
    }
}
