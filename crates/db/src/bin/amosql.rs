//! Interactive AMOSQL shell.
//!
//! ```sh
//! cargo run -p amos-db --bin amosql
//! ```
//!
//! Reads statements (terminated by `;`) from stdin, executes them
//! against an in-memory [`Amos`] database, and prints results. A
//! `print` procedure is pre-registered so rule actions can produce
//! output. `.help` lists shell commands.

use std::io::{self, BufRead, Write};

use amos_db::{Amos, ExecResult};

const BANNER: &str = "\
amos-pdiff interactive shell — AMOSQL subset
(Sköld & Risch, ICDE'96 reproduction). `.help` for shell commands.";

const HELP: &str = "\
Shell commands:
  .help                 this text
  .stats                monitoring statistics for this session
  .mode <inc|naive|hybrid>   switch condition monitoring mode
  .quit                 exit
Everything else is AMOSQL, e.g.:
  create type item;
  create function quantity(item i) -> integer;
  create rule low() as when for each item i where quantity(i) < 10
      do print(i);
  create item instances :a;
  set quantity(:a) = 100;
  activate low();
  set quantity(:a) = 5;
  explain rule low;
  select i, quantity(i) for each item i;";

fn main() -> io::Result<()> {
    let mut db = Amos::new();
    db.register_procedure("print", |_ctx, args| {
        let rendered: Vec<String> = args.iter().map(|v| v.to_string()).collect();
        println!("  print: {}", rendered.join(", "));
        Ok(())
    });

    println!("{BANNER}");
    let stdin = io::stdin();
    let mut buffer = String::new();
    prompt(&buffer)?;
    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            match shell_command(&mut db, trimmed) {
                ShellOutcome::Continue => {}
                ShellOutcome::Quit => break,
            }
            prompt(&buffer)?;
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        // Execute once the buffer holds at least one full statement.
        if buffer.trim_end().ends_with(';') {
            let src = std::mem::take(&mut buffer);
            match db.execute(&src) {
                Ok(results) => {
                    for r in results {
                        render(&r);
                    }
                }
                Err(e) => println!("error: {e}"),
            }
        }
        prompt(&buffer)?;
    }
    Ok(())
}

fn prompt(buffer: &str) -> io::Result<()> {
    let p = if buffer.is_empty() {
        "amosql> "
    } else {
        "   ...> "
    };
    print!("{p}");
    io::stdout().flush()
}

enum ShellOutcome {
    Continue,
    Quit,
}

fn shell_command(db: &mut Amos, cmd: &str) -> ShellOutcome {
    match cmd {
        ".quit" | ".exit" => return ShellOutcome::Quit,
        ".help" => println!("{HELP}"),
        ".stats" => {
            let s = db.rules().stats();
            println!(
                "check phases {} | passes {} | differentials {} | candidates {} | \
                 rejected {} | naive recomputations {} | actions {}",
                s.check_phases,
                s.passes,
                s.differentials_executed,
                s.tuples_produced,
                s.tuples_rejected,
                s.naive_recomputations,
                s.actions_executed
            );
        }
        ".mode inc" | ".mode incremental" => {
            db.set_monitor_mode(amos_core::MonitorMode::Incremental);
            println!("monitoring: incremental (partial differencing)");
        }
        ".mode naive" => {
            db.set_monitor_mode(amos_core::MonitorMode::Naive);
            println!("monitoring: naive (full recomputation)");
        }
        ".mode hybrid" => {
            db.set_monitor_mode(amos_core::MonitorMode::Hybrid);
            println!("monitoring: hybrid (cost-based)");
        }
        other => println!("unknown shell command `{other}` — try .help"),
    }
    ShellOutcome::Continue
}

fn render(result: &ExecResult) {
    match result {
        ExecResult::Ok => {}
        ExecResult::Rows(rows) => {
            if rows.is_empty() {
                println!("(no rows)");
            }
            for row in rows {
                println!("{row}");
            }
        }
        ExecResult::Committed(summary) => {
            for (rule, n) in &summary.executed {
                println!("  rule {rule} fired for {n} instance(s)");
            }
        }
        ExecResult::Text(t) => print!("{t}"),
    }
}
