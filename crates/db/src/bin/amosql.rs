//! Interactive AMOSQL shell.
//!
//! ```sh
//! cargo run -p amos-db --bin amosql
//! ```
//!
//! Reads statements (terminated by `;`) from stdin, executes them
//! against an in-memory [`Amos`] database, and prints results. A
//! `print` procedure is pre-registered so rule actions can produce
//! output. `.help` lists shell commands.
//!
//! `amosql lint [--deny-lints] [--format text|json] <file.osql>…`
//! statically analyzes scripts instead of opening the shell: findings
//! print as `file:line:col: severity[code]: message` (or as one JSON
//! array with `--format json`, for CI artifacts), and the exit status
//! is 1 when any deny-level finding is reported (`--deny-lints`
//! escalates every warning).

use std::io::{self, BufRead, Write};

use amos_db::{Amos, ExecResult, ExecStrategy, LintConfig, Severity, WalConfig};

const BANNER: &str = "\
amos-pdiff interactive shell — AMOSQL subset
(Sköld & Risch, ICDE'96 reproduction). `.help` for shell commands.";

const HELP: &str = "\
Shell commands:
  .help                 this text
  .stats                monitoring statistics for this session
  .mode <inc|naive|hybrid>   switch condition monitoring mode
  .checkpoint           snapshot base relations + truncate the WAL
  .quit                 exit
Flags: --wal-dir <dir> makes commits durable (replays any existing
snapshot + WAL from <dir> on startup); --static-plans disables
statistics-driven adaptive differential planning; --strategy
<serial|parallel|sharded:N> picks the propagation execution strategy
(sharded:N partitions each wave-front level across N workers).
Subcommands: `amosql lint [--deny-lints] [--format text|json]
<file.osql>...` statically analyzes scripts (safety, stratification,
termination, dead differentials, unsatisfiable conditions, type
errors, empty/subsumed/foldable conditions) without executing them;
--format json emits one machine-readable array for CI artifacts.
Everything else is AMOSQL, e.g.:
  create type item;
  create function quantity(item i) -> integer;
  create rule low() as when for each item i where quantity(i) < 10
      do print(i);
  create item instances :a;
  set quantity(:a) = 100;
  activate low();
  set quantity(:a) = 5;
  explain rule low;
  select i, quantity(i) for each item i;";

fn main() -> io::Result<()> {
    if std::env::args().nth(1).as_deref() == Some("lint") {
        run_lint();
    }
    let mut db = Amos::new();
    db.register_procedure("print", |_ctx, args| {
        let rendered: Vec<String> = args.iter().map(|v| v.to_string()).collect();
        println!("  print: {}", rendered.join(", "));
        Ok(())
    });

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--wal-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("--wal-dir requires a directory argument");
                    std::process::exit(2);
                };
                match db.attach_wal(&dir, WalConfig::default()) {
                    Ok(info) => {
                        if info.snapshot_loaded || info.batches_replayed > 0 {
                            println!(
                                "recovered from {dir}: snapshot seq {} + {} batch(es) \
                                 ({} record(s)), last seq {}{}",
                                info.snapshot_seq,
                                info.batches_replayed,
                                info.records_replayed,
                                info.last_seq,
                                if info.torn_tail_bytes > 0 {
                                    format!(", {} torn byte(s) truncated", info.torn_tail_bytes)
                                } else {
                                    String::new()
                                }
                            );
                        } else {
                            println!("WAL attached at {dir} (empty — fresh database)");
                        }
                    }
                    Err(e) => {
                        eprintln!("cannot attach WAL at {dir}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--static-plans" => db.set_adaptive_planning(false),
            "--strategy" => {
                let Some(value) = args.next() else {
                    eprintln!("--strategy requires a value: serial, parallel, or sharded:N");
                    std::process::exit(2);
                };
                match ExecStrategy::parse(&value) {
                    Ok(strategy) => db.set_propagation_strategy(strategy),
                    Err(e) => {
                        eprint!("{}", render_strategy_error(&value, &e));
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown flag `{other}` (supported: --wal-dir <dir>, --static-plans, \
                     --strategy <serial|parallel|sharded:N>)"
                );
                std::process::exit(2);
            }
        }
    }

    println!("{BANNER}");
    let stdin = io::stdin();
    let mut buffer = String::new();
    prompt(&buffer)?;
    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            match shell_command(&mut db, trimmed) {
                ShellOutcome::Continue => {}
                ShellOutcome::Quit => break,
            }
            prompt(&buffer)?;
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        // Execute once the buffer holds at least one full statement.
        if buffer.trim_end().ends_with(';') {
            let src = std::mem::take(&mut buffer);
            match db.execute(&src) {
                Ok(results) => {
                    for r in results {
                        render(&r);
                    }
                }
                Err(e) => println!("error: {e}"),
            }
        }
        prompt(&buffer)?;
    }
    Ok(())
}

/// Caret-style diagnostic for a rejected `--strategy` value, pointing
/// at the offending slice of the input.
fn render_strategy_error(value: &str, e: &amos_db::StrategyParseError) -> String {
    let (start, len) = e.span;
    let prefix = "  --strategy ";
    format!(
        "error: invalid --strategy: {}\n{prefix}{value}\n{}{}\n",
        e.message,
        " ".repeat(prefix.len() + value[..start.min(value.len())].chars().count()),
        "^".repeat(len.max(1)),
    )
}

/// `amosql lint [--deny-lints] [--format text|json] <file.osql>…` —
/// never returns.
fn run_lint() -> ! {
    let mut config = LintConfig::default();
    let mut files: Vec<String> = Vec::new();
    let mut json = false;
    let mut args = std::env::args().skip(2);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-lints" => {
                config.deny_warnings();
            }
            "--format" => {
                match args.next().as_deref() {
                    Some("text") => json = false,
                    Some("json") => json = true,
                    other => {
                        eprintln!(
                            "--format requires `text` or `json` (got {})",
                            other.map_or("nothing".to_string(), |o| format!("`{o}`"))
                        );
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}` (supported: --deny-lints, --format text|json)");
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: amosql lint [--deny-lints] [--format text|json] <file.osql>...");
        std::process::exit(2);
    }
    let mut any_deny = false;
    let mut report: Vec<(String, Vec<amos_db::Diagnostic>)> = Vec::new();
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                std::process::exit(2);
            }
        };
        match amos_db::lint_script(&src, &config) {
            Ok(diags) => {
                for d in &diags {
                    if !json {
                        println!("{}", d.render(file));
                    }
                    any_deny |= d.severity == Severity::Deny;
                }
                report.push((file.clone(), diags));
            }
            Err(e) => {
                eprintln!("{file}: error: {e}");
                std::process::exit(2);
            }
        }
    }
    if json {
        print!("{}", amos_db::diagnostics_report_json(&report));
    } else if report.iter().all(|(_, d)| d.is_empty()) {
        println!("no lint findings in {} file(s)", files.len());
    }
    std::process::exit(if any_deny { 1 } else { 0 });
}

fn prompt(buffer: &str) -> io::Result<()> {
    let p = if buffer.is_empty() {
        "amosql> "
    } else {
        "   ...> "
    };
    print!("{p}");
    io::stdout().flush()
}

enum ShellOutcome {
    Continue,
    Quit,
}

fn shell_command(db: &mut Amos, cmd: &str) -> ShellOutcome {
    match cmd {
        ".quit" | ".exit" => return ShellOutcome::Quit,
        ".help" => println!("{HELP}"),
        ".stats" => {
            let s = db.rules().stats();
            println!(
                "check phases {} | passes {} | differentials {} | candidates {} | \
                 rejected {} | naive recomputations {} | actions {} | failed {}",
                s.check_phases,
                s.passes,
                s.differentials_executed,
                s.tuples_produced,
                s.tuples_rejected,
                s.naive_recomputations,
                s.actions_executed,
                s.actions_failed
            );
            for (id, reason) in db.rules().quarantined() {
                println!("  quarantined: {} — {reason}", db.rules().rule(*id).name);
            }
        }
        ".mode inc" | ".mode incremental" => {
            db.set_monitor_mode(amos_core::MonitorMode::Incremental);
            println!("monitoring: incremental (partial differencing)");
        }
        ".mode naive" => {
            db.set_monitor_mode(amos_core::MonitorMode::Naive);
            println!("monitoring: naive (full recomputation)");
        }
        ".mode hybrid" => {
            db.set_monitor_mode(amos_core::MonitorMode::Hybrid);
            println!("monitoring: hybrid (cost-based)");
        }
        ".checkpoint" => {
            if !db.wal_attached() {
                println!("no WAL attached — start with --wal-dir <dir>");
            } else {
                match db.checkpoint() {
                    Ok(()) => println!("checkpoint written; WAL truncated"),
                    Err(e) => println!("checkpoint failed: {e}"),
                }
            }
        }
        other => println!("unknown shell command `{other}` — try .help"),
    }
    ShellOutcome::Continue
}

fn render(result: &ExecResult) {
    match result {
        ExecResult::Ok => {}
        ExecResult::Rows(rows) => {
            if rows.is_empty() {
                println!("(no rows)");
            }
            for row in rows {
                println!("{row}");
            }
        }
        ExecResult::Committed(summary) => {
            for (rule, n) in &summary.executed {
                println!("  rule {rule} fired for {n} instance(s)");
            }
        }
        ExecResult::Text(t) => print!("{t}"),
    }
}
