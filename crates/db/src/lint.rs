//! Script-level lint driver: statically analyze an AMOSQL script
//! without executing its updates, queries, or activations.
//!
//! The driver loads only the schema-shaping statements (`create type`,
//! `create function`, `create rule`) into a throwaway [`Amos`] built
//! with an all-allow lint configuration (so nothing is refused while
//! loading), reporting definition-time rejections — unsafe clauses,
//! recursion violations — as L001/L002 diagnostics anchored to the
//! statement's `line:col`. Rule conditions are additionally pre-checked
//! with [`amos_lint::check_safety`] *before* definition, which reports
//! **every** unsafe variable under its source name (the catalog's own
//! range-restriction check stops at the first and rejects the clause).
//! Once the catalog is loaded, the full catalog-level passes
//! (L002–L005 plus the abstract-interpretation passes L006–L009) run
//! under the caller's configuration via [`Amos::lint_all`].
//!
//! This is what `amosql lint [--deny-lints] file…` runs per file.

use amos_amosql::ast::Statement;
use amos_amosql::compiler::compile_predicate_at;
use amos_amosql::parser::parse_spanned;
use amos_lint::{check_safety, Diagnostic, LintCode, LintConfig, Severity, Span};
use amos_objectlog::clause::Var;
use amos_objectlog::ObjectLogError;

use crate::engine::{Amos, EngineOptions};
use crate::error::DbError;

/// Statically lint an AMOSQL script. Returns every finding at the
/// severities in `config`, ordered by source position. Parse errors and
/// non-lint definition failures (unknown types, arity mismatches, …)
/// are hard errors.
pub fn lint_script(src: &str, config: &LintConfig) -> Result<Vec<Diagnostic>, DbError> {
    let stmts = parse_spanned(src)?;
    let mut db = Amos::with_options(EngineOptions {
        // Loading must never refuse: the point is to report, not stop
        // at the first deny-level finding.
        lint_level: LintConfig::uniform(Severity::Allow),
        ..EngineOptions::default()
    });
    let mut diags: Vec<Diagnostic> = Vec::new();
    for s in stmts {
        let at = Some((s.line, s.col));
        let span = Some(Span::new(s.line, s.col));
        match s.node {
            Statement::CreateType { .. } | Statement::CreateFunction { .. } => {
                if let Err(e) = db.exec_statement(s.node, at) {
                    match as_lint(&e, config, span) {
                        Some(d) => diags.extend(d),
                        None => return Err(e),
                    }
                }
            }
            Statement::CreateRule {
                ref name,
                ref params,
                ref condition,
                ..
            } => {
                // Pre-check safety on the compiled condition so every
                // offending variable is reported by its source name.
                let q = compile_predicate_at(
                    &db.query_env(),
                    &condition.for_each,
                    &condition.predicate,
                    params,
                    at,
                )?;
                let names: Vec<String> = params
                    .iter()
                    .map(|p| p.var.clone())
                    .chain(condition.for_each.iter().map(|tv| tv.var.clone()))
                    .collect();
                let name_of = |v: Var| {
                    names
                        .get(v.0 as usize)
                        .cloned()
                        .unwrap_or_else(|| format!("_G{}", v.0))
                };
                let mut unsafe_found = false;
                for c in &q.clauses {
                    let found = check_safety(config, c, &name_of, span, Some(name));
                    unsafe_found |= !found.is_empty();
                    diags.extend(found);
                }
                if unsafe_found {
                    // The catalog would reject the definition anyway;
                    // skip it and keep linting the rest of the script.
                    continue;
                }
                if let Err(e) = db.exec_statement(s.node, at) {
                    match as_lint(&e, config, span) {
                        Some(d) => diags.extend(d),
                        None => return Err(e),
                    }
                }
            }
            Statement::DropRule(_) => {
                // Keep the linted rule set in sync with the script.
                let _ = db.exec_statement(s.node, at);
            }
            // Updates, queries, activations, transactions: not executed —
            // lint is static.
            _ => {}
        }
    }
    db.options.lint_level = config.clone();
    diags.extend(db.lint_all());
    diags.sort_by_key(|d| (d.span.map(|s| (s.line, s.col)), d.code, d.message.clone()));
    diags.dedup();
    Ok(diags)
}

/// Map a definition-time rejection to the lint diagnostic it embodies:
/// range restriction (L001) or recursion/stratification (L002). `None`
/// for everything else (a hard script error).
fn as_lint(e: &DbError, config: &LintConfig, span: Option<Span>) -> Option<Vec<Diagnostic>> {
    let DbError::ObjectLog(ol) = e else {
        return None;
    };
    let d = match ol {
        ObjectLogError::UnsafeClause { pred, var } => config.diag(
            LintCode::L001,
            span,
            Some(pred),
            format!(
                "clause is not range-restricted: variable _G{} is never bound",
                var.0
            ),
        ),
        ObjectLogError::RecursivePredicate(pred) => config.diag(
            LintCode::L002,
            span,
            Some(pred),
            "recursion violates the stratified level order \
             (negated self-reference or non-linear recursion)"
                .to_string(),
        ),
        _ => return None,
    };
    // `Allow` suppresses the diagnostic but the definition still failed;
    // swallowing it silently is correct for a lint driver.
    Some(d.into_iter().collect())
}
