//! Engine-level errors.

use std::fmt;

use amos_amosql::ParseError;
use amos_core::CoreError;
use amos_lint::Diagnostic;
use amos_objectlog::ObjectLogError;
use amos_storage::StorageError;
use amos_types::typesys::TypeError;
use amos_types::ValueError;

/// Any error surfaced by [`crate::Amos`].
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// AMOSQL syntax or compilation error.
    Parse(ParseError),
    /// Rule-monitoring core error.
    Core(CoreError),
    /// ObjectLog error.
    ObjectLog(ObjectLogError),
    /// Storage error.
    Storage(StorageError),
    /// Type-system error.
    Type(TypeError),
    /// Value-level error (arithmetic in scalar evaluation).
    Value(ValueError),
    /// Deny-level lint findings refused an `activate`.
    Lint(Vec<Diagnostic>),
    /// The compiled propagation network failed conformance verification
    /// against the differencing calculus (`amos_core::verify`) — an
    /// `activate` was rolled back rather than installing a network that
    /// could lose or double-count updates.
    Conformance(Vec<String>),
    /// Commit-time validation detected a conflicting concurrent commit
    /// (first-committer-wins): the transaction was aborted and its
    /// buffered writes discarded. Retryable — replaying the same
    /// statements in a fresh transaction may succeed.
    TxnConflict {
        /// Name of the relation the conflict was detected on.
        relation: String,
    },
    /// Anything else, with a message.
    Other(String),
}

impl DbError {
    /// True for errors a client can resolve by simply retrying the
    /// transaction (serialization conflicts, not semantic failures).
    pub fn is_retryable(&self) -> bool {
        matches!(self, DbError::TxnConflict { .. })
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "parse error: {e}"),
            DbError::Core(e) => write!(f, "rule error: {e}"),
            DbError::ObjectLog(e) => write!(f, "query error: {e}"),
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::Type(e) => write!(f, "type error: {e}"),
            DbError::Value(e) => write!(f, "value error: {e}"),
            DbError::Lint(diags) => {
                write!(f, "lint: rule refused by static analysis")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            DbError::Conformance(violations) => {
                write!(f, "conformance: network rejected at activation")?;
                for v in violations {
                    write!(f, "\n  {v}")?;
                }
                Ok(())
            }
            DbError::TxnConflict { relation } => write!(
                f,
                "transaction conflict on `{relation}`: a concurrent \
                 transaction committed first; retry"
            ),
            DbError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Parse(e)
    }
}

impl From<CoreError> for DbError {
    fn from(e: CoreError) -> Self {
        DbError::Core(e)
    }
}

impl From<ObjectLogError> for DbError {
    fn from(e: ObjectLogError) -> Self {
        DbError::ObjectLog(e)
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

impl From<TypeError> for DbError {
    fn from(e: TypeError) -> Self {
        DbError::Type(e)
    }
}

impl From<ValueError> for DbError {
    fn from(e: ValueError) -> Self {
        DbError::Value(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DbError::Other("x".into()).to_string().contains('x'));
        let e: DbError = ParseError::new(1, 2, "bad").into();
        assert_eq!(e.to_string(), "parse error: 1:2: bad");
    }
}
