//! # amos-db
//!
//! The engine façade: a complete, embeddable active object-relational
//! database reproducing the rule-monitoring architecture of AMOS
//! (Sköld & Risch, ICDE'96).
//!
//! [`Amos`] ties the substrates together — storage, catalog, type
//! system, AMOSQL compiler, and the partial-differencing rule manager —
//! behind a textual interface:
//!
//! ```
//! use amos_db::Amos;
//!
//! let mut db = Amos::new();
//! db.execute(r#"
//!     create type item;
//!     create function quantity(item i) -> integer;
//!     create item instances :pen, :ink;
//!     set quantity(:pen) = 100;
//! "#).unwrap();
//! let rows = db.query("select quantity(:pen);").unwrap();
//! assert_eq!(rows.len(), 1);
//! ```
//!
//! Rule conditions are monitored with the paper's partial differencing
//! by default; the naive §6 baseline and the §8 hybrid mode are a
//! [`Amos::set_monitor_mode`] call away, which is how the benchmark
//! harness compares them.

pub mod engine;
pub mod error;
pub mod lint;
pub mod session;

pub use amos_core::propagate::StrategyParseError;
pub use amos_core::{CheckLevel, ExecStrategy, MonitorMode, RuleSemantics};
pub use amos_lint::{
    diagnostics_report_json, diagnostics_to_json, Diagnostic, LintCode, LintConfig, Severity, Span,
};
pub use amos_storage::{CommitWaiter, RecoveryInfo, Savepoint, WalConfig, WalMetrics};
pub use amos_types::{Oid, Tuple, Value};
pub use engine::{Amos, EngineOptions, ExecResult, NetworkPrep, ProcCtx, ProcedureFn};
pub use error::DbError;
pub use lint::lint_script;
pub use session::{CommitMetrics, Session, SharedEngine};
