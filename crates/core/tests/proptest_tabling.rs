//! Per-pass tabling is a pure caching layer: for random databases,
//! random condition shapes, and random update transactions, propagation
//! with the derived-call memo table enabled produces bit-identical
//! condition Δ-sets (and identical work counters) to propagation with
//! tabling disabled — under every §7.2 check level and both execution
//! strategies.
//!
//! The memo is safe because storage is frozen for the duration of a
//! check phase and derived-predicate source clauses never contain
//! Δ-literals, so a `(pred, pattern, epoch)` call is referentially
//! transparent within one pass. This suite is the property-level
//! enforcement of that argument.

use amos_core::differ::DiffScope;
use amos_core::network::PropagationNetwork;
use amos_core::propagate::{propagate_shared, CheckLevel, ExecStrategy};
use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::clause::{ClauseBuilder, Term};
use amos_objectlog::eval::{EvalConfig, EvalShared};
use amos_storage::{RelId, Storage};
use amos_types::{tuple, ArithOp, CmpOp, Tuple, TypeId};
use proptest::prelude::*;
use std::sync::Arc;

fn sig(n: usize) -> Vec<TypeId> {
    vec![TypeId(0); n]
}

struct World {
    storage: Storage,
    catalog: Catalog,
    rq: RelId,
    rr: RelId,
    cond: PredId,
}

/// Build a world with base relations q/2, r/2 and a condition of the
/// given shape (same shape table as `proptest_equivalence`). Shape 4 is
/// the important one here: the bushy network keeps `mid` as a derived
/// node, so Nervous/Strict re-checks issue `PlanStep::Call`s that the
/// memo table actually caches.
fn build_world(shape: u8, q0: &[Tuple], r0: &[Tuple]) -> World {
    let mut storage = Storage::new();
    let rq = storage.create_relation("q", 2).unwrap();
    let rr = storage.create_relation("r", 2).unwrap();
    let mut catalog = Catalog::new();
    let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
    let r = catalog.define_stored("r", sig(2), rr, 1).unwrap();

    let cond = match shape % 6 {
        // join: p(X,Z) ← q(X,Y) ∧ r(Y,Z)
        0 => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap(),
        // selection + arithmetic: p(X) ← q(X,V) ∧ W = V*2 ∧ W < 6
        1 => catalog
            .define_derived(
                "cond",
                sig(1),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .arith(Term::var(2), Term::var(1), ArithOp::Mul, Term::val(2))
                    .cmp(Term::var(2), CmpOp::Lt, Term::val(6))
                    .build()],
            )
            .unwrap(),
        // negation: p(X,Y) ← q(X,Y) ∧ ¬r(X,Y)
        2 => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .not_pred(r, [Term::var(0), Term::var(1)])
                    .build()],
            )
            .unwrap(),
        // disjunction: p(X) ← q(X,_) ; p(X) ← r(_,X)
        3 => catalog
            .define_derived(
                "cond",
                sig(1),
                vec![
                    ClauseBuilder::new(2)
                        .head([Term::var(0)])
                        .pred(q, [Term::var(0), Term::var(1)])
                        .build(),
                    ClauseBuilder::new(2)
                        .head([Term::var(0)])
                        .pred(r, [Term::var(1), Term::var(0)])
                        .build(),
                ],
            )
            .unwrap(),
        // bushy: mid(X,Z) ← q(X,Y) ∧ r(Y,Z); p(X) ← mid(X,Z) ∧ Z < 4
        4 => {
            let mid = catalog
                .define_derived(
                    "mid",
                    sig(2),
                    vec![ClauseBuilder::new(3)
                        .head([Term::var(0), Term::var(2)])
                        .pred(q, [Term::var(0), Term::var(1)])
                        .pred(r, [Term::var(1), Term::var(2)])
                        .build()],
                )
                .unwrap();
            catalog
                .define_derived(
                    "cond",
                    sig(1),
                    vec![ClauseBuilder::new(2)
                        .head([Term::var(0)])
                        .pred(mid, [Term::var(0), Term::var(1)])
                        .cmp(Term::var(1), CmpOp::Lt, Term::val(4))
                        .build()],
                )
                .unwrap()
        }
        // self-join: p(X,Z) ← q(X,Y) ∧ q(Y,Z)
        _ => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap(),
    };

    for t in q0 {
        storage.insert(rq, t.clone()).unwrap();
    }
    for t in r0 {
        storage.insert(rr, t.clone()).unwrap();
    }
    storage.monitor(rq);
    storage.monitor(rr);
    World {
        storage,
        catalog,
        rq,
        rr,
        cond,
    }
}

fn small_tuple() -> impl Strategy<Value = Tuple> {
    (0i64..5, 0i64..5).prop_map(|(a, b)| tuple![a, b])
}

fn tuples() -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(small_tuple(), 0..10)
}

fn updates() -> impl Strategy<Value = Vec<(bool, bool, Tuple)>> {
    prop::collection::vec((any::<bool>(), any::<bool>(), small_tuple()), 0..15)
}

fn shared(tabling: bool) -> Arc<EvalShared> {
    Arc::new(EvalShared::new(EvalConfig {
        tabling,
        ..EvalConfig::default()
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tabled ≡ untabled under every check level (serial execution):
    /// identical condition Δ-sets, identical candidate/rejection
    /// counters, identical fired-differential order. The only permitted
    /// difference is the hit/miss counters themselves.
    #[test]
    fn tabled_equals_untabled_all_check_levels(
        shape in 0u8..6,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();
        w.storage.begin().unwrap();
        for (on_q, is_insert, t) in &ups {
            let rel = if *on_q { w.rq } else { w.rr };
            if *is_insert {
                w.storage.insert(rel, t.clone()).unwrap();
            } else {
                w.storage.delete(rel, t).unwrap();
            }
        }
        for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            let tabled = propagate_shared(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Serial, &shared(true),
            ).unwrap();
            let untabled = propagate_shared(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Serial, &shared(false),
            ).unwrap();
            prop_assert_eq!(
                &tabled.condition_deltas, &untabled.condition_deltas,
                "Δ-sets diverged (shape {}, check {:?})", shape, check
            );
            prop_assert_eq!(
                tabled.metrics.candidates, untabled.metrics.candidates,
                "candidate counts diverged (shape {}, check {:?})", shape, check
            );
            prop_assert_eq!(
                tabled.metrics.rejected, untabled.metrics.rejected,
                "rejection counts diverged (shape {}, check {:?})", shape, check
            );
            let fired = |r: &amos_core::propagate::PropagationResult| -> Vec<_> {
                r.fired.iter().map(|f| f.diff).collect()
            };
            prop_assert_eq!(
                fired(&tabled), fired(&untabled),
                "fired order diverged (shape {}, check {:?})", shape, check
            );
            prop_assert_eq!(
                untabled.metrics.tabling_hits, 0,
                "untabled run recorded memo hits (shape {}, check {:?})", shape, check
            );
            prop_assert_eq!(
                untabled.metrics.tabling_misses, 0,
                "untabled run recorded memo misses (shape {}, check {:?})", shape, check
            );
        }
    }

    /// Tabled parallel ≡ untabled serial: the memo table composes with
    /// the parallel wave-front without changing semantics.
    #[test]
    fn tabled_parallel_equals_untabled_serial(
        shape in 0u8..6,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();
        w.storage.begin().unwrap();
        for (on_q, is_insert, t) in &ups {
            let rel = if *on_q { w.rq } else { w.rr };
            if *is_insert {
                w.storage.insert(rel, t.clone()).unwrap();
            } else {
                w.storage.delete(rel, t).unwrap();
            }
        }
        for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            let tabled = propagate_shared(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Parallel, &shared(true),
            ).unwrap();
            let untabled = propagate_shared(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Serial, &shared(false),
            ).unwrap();
            prop_assert_eq!(
                &tabled.condition_deltas, &untabled.condition_deltas,
                "Δ-sets diverged (shape {}, check {:?})", shape, check
            );
        }
    }

    /// A reused `EvalShared` (the long-lived engine path: one shared
    /// state across many passes, `reset_pass` between them) behaves
    /// exactly like a fresh one per pass.
    #[test]
    fn reused_shared_state_is_transparent(
        shape in 0u8..6,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();
        let reused = shared(true);
        w.storage.begin().unwrap();
        for (on_q, is_insert, t) in &ups {
            let rel = if *on_q { w.rq } else { w.rr };
            if *is_insert {
                w.storage.insert(rel, t.clone()).unwrap();
            } else {
                w.storage.delete(rel, t).unwrap();
            }
        }
        for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            // First pass on the reused state, then a second with stale
            // memo entries cleared — both must match a fresh shared.
            reused.reset_pass();
            let warm = propagate_shared(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Serial, &reused,
            ).unwrap();
            reused.reset_pass();
            let again = propagate_shared(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Serial, &reused,
            ).unwrap();
            let fresh = propagate_shared(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Serial, &shared(true),
            ).unwrap();
            prop_assert_eq!(&warm.condition_deltas, &fresh.condition_deltas);
            prop_assert_eq!(&again.condition_deltas, &fresh.condition_deltas);
        }
    }
}
