//! Adaptive planning is an optimization, not a semantics change: for
//! random databases, condition shapes, and update transactions, the
//! statistics-driven planner (cardinality-aware literal ordering, plan
//! cache with fingerprint-drift re-optimization, Δ-set index probes)
//! produces condition Δ-sets identical to the static activation-time
//! plans — under every §7.2 check level and both execution strategies.

use std::sync::Arc;

use amos_core::adaptive::AdaptivePlanner;
use amos_core::differ::DiffScope;
use amos_core::network::PropagationNetwork;
use amos_core::propagate::{
    propagate_adaptive, propagate_with, recompute_delta, CheckLevel, ExecStrategy,
};
use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::clause::{ClauseBuilder, Term};
use amos_objectlog::eval::EvalShared;
use amos_storage::{RelId, Storage};
use amos_types::{tuple, ArithOp, CmpOp, Tuple, TypeId};
use proptest::prelude::*;

fn sig(n: usize) -> Vec<TypeId> {
    vec![TypeId(0); n]
}

struct World {
    storage: Storage,
    catalog: Catalog,
    rq: RelId,
    rr: RelId,
    cond: PredId,
}

/// Same shape zoo as `proptest_equivalence`: join, selection+arith,
/// negation, disjunction, bushy, self-join over q/2 and r/2.
fn build_world(shape: u8, q0: &[Tuple], r0: &[Tuple]) -> World {
    let mut storage = Storage::new();
    let rq = storage.create_relation("q", 2).unwrap();
    let rr = storage.create_relation("r", 2).unwrap();
    let mut catalog = Catalog::new();
    let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
    let r = catalog.define_stored("r", sig(2), rr, 1).unwrap();

    let cond = match shape % 6 {
        0 => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap(),
        1 => catalog
            .define_derived(
                "cond",
                sig(1),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .arith(Term::var(2), Term::var(1), ArithOp::Mul, Term::val(2))
                    .cmp(Term::var(2), CmpOp::Lt, Term::val(6))
                    .build()],
            )
            .unwrap(),
        2 => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .not_pred(r, [Term::var(0), Term::var(1)])
                    .build()],
            )
            .unwrap(),
        3 => catalog
            .define_derived(
                "cond",
                sig(1),
                vec![
                    ClauseBuilder::new(2)
                        .head([Term::var(0)])
                        .pred(q, [Term::var(0), Term::var(1)])
                        .build(),
                    ClauseBuilder::new(2)
                        .head([Term::var(0)])
                        .pred(r, [Term::var(1), Term::var(0)])
                        .build(),
                ],
            )
            .unwrap(),
        4 => {
            let mid = catalog
                .define_derived(
                    "mid",
                    sig(2),
                    vec![ClauseBuilder::new(3)
                        .head([Term::var(0), Term::var(2)])
                        .pred(q, [Term::var(0), Term::var(1)])
                        .pred(r, [Term::var(1), Term::var(2)])
                        .build()],
                )
                .unwrap();
            catalog
                .define_derived(
                    "cond",
                    sig(1),
                    vec![ClauseBuilder::new(2)
                        .head([Term::var(0)])
                        .pred(mid, [Term::var(0), Term::var(1)])
                        .cmp(Term::var(1), CmpOp::Lt, Term::val(4))
                        .build()],
                )
                .unwrap()
        }
        _ => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap(),
    };

    for t in q0 {
        storage.insert(rq, t.clone()).unwrap();
    }
    for t in r0 {
        storage.insert(rr, t.clone()).unwrap();
    }
    storage.monitor(rq);
    storage.monitor(rr);
    World {
        storage,
        catalog,
        rq,
        rr,
        cond,
    }
}

fn small_tuple() -> impl Strategy<Value = Tuple> {
    (0i64..5, 0i64..5).prop_map(|(a, b)| tuple![a, b])
}

fn tuples() -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(small_tuple(), 0..10)
}

fn updates() -> impl Strategy<Value = Vec<(bool, bool, Tuple)>> {
    prop::collection::vec((any::<bool>(), any::<bool>(), small_tuple()), 0..15)
}

fn apply(w: &mut World, ups: &[(bool, bool, Tuple)]) {
    for (on_q, is_insert, t) in ups {
        let rel = if *on_q { w.rq } else { w.rr };
        if *is_insert {
            w.storage.insert(rel, t.clone()).unwrap();
        } else {
            w.storage.delete(rel, t).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adaptive ≡ static condition Δ-sets for every shape, every check
    /// level, and both execution strategies — with one long-lived
    /// planner across all six combinations, so later combinations run
    /// against a warm (possibly drifted) plan cache.
    #[test]
    fn adaptive_equals_static_under_all_checks_and_strategies(
        shape in 0u8..6,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();
        w.storage.begin().unwrap();
        apply(&mut w, &ups);

        let planner = AdaptivePlanner::new();
        for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            for strategy in [ExecStrategy::Serial, ExecStrategy::Parallel] {
                let fixed = propagate_with(
                    &net, &w.catalog, &w.storage, check, strategy,
                ).unwrap();
                let adaptive = propagate_adaptive(
                    &net, &w.catalog, &w.storage, check, strategy,
                    &Arc::new(EvalShared::default()), Some(&planner),
                ).unwrap();
                prop_assert_eq!(
                    &fixed.condition_deltas, &adaptive.condition_deltas,
                    "adaptive diverged from static (shape {}, check {:?}, strategy {:?})",
                    shape, check, strategy
                );
                prop_assert_eq!(
                    fixed.candidates, adaptive.candidates,
                    "candidate counts diverged (shape {}, check {:?}, strategy {:?})",
                    shape, check, strategy
                );
            }
        }
    }

    /// Adaptive serial ≡ adaptive parallel: plan resolution happens
    /// sequentially before the batch, so the planner does not break the
    /// §5 determinism guarantee — Δ-sets, counters, and fired order all
    /// match, and each strategy resolves the same plans (same replan /
    /// cache-hit totals from identical warm planners).
    #[test]
    fn adaptive_serial_and_parallel_agree(
        shape in 0u8..6,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();
        w.storage.begin().unwrap();
        apply(&mut w, &ups);

        for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            let serial_planner = AdaptivePlanner::new();
            let parallel_planner = AdaptivePlanner::new();
            let serial = propagate_adaptive(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Serial,
                &Arc::new(EvalShared::default()), Some(&serial_planner),
            ).unwrap();
            let parallel = propagate_adaptive(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Parallel,
                &Arc::new(EvalShared::default()), Some(&parallel_planner),
            ).unwrap();
            prop_assert_eq!(
                &serial.condition_deltas, &parallel.condition_deltas,
                "Δ-sets diverged (shape {}, check {:?})", shape, check
            );
            prop_assert_eq!(serial.metrics.candidates, parallel.metrics.candidates);
            prop_assert_eq!(serial.metrics.rejected, parallel.metrics.rejected);
            let fired = |r: &amos_core::propagate::PropagationResult| -> Vec<_> {
                r.fired.iter().map(|f| f.diff).collect()
            };
            prop_assert_eq!(fired(&serial), fired(&parallel));
            prop_assert_eq!(
                serial_planner.replan_count(), parallel_planner.replan_count(),
                "replan counts diverged (shape {}, check {:?})", shape, check
            );
            prop_assert_eq!(serial_planner.hit_count(), parallel_planner.hit_count());
        }
    }

    /// Multi-pass adaptive monitoring stays exact while the data (and
    /// therefore the statistics fingerprints) drift across committed
    /// transactions: each pass's strict adaptive Δ equals the naive
    /// recomputation diff, with one planner reused throughout.
    #[test]
    fn adaptive_stays_exact_across_drifting_passes(
        shape in 0u8..6,
        q0 in tuples(),
        r0 in tuples(),
        batches in prop::collection::vec(updates(), 1..4),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();
        let planner = AdaptivePlanner::new();
        let shared = Arc::new(EvalShared::default());

        for ups in &batches {
            w.storage.begin().unwrap();
            apply(&mut w, ups);
            shared.reset_pass();
            let result = propagate_adaptive(
                &net, &w.catalog, &w.storage, CheckLevel::Strict,
                ExecStrategy::Parallel, &shared, Some(&planner),
            ).unwrap();
            let truth = recompute_delta(&w.catalog, &w.storage, w.cond).unwrap();
            prop_assert_eq!(
                &result.condition_deltas[&w.cond], &truth,
                "adaptive pass diverged from naive diff (shape {})", shape
            );
            w.storage.commit().unwrap();
        }
    }
}
