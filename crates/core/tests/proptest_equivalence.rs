//! The central correctness theorem of the reproduction, property-tested:
//! for random databases, random condition shapes, and random update
//! transactions, the incrementally propagated condition delta equals the
//! naive recomputation diff.
//!
//! Shapes exercised: conjunctive joins (the paper's running example),
//! selections with arithmetic, negation, disjunction (multi-clause),
//! flat and bushy (intermediate-node) networks, and repeated influent
//! occurrences (self-joins).

use std::collections::HashSet;

use amos_core::differ::DiffScope;
use amos_core::network::PropagationNetwork;
use amos_core::propagate::{propagate, propagate_with, recompute_delta, CheckLevel, ExecStrategy};
use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::clause::{ClauseBuilder, Term};
use amos_storage::{RelId, Storage};
use amos_types::{tuple, ArithOp, CmpOp, Tuple, TypeId};
use proptest::prelude::*;

fn sig(n: usize) -> Vec<TypeId> {
    vec![TypeId(0); n]
}

struct World {
    storage: Storage,
    catalog: Catalog,
    rq: RelId,
    rr: RelId,
    cond: PredId,
}

/// Build a world with base relations q/2, r/2, a condition of the given
/// shape, and initial contents.
fn build_world(shape: u8, q0: &[Tuple], r0: &[Tuple]) -> World {
    let mut storage = Storage::new();
    let rq = storage.create_relation("q", 2).unwrap();
    let rr = storage.create_relation("r", 2).unwrap();
    let mut catalog = Catalog::new();
    let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
    let r = catalog.define_stored("r", sig(2), rr, 1).unwrap();

    let cond = match shape % 6 {
        // join: p(X,Z) ← q(X,Y) ∧ r(Y,Z)
        0 => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap(),
        // selection + arithmetic: p(X) ← q(X,V) ∧ W = V*2 ∧ W < 6
        1 => catalog
            .define_derived(
                "cond",
                sig(1),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .arith(Term::var(2), Term::var(1), ArithOp::Mul, Term::val(2))
                    .cmp(Term::var(2), CmpOp::Lt, Term::val(6))
                    .build()],
            )
            .unwrap(),
        // negation: p(X,Y) ← q(X,Y) ∧ ¬r(X,Y)
        2 => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .not_pred(r, [Term::var(0), Term::var(1)])
                    .build()],
            )
            .unwrap(),
        // disjunction: p(X) ← q(X,_) ; p(X) ← r(_,X)
        3 => catalog
            .define_derived(
                "cond",
                sig(1),
                vec![
                    ClauseBuilder::new(2)
                        .head([Term::var(0)])
                        .pred(q, [Term::var(0), Term::var(1)])
                        .build(),
                    ClauseBuilder::new(2)
                        .head([Term::var(0)])
                        .pred(r, [Term::var(1), Term::var(0)])
                        .build(),
                ],
            )
            .unwrap(),
        // bushy: mid(X,Z) ← q(X,Y) ∧ r(Y,Z); p(X) ← mid(X,Z) ∧ Z < 4
        4 => {
            let mid = catalog
                .define_derived(
                    "mid",
                    sig(2),
                    vec![ClauseBuilder::new(3)
                        .head([Term::var(0), Term::var(2)])
                        .pred(q, [Term::var(0), Term::var(1)])
                        .pred(r, [Term::var(1), Term::var(2)])
                        .build()],
                )
                .unwrap();
            catalog
                .define_derived(
                    "cond",
                    sig(1),
                    vec![ClauseBuilder::new(2)
                        .head([Term::var(0)])
                        .pred(mid, [Term::var(0), Term::var(1)])
                        .cmp(Term::var(1), CmpOp::Lt, Term::val(4))
                        .build()],
                )
                .unwrap()
        }
        // self-join: p(X,Z) ← q(X,Y) ∧ q(Y,Z)
        _ => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap(),
    };

    for t in q0 {
        storage.insert(rq, t.clone()).unwrap();
    }
    for t in r0 {
        storage.insert(rr, t.clone()).unwrap();
    }
    storage.monitor(rq);
    storage.monitor(rr);
    World {
        storage,
        catalog,
        rq,
        rr,
        cond,
    }
}

fn small_tuple() -> impl Strategy<Value = Tuple> {
    (0i64..5, 0i64..5).prop_map(|(a, b)| tuple![a, b])
}

fn tuples() -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(small_tuple(), 0..10)
}

fn updates() -> impl Strategy<Value = Vec<(bool, bool, Tuple)>> {
    prop::collection::vec((any::<bool>(), any::<bool>(), small_tuple()), 0..15)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Strict propagation == naive recomputation for every shape.
    #[test]
    fn incremental_equals_naive(
        shape in 0u8..6,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();

        w.storage.begin().unwrap();
        for (on_q, is_insert, t) in &ups {
            let rel = if *on_q { w.rq } else { w.rr };
            if *is_insert {
                w.storage.insert(rel, t.clone()).unwrap();
            } else {
                w.storage.delete(rel, t).unwrap();
            }
        }

        let result = propagate(&net, &w.catalog, &w.storage, CheckLevel::Strict).unwrap();
        let truth = recompute_delta(&w.catalog, &w.storage, w.cond).unwrap();
        prop_assert_eq!(
            &result.condition_deltas[&w.cond], &truth,
            "shape {} diverged", shape
        );
    }

    /// Nervous propagation never misses a change (no under-reaction):
    /// real insertions ⊆ Δ₊, reported deletions ⊆ real deletions, and all
    /// real deletions are reported.
    #[test]
    fn nervous_never_under_reacts(
        shape in 0u8..6,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();
        w.storage.begin().unwrap();
        for (on_q, is_insert, t) in &ups {
            let rel = if *on_q { w.rq } else { w.rr };
            if *is_insert {
                w.storage.insert(rel, t.clone()).unwrap();
            } else {
                w.storage.delete(rel, t).unwrap();
            }
        }
        let result = propagate(&net, &w.catalog, &w.storage, CheckLevel::Nervous).unwrap();
        let truth = recompute_delta(&w.catalog, &w.storage, w.cond).unwrap();
        let got = &result.condition_deltas[&w.cond];

        for t in truth.plus() {
            prop_assert!(got.plus().contains(t), "missed insertion {t} (shape {shape})");
        }
        for t in truth.minus() {
            prop_assert!(got.minus().contains(t), "missed deletion {t} (shape {shape})");
        }
        // The mandatory check: every reported deletion is real.
        for t in got.minus() {
            prop_assert!(truth.minus().contains(t), "false deletion {t} (shape {shape})");
        }
    }

    /// Insertion-only transactions through monotone shapes: the
    /// InsertionsOnly scope (half the differentials) is still exact.
    #[test]
    fn insertions_only_scope_exact_for_monotone(
        shape in prop::sample::select(vec![0u8, 1, 3, 4, 5]), // no negation
        q0 in tuples(),
        r0 in tuples(),
        ins in prop::collection::vec((any::<bool>(), small_tuple()), 0..10),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::InsertionsOnly,
        ).unwrap();
        w.storage.begin().unwrap();
        for (on_q, t) in &ins {
            let rel = if *on_q { w.rq } else { w.rr };
            w.storage.insert(rel, t.clone()).unwrap();
        }
        let result = propagate(&net, &w.catalog, &w.storage, CheckLevel::Strict).unwrap();
        let truth = recompute_delta(&w.catalog, &w.storage, w.cond).unwrap();
        prop_assert_eq!(&result.condition_deltas[&w.cond], &truth);
    }

    /// Parallel wave-front execution is an implementation detail: for
    /// every condition shape, every §7.2 check level, and random update
    /// batches, the serial and parallel strategies produce identical
    /// condition Δ-sets (and identical work counters — same candidates,
    /// same rejections — since the merge replays serial order).
    #[test]
    fn serial_and_parallel_agree_under_all_check_levels(
        shape in 0u8..6,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();
        w.storage.begin().unwrap();
        for (on_q, is_insert, t) in &ups {
            let rel = if *on_q { w.rq } else { w.rr };
            if *is_insert {
                w.storage.insert(rel, t.clone()).unwrap();
            } else {
                w.storage.delete(rel, t).unwrap();
            }
        }
        for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            let serial = propagate_with(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Serial,
            ).unwrap();
            let parallel = propagate_with(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Parallel,
            ).unwrap();
            prop_assert_eq!(
                &serial.condition_deltas, &parallel.condition_deltas,
                "Δ-sets diverged (shape {}, check {:?})", shape, check
            );
            prop_assert_eq!(
                serial.metrics.candidates, parallel.metrics.candidates,
                "candidate counts diverged (shape {}, check {:?})", shape, check
            );
            prop_assert_eq!(
                serial.metrics.rejected, parallel.metrics.rejected,
                "rejection counts diverged (shape {}, check {:?})", shape, check
            );
            let fired = |r: &amos_core::propagate::PropagationResult| -> Vec<_> {
                r.fired.iter().map(|f| f.diff).collect()
            };
            prop_assert_eq!(
                fired(&serial), fired(&parallel),
                "fired order diverged (shape {}, check {:?})", shape, check
            );
        }
    }

    /// The old-state view used during propagation is consistent: a
    /// rolled-back transaction leaves the condition's full evaluation
    /// exactly where it started.
    #[test]
    fn rollback_restores_condition(
        shape in 0u8..6,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let before: HashSet<Tuple> =
            amos_core::naive::full_eval(&w.catalog, &w.storage, w.cond).unwrap();
        w.storage.begin().unwrap();
        for (on_q, is_insert, t) in &ups {
            let rel = if *on_q { w.rq } else { w.rr };
            if *is_insert {
                w.storage.insert(rel, t.clone()).unwrap();
            } else {
                w.storage.delete(rel, t).unwrap();
            }
        }
        w.storage.rollback().unwrap();
        let after: HashSet<Tuple> =
            amos_core::naive::full_eval(&w.catalog, &w.storage, w.cond).unwrap();
        prop_assert_eq!(before, after);
    }
}
