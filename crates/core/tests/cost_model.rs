//! Unit + property tests for the §8 hybrid-evaluation [`CostModel`]:
//! the naive/incremental decision must flip *exactly* at
//! `threshold × naive_cost`, and the incremental estimate must be
//! monotone in both |Δ| and the seeding node's out-degree — otherwise
//! the planner could prefer naive on a smaller transaction than one it
//! ran incrementally.

use amos_core::differ::DiffScope;
use amos_core::network::PropagationNetwork;
use amos_core::{CostModel, Strategy};
use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::clause::{ClauseBuilder, Term};
use amos_storage::{RelId, Storage};
use amos_types::{tuple, CmpOp, TypeId, Value};
use proptest::prelude::*;

fn sig(n: usize) -> Vec<TypeId> {
    vec![TypeId(0); n]
}

/// `low(x) :- q(x, y), y < 10` over `n_items` monitored rows of `q`.
/// Returns `(storage, catalog, low, q, rel)`.
fn setup(n_items: i64) -> (Storage, Catalog, PredId, PredId, RelId) {
    let mut storage = Storage::new();
    let rq = storage.create_relation("q", 2).unwrap();
    let mut catalog = Catalog::new();
    let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
    let low = catalog
        .define_derived(
            "low",
            sig(1),
            vec![ClauseBuilder::new(2)
                .head([Term::var(0)])
                .pred(q, [Term::var(0), Term::var(1)])
                .cmp(Term::var(1), CmpOp::Lt, Term::val(10))
                .build()],
        )
        .unwrap();
    for i in 0..n_items {
        storage.insert(rq, tuple![i, 100 + i]).unwrap();
    }
    storage.monitor(rq);
    (storage, catalog, low, q, rq)
}

/// Apply `changes` functional updates to distinct keys inside an open
/// transaction.
fn touch(storage: &mut Storage, rq: RelId, changes: i64) {
    for i in 0..changes {
        storage
            .set_functional(rq, &[Value::Int(i)], &[Value::Int(5)])
            .unwrap();
    }
}

/// The decision boundary is `incremental > threshold × naive`, strictly:
/// at exactly `threshold × naive` the model must still answer
/// `Incremental`, and any threshold below the true cost ratio must
/// answer `Naive`. Sizes are powers of two so `inc / naive` is exact in
/// f64 and "exactly at the boundary" means exactly.
#[test]
fn choose_flips_exactly_at_threshold_times_naive() {
    let (mut storage, catalog, low, _q, rq) = setup(64);
    let net = PropagationNetwork::build(&catalog, &mut storage, &[low], DiffScope::Full).unwrap();
    storage.begin().unwrap();
    touch(&mut storage, rq, 4);

    let model = CostModel::default();
    let inc = model.incremental_cost(&catalog, &storage, &net, low);
    let naive = model.naive_cost(&catalog, &storage, low);
    assert!(
        inc > 0.0 && naive > 0.0,
        "degenerate fixture: {inc} / {naive}"
    );
    let ratio = inc / naive;
    assert_eq!(ratio * naive, inc, "fixture sizes must divide exactly");

    let at = CostModel {
        threshold: ratio,
        ..model
    };
    assert_eq!(
        at.choose(&catalog, &storage, &net, low),
        Strategy::Incremental,
        "boundary is strict: inc == threshold × naive stays incremental"
    );

    let below = CostModel {
        threshold: ratio * (1.0 - f64::EPSILON),
        ..model
    };
    assert_eq!(
        below.choose(&catalog, &storage, &net, low),
        Strategy::Naive,
        "one ulp under the ratio must flip to naive"
    );

    let above = CostModel {
        threshold: ratio * (1.0 + f64::EPSILON),
        ..model
    };
    assert_eq!(
        above.choose(&catalog, &storage, &net, low),
        Strategy::Incremental
    );
}

/// Out-degree factor: a condition that references `q` twice (self-join)
/// seeds two differentials per Δ tuple, so with the same Δ its estimate
/// must dominate the single-reference condition's — here exactly 2×.
#[test]
fn incremental_cost_is_monotone_in_out_degree() {
    let (mut storage, mut catalog, low, q, rq) = setup(32);
    let pair = catalog
        .define_derived(
            "pair",
            sig(1),
            vec![ClauseBuilder::new(3)
                .head([Term::var(0)])
                .pred(q, [Term::var(0), Term::var(1)])
                .pred(q, [Term::var(1), Term::var(2)])
                .build()],
        )
        .unwrap();
    // One network per condition: the estimate counts every out-edge of
    // the seeding node, so the conditions must not share a network for
    // their out-degrees to differ.
    let net_low =
        PropagationNetwork::build(&catalog, &mut storage, &[low], DiffScope::Full).unwrap();
    let net_pair =
        PropagationNetwork::build(&catalog, &mut storage, &[pair], DiffScope::Full).unwrap();
    storage.begin().unwrap();
    touch(&mut storage, rq, 8);

    let model = CostModel::default();
    let single = model.incremental_cost(&catalog, &storage, &net_low, low);
    let double = model.incremental_cost(&catalog, &storage, &net_pair, pair);
    assert!(single > 0.0);
    assert_eq!(
        double,
        2.0 * single,
        "two occurrences of q must cost twice one occurrence"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// |Δ| monotonicity: more changed tuples never make the incremental
    /// estimate cheaper (strictly more expensive while Δ still grows),
    /// and the naive estimate ignores Δ entirely.
    #[test]
    fn incremental_cost_is_monotone_in_delta(d1 in 0i64..40, d2 in 0i64..40, extra in 0i64..20) {
        let (lo, hi) = (d1.min(d2), d1.max(d2) + extra);
        let cost_at = |changes: i64| {
            let (mut storage, catalog, low, _q, rq) = setup(64);
            let net = PropagationNetwork::build(
                &catalog, &mut storage, &[low], DiffScope::Full,
            ).unwrap();
            storage.begin().unwrap();
            touch(&mut storage, rq, changes);
            let model = CostModel::default();
            (
                model.incremental_cost(&catalog, &storage, &net, low),
                model.naive_cost(&catalog, &storage, low),
            )
        };
        let (inc_lo, naive_lo) = cost_at(lo);
        let (inc_hi, naive_hi) = cost_at(hi);
        prop_assert!(
            inc_lo <= inc_hi,
            "incremental cost fell as Δ grew: |Δ|={} → {}, cost {} → {}",
            lo, hi, inc_lo, inc_hi
        );
        if hi > lo {
            prop_assert!(inc_lo < inc_hi, "cost must strictly grow with Δ");
        }
        prop_assert_eq!(naive_lo, naive_hi, "naive cost must not depend on Δ");
    }
}
