//! Property tests for incremental aggregates: for random event streams,
//! the incrementally maintained view equals an aggregate recomputed from
//! scratch over the final relation state — for every aggregate function.

use amos_core::aggregate::{AggFn, AggregateView};
use amos_objectlog::catalog::Catalog;
use amos_storage::{DeltaSet, Storage};
use amos_types::{tuple, Tuple, TypeId, Value};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};

fn sig(n: usize) -> Vec<TypeId> {
    vec![TypeId(0); n]
}

/// Recompute the aggregate from scratch over a set of (group, id, value)
/// tuples.
fn recompute(rows: &HashSet<Tuple>, agg: AggFn) -> Vec<Tuple> {
    let mut groups: BTreeMap<Value, Vec<i64>> = BTreeMap::new();
    for t in rows {
        groups
            .entry(t[0].clone())
            .or_default()
            .push(t[2].as_int().unwrap());
    }
    let mut out = Vec::new();
    for (g, vals) in groups {
        let v = match agg {
            AggFn::Count => Value::Int(vals.len() as i64),
            AggFn::Sum => Value::Int(vals.iter().sum()),
            AggFn::Min => Value::Int(*vals.iter().min().unwrap()),
            AggFn::Max => Value::Int(*vals.iter().max().unwrap()),
            AggFn::Avg => Value::real(vals.iter().sum::<i64>() as f64 / vals.len() as f64).unwrap(),
        };
        out.push(Tuple::new(vec![g, v]));
    }
    out.sort();
    out
}

/// Events: (group 0..3, id 0..6, value 0..20, insert?) — small domains
/// force collisions, duplicate values within groups, and group
/// disappearance.
fn events() -> impl Strategy<Value = Vec<(i64, i64, i64, bool)>> {
    prop::collection::vec((0i64..3, 0i64..6, 0i64..20, any::<bool>()), 0..40)
}

proptest! {
    #[test]
    fn incremental_aggregate_equals_recompute(evs in events()) {
        let mut storage = Storage::new();
        let rel = storage.create_relation("src", 3).unwrap();
        let mut catalog = Catalog::new();
        let src = catalog.define_stored("src", sig(3), rel, 2).unwrap();

        for agg in [AggFn::Count, AggFn::Sum, AggFn::Avg, AggFn::Min, AggFn::Max] {
            // Fresh state per aggregate function.
            let mut storage = storage.clone_empty_like(rel);
            let mut view = AggregateView::new(src, vec![0], 2, agg);
            view.initialize(&catalog, &storage).unwrap();

            // Replay events in per-transaction batches of 5, applying the
            // batch delta to the view each time (mirrors the engine's
            // per-commit maintenance).
            for chunk in evs.chunks(5) {
                let mut delta = DeltaSet::new();
                for &(g, id, v, insert) in chunk {
                    let t = tuple![g, id, v];
                    if insert {
                        if storage.insert(rel, t.clone()).unwrap() {
                            delta.apply_insert(t);
                        }
                    } else if storage.delete(rel, &t).unwrap() {
                        delta.apply_delete(t);
                    }
                }
                view.apply_delta(&delta).unwrap();
            }

            let rows: HashSet<Tuple> = storage.relation(rel).scan().cloned().collect();
            let expected = recompute(&rows, agg);
            let got = view.current().unwrap();
            prop_assert_eq!(got, expected, "aggregate {:?}", agg);
        }
    }

    /// The per-batch result deltas compose: applying every emitted delta
    /// to an initially-correct materialization yields the final result.
    #[test]
    fn emitted_deltas_compose(evs in events()) {
        let mut storage = Storage::new();
        let rel = storage.create_relation("src", 3).unwrap();
        let mut catalog = Catalog::new();
        let src = catalog.define_stored("src", sig(3), rel, 2).unwrap();
        let mut view = AggregateView::new(src, vec![0], 2, AggFn::Sum);
        view.initialize(&catalog, &storage).unwrap();

        let mut materialized: HashSet<Tuple> = HashSet::new();
        for chunk in evs.chunks(3) {
            let mut delta = DeltaSet::new();
            for &(g, id, v, insert) in chunk {
                let t = tuple![g, id, v];
                if insert {
                    if storage.insert(rel, t.clone()).unwrap() {
                        delta.apply_insert(t);
                    }
                } else if storage.delete(rel, &t).unwrap() {
                    delta.apply_delete(t);
                }
            }
            let out = view.apply_delta(&delta).unwrap();
            for t in out.minus() {
                prop_assert!(materialized.remove(t), "deleted tuple {t} was not materialized");
            }
            for t in out.plus() {
                prop_assert!(materialized.insert(t.clone()), "inserted tuple {t} already present");
            }
        }
        let mut final_rows: Vec<Tuple> = materialized.into_iter().collect();
        final_rows.sort();
        prop_assert_eq!(final_rows, view.current().unwrap());
    }
}

/// Test-only helper: an empty storage with the same single-relation
/// shape (proptest replays the same events against fresh state per
/// aggregate function).
trait CloneEmpty {
    fn clone_empty_like(&self, rel: amos_storage::RelId) -> Storage;
}

impl CloneEmpty for Storage {
    fn clone_empty_like(&self, rel: amos_storage::RelId) -> Storage {
        let mut s = Storage::new();
        let r = s
            .create_relation(
                self.relation(rel).name().to_string(),
                self.relation(rel).arity(),
            )
            .unwrap();
        assert_eq!(r, rel, "single-relation fixture");
        s
    }
}
