//! Sharded propagation is an execution detail, not a semantics change:
//! hash-partitioning each wave-front level across `workers` shards and
//! merging worker outputs in (shard, serial-order) must reproduce the
//! serial §5 pass bit-identically — same condition Δ-sets, same
//! candidate/rejection counters, same fired order — under every §7.2
//! check level, for any shard count 1–8, including key-free
//! differentials that fall back to broadcast routing and passes where
//! the adaptive planner re-optimizes mid-stream.

use std::sync::Arc;

use amos_core::adaptive::AdaptivePlanner;
use amos_core::differ::{DiffId, DiffScope};
use amos_core::network::PropagationNetwork;
use amos_core::propagate::{
    propagate_adaptive, propagate_with, recompute_delta, CheckLevel, ExecStrategy,
    PropagationResult,
};
use amos_core::ShardKey;
use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::clause::{ClauseBuilder, Term};
use amos_objectlog::eval::EvalShared;
use amos_storage::{RelId, Storage};
use amos_types::{tuple, ArithOp, CmpOp, Tuple, TypeId};
use proptest::prelude::*;

fn sig(n: usize) -> Vec<TypeId> {
    vec![TypeId(0); n]
}

struct World {
    storage: Storage,
    catalog: Catalog,
    rq: RelId,
    rr: RelId,
    cond: PredId,
}

/// The `proptest_equivalence` shape zoo plus a seventh, key-free shape:
/// 0 join, 1 selection+arith, 2 negation, 3 disjunction (single-literal
/// bodies — every differential broadcasts), 4 bushy, 5 self-join,
/// 6 cartesian product q(X,_) × r(_,Y) (two-literal bodies with no
/// shared variable — the Δ-literal has no join key, so both
/// differentials broadcast).
fn build_world(shape: u8, q0: &[Tuple], r0: &[Tuple]) -> World {
    let mut storage = Storage::new();
    let rq = storage.create_relation("q", 2).unwrap();
    let rr = storage.create_relation("r", 2).unwrap();
    let mut catalog = Catalog::new();
    let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
    let r = catalog.define_stored("r", sig(2), rr, 1).unwrap();

    let cond = match shape % 7 {
        0 => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap(),
        1 => catalog
            .define_derived(
                "cond",
                sig(1),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .arith(Term::var(2), Term::var(1), ArithOp::Mul, Term::val(2))
                    .cmp(Term::var(2), CmpOp::Lt, Term::val(6))
                    .build()],
            )
            .unwrap(),
        2 => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .not_pred(r, [Term::var(0), Term::var(1)])
                    .build()],
            )
            .unwrap(),
        3 => catalog
            .define_derived(
                "cond",
                sig(1),
                vec![
                    ClauseBuilder::new(2)
                        .head([Term::var(0)])
                        .pred(q, [Term::var(0), Term::var(1)])
                        .build(),
                    ClauseBuilder::new(2)
                        .head([Term::var(0)])
                        .pred(r, [Term::var(1), Term::var(0)])
                        .build(),
                ],
            )
            .unwrap(),
        4 => {
            let mid = catalog
                .define_derived(
                    "mid",
                    sig(2),
                    vec![ClauseBuilder::new(3)
                        .head([Term::var(0), Term::var(2)])
                        .pred(q, [Term::var(0), Term::var(1)])
                        .pred(r, [Term::var(1), Term::var(2)])
                        .build()],
                )
                .unwrap();
            catalog
                .define_derived(
                    "cond",
                    sig(1),
                    vec![ClauseBuilder::new(2)
                        .head([Term::var(0)])
                        .pred(mid, [Term::var(0), Term::var(1)])
                        .cmp(Term::var(1), CmpOp::Lt, Term::val(4))
                        .build()],
                )
                .unwrap()
        }
        5 => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap(),
        _ => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(4)
                    .head([Term::var(0), Term::var(3)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(2), Term::var(3)])
                    .build()],
            )
            .unwrap(),
    };

    for t in q0 {
        storage.insert(rq, t.clone()).unwrap();
    }
    for t in r0 {
        storage.insert(rr, t.clone()).unwrap();
    }
    storage.monitor(rq);
    storage.monitor(rr);
    World {
        storage,
        catalog,
        rq,
        rr,
        cond,
    }
}

fn small_tuple() -> impl Strategy<Value = Tuple> {
    (0i64..5, 0i64..5).prop_map(|(a, b)| tuple![a, b])
}

fn tuples() -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(small_tuple(), 0..10)
}

fn updates() -> impl Strategy<Value = Vec<(bool, bool, Tuple)>> {
    prop::collection::vec((any::<bool>(), any::<bool>(), small_tuple()), 0..15)
}

fn apply(w: &mut World, ups: &[(bool, bool, Tuple)]) {
    for (on_q, is_insert, t) in ups {
        let rel = if *on_q { w.rq } else { w.rr };
        if *is_insert {
            w.storage.insert(rel, t.clone()).unwrap();
        } else {
            w.storage.delete(rel, t).unwrap();
        }
    }
}

fn fired_order(r: &PropagationResult) -> Vec<DiffId> {
    r.fired.iter().map(|f| f.diff).collect()
}

/// Assert the three strategy-invariant observables match: condition
/// Δ-sets, candidate/rejection counters, and fired differential order.
macro_rules! assert_same_pass {
    ($a:expr, $b:expr, $ctx:expr) => {
        prop_assert_eq!(
            &$a.condition_deltas,
            &$b.condition_deltas,
            "Δ-sets diverged: {}",
            $ctx
        );
        prop_assert_eq!(
            $a.metrics.candidates,
            $b.metrics.candidates,
            "candidate counts diverged: {}",
            $ctx
        );
        prop_assert_eq!(
            $a.metrics.rejected,
            $b.metrics.rejected,
            "rejection counts diverged: {}",
            $ctx
        );
        prop_assert_eq!(
            fired_order(&$a),
            fired_order(&$b),
            "fired order diverged: {}",
            $ctx
        );
    };
}

/// Proptest batches stay below the inline-execution threshold; this
/// deterministic case pushes enough Δ-tuples through one level to take
/// the threaded exchange path, and must still match serial exactly.
#[test]
fn large_wave_takes_threads_and_stays_exact() {
    let mut w = build_world(0, &[], &[]);
    let net =
        PropagationNetwork::build(&w.catalog, &mut w.storage, &[w.cond], DiffScope::Full).unwrap();
    w.storage.begin().unwrap();
    for i in 0..400i64 {
        w.storage.insert(w.rq, tuple![i, i % 17]).unwrap();
        w.storage.insert(w.rr, tuple![i % 17, i]).unwrap();
    }
    for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
        let serial =
            propagate_with(&net, &w.catalog, &w.storage, check, ExecStrategy::Serial).unwrap();
        let sharded = propagate_with(
            &net,
            &w.catalog,
            &w.storage,
            check,
            ExecStrategy::Sharded { workers: 4 },
        )
        .unwrap();
        assert_eq!(serial.condition_deltas, sharded.condition_deltas);
        assert_eq!(serial.metrics.candidates, sharded.metrics.candidates);
        assert_eq!(serial.metrics.rejected, sharded.metrics.rejected);
        assert_eq!(fired_order(&serial), fired_order(&sharded));
        // 800 seed tuples is far past the inline threshold, so the
        // exchange really fanned out across the four workers.
        assert!(sharded.metrics.exchange_tuples >= 800);
        assert_eq!(sharded.metrics.shard_seed_tuples.len(), 4);
        assert!(sharded.metrics.shard_seed_tuples.iter().all(|&n| n > 0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sharded ≡ serial ≡ parallel for every shape, every check level,
    /// and random shard counts 1–8. Shapes 3 and 6 exercise the
    /// broadcast fallback (key-free differentials route their whole
    /// seed to one owner shard).
    #[test]
    fn sharded_agrees_with_serial_and_parallel(
        shape in 0u8..7,
        workers in 1usize..=8,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();
        w.storage.begin().unwrap();
        apply(&mut w, &ups);

        for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            let serial = propagate_with(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Serial,
            ).unwrap();
            let parallel = propagate_with(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Parallel,
            ).unwrap();
            let sharded = propagate_with(
                &net, &w.catalog, &w.storage, check,
                ExecStrategy::Sharded { workers },
            ).unwrap();
            let ctx = format!(
                "shape {shape}, check {check:?}, workers {workers}"
            );
            assert_same_pass!(sharded, serial, &ctx);
            assert_same_pass!(sharded, parallel, &ctx);
            prop_assert_eq!(sharded.metrics.workers, workers);
        }
    }

    /// Key-free differentials (single-literal and cartesian bodies)
    /// really do take the broadcast path — the network annotates them
    /// `ShardKey::Broadcast` — and the pass still matches serial at
    /// every shard count.
    #[test]
    fn broadcast_differentials_stay_exact(
        cartesian in any::<bool>(),
        workers in 2usize..=8,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let shape = if cartesian { 6 } else { 3 };
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();
        let broadcasts = (0..net.differentials().len())
            .filter(|&i| matches!(net.shard_key(DiffId(i as u32)), ShardKey::Broadcast))
            .count();
        prop_assert!(
            broadcasts > 0,
            "shape {} should produce key-free differentials", shape
        );

        w.storage.begin().unwrap();
        apply(&mut w, &ups);
        for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            let serial = propagate_with(
                &net, &w.catalog, &w.storage, check, ExecStrategy::Serial,
            ).unwrap();
            let sharded = propagate_with(
                &net, &w.catalog, &w.storage, check,
                ExecStrategy::Sharded { workers },
            ).unwrap();
            let ctx = format!("shape {shape}, check {check:?}, workers {workers}");
            assert_same_pass!(sharded, serial, &ctx);
        }
    }

    /// Sharded execution under the adaptive planner: plans resolve
    /// sequentially against the full unsharded wave before the level is
    /// partitioned, so a sharded pass makes the very same replan /
    /// cache-hit decisions as a serial pass — and produces the same
    /// Δ-sets — even as statistics drift across committed batches and
    /// trigger mid-pass re-optimizations.
    #[test]
    fn adaptive_sharded_replans_like_serial(
        shape in 0u8..7,
        workers in 1usize..=8,
        q0 in tuples(),
        r0 in tuples(),
        batches in prop::collection::vec(updates(), 1..4),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();
        let serial_planner = AdaptivePlanner::new();
        let sharded_planner = AdaptivePlanner::new();
        let serial_shared = Arc::new(EvalShared::default());
        let sharded_shared = Arc::new(EvalShared::default());

        for ups in &batches {
            w.storage.begin().unwrap();
            apply(&mut w, ups);
            serial_shared.reset_pass();
            sharded_shared.reset_pass();
            let serial = propagate_adaptive(
                &net, &w.catalog, &w.storage, CheckLevel::Strict,
                ExecStrategy::Serial, &serial_shared, Some(&serial_planner),
            ).unwrap();
            let sharded = propagate_adaptive(
                &net, &w.catalog, &w.storage, CheckLevel::Strict,
                ExecStrategy::Sharded { workers }, &sharded_shared,
                Some(&sharded_planner),
            ).unwrap();
            let ctx = format!("shape {shape}, workers {workers}");
            assert_same_pass!(sharded, serial, &ctx);
            // The pass is exact against ground truth, not just
            // self-consistent.
            let truth = recompute_delta(&w.catalog, &w.storage, w.cond).unwrap();
            prop_assert_eq!(
                &sharded.condition_deltas[&w.cond], &truth,
                "sharded adaptive pass diverged from naive diff (shape {})",
                shape
            );
            w.storage.commit().unwrap();
        }
        prop_assert_eq!(
            serial_planner.replan_count(), sharded_planner.replan_count(),
            "replan counts diverged (shape {}, workers {})", shape, workers
        );
        prop_assert_eq!(serial_planner.hit_count(), sharded_planner.hit_count());
    }

    /// The shard count is pure execution policy: two sharded passes
    /// with different worker counts agree with each other bit-for-bit.
    #[test]
    fn shard_count_is_invisible(
        shape in 0u8..7,
        wa in 1usize..=8,
        wb in 1usize..=8,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let mut w = build_world(shape, &q0, &r0);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.cond], DiffScope::Full,
        ).unwrap();
        w.storage.begin().unwrap();
        apply(&mut w, &ups);
        let a = propagate_with(
            &net, &w.catalog, &w.storage, CheckLevel::Nervous,
            ExecStrategy::Sharded { workers: wa },
        ).unwrap();
        let b = propagate_with(
            &net, &w.catalog, &w.storage, CheckLevel::Nervous,
            ExecStrategy::Sharded { workers: wb },
        ).unwrap();
        let ctx = format!("shape {shape}, workers {wa} vs {wb}");
        assert_same_pass!(a, b, &ctx);
    }
}
