//! Sorted-run storage is invisible to monitoring.
//!
//! A [`Storage`] with an aggressive seal threshold keeps base data in
//! immutable sorted runs (spilling and compacting every few inserts,
//! tombstoning deletes); one with `usize::MAX` keeps everything in the
//! hash head. For random condition shapes and update transactions the
//! propagated condition Δ-sets, the work counters, and the fired order
//! must be bit-identical between the two layouts across every §7.2
//! check level × execution strategy.

use amos_core::differ::DiffScope;
use amos_core::network::PropagationNetwork;
use amos_core::propagate::{propagate_with, CheckLevel, ExecStrategy, PropagationResult};
use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::clause::{ClauseBuilder, Term};
use amos_storage::{RelId, Storage};
use amos_types::{tuple, Tuple, TypeId};
use proptest::prelude::*;

fn sig(n: usize) -> Vec<TypeId> {
    vec![TypeId(0); n]
}

struct World {
    storage: Storage,
    catalog: Catalog,
    rq: RelId,
    rr: RelId,
    cond: PredId,
}

/// q/2, r/2, and a condition of the given shape. `seal_threshold`
/// applies from the first insert, so the initial contents (not just the
/// transaction Δ) live in runs.
fn build_world(shape: u8, seal_threshold: usize, q0: &[Tuple], r0: &[Tuple]) -> World {
    let mut storage = Storage::new();
    storage.set_seal_threshold(seal_threshold);
    let rq = storage.create_relation("q", 2).unwrap();
    let rr = storage.create_relation("r", 2).unwrap();
    let mut catalog = Catalog::new();
    let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
    let r = catalog.define_stored("r", sig(2), rr, 1).unwrap();

    let cond = match shape % 3 {
        // join: p(X,Z) ← q(X,Y) ∧ r(Y,Z)
        0 => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap(),
        // negation: p(X,Y) ← q(X,Y) ∧ ¬r(X,Y) — exercises old-state
        // views over run-resident tombstoned data
        1 => catalog
            .define_derived(
                "cond",
                sig(2),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .not_pred(r, [Term::var(0), Term::var(1)])
                    .build()],
            )
            .unwrap(),
        // bushy: mid(X,Z) ← q(X,Y) ∧ r(Y,Z); p(X) ← mid(X,Z) ∧ q(Z,_)
        _ => {
            let mid = catalog
                .define_derived(
                    "mid",
                    sig(2),
                    vec![ClauseBuilder::new(3)
                        .head([Term::var(0), Term::var(2)])
                        .pred(q, [Term::var(0), Term::var(1)])
                        .pred(r, [Term::var(1), Term::var(2)])
                        .build()],
                )
                .unwrap();
            catalog
                .define_derived(
                    "cond",
                    sig(1),
                    vec![ClauseBuilder::new(3)
                        .head([Term::var(0)])
                        .pred(mid, [Term::var(0), Term::var(1)])
                        .pred(q, [Term::var(1), Term::var(2)])
                        .build()],
                )
                .unwrap()
        }
    };

    for t in q0 {
        storage.insert(rq, t.clone()).unwrap();
    }
    for t in r0 {
        storage.insert(rr, t.clone()).unwrap();
    }
    storage.monitor(rq);
    storage.monitor(rr);
    World {
        storage,
        catalog,
        rq,
        rr,
        cond,
    }
}

fn small_tuple() -> impl Strategy<Value = Tuple> {
    (0i64..5, 0i64..5).prop_map(|(a, b)| tuple![a, b])
}

fn tuples() -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(small_tuple(), 0..10)
}

fn updates() -> impl Strategy<Value = Vec<(bool, bool, Tuple)>> {
    prop::collection::vec((any::<bool>(), any::<bool>(), small_tuple()), 0..15)
}

fn fired_diffs(r: &PropagationResult) -> Vec<amos_core::differ::DiffId> {
    r.fired.iter().map(|f| f.diff).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Check summaries are bit-identical between run-resident and
    /// hash-resident storage, for every check level × strategy.
    #[test]
    fn runs_and_hash_storage_monitor_identically(
        shape in 0u8..3,
        threshold in 1usize..6,
        q0 in tuples(),
        r0 in tuples(),
        ups in updates(),
    ) {
        let mut lsm = build_world(shape, threshold, &q0, &r0);
        let mut hash = build_world(shape, usize::MAX, &q0, &r0);

        let lsm_net = PropagationNetwork::build(
            &lsm.catalog, &mut lsm.storage, &[lsm.cond], DiffScope::Full,
        ).unwrap();
        let hash_net = PropagationNetwork::build(
            &hash.catalog, &mut hash.storage, &[hash.cond], DiffScope::Full,
        ).unwrap();

        for w in [&mut lsm, &mut hash] {
            w.storage.begin().unwrap();
        }
        for (on_q, is_insert, t) in &ups {
            for w in [&mut lsm, &mut hash] {
                let rel = if *on_q { w.rq } else { w.rr };
                if *is_insert {
                    w.storage.insert(rel, t.clone()).unwrap();
                } else {
                    w.storage.delete(rel, t).unwrap();
                }
            }
        }

        for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            for strat in [ExecStrategy::Serial, ExecStrategy::Parallel] {
                let a = propagate_with(
                    &lsm_net, &lsm.catalog, &lsm.storage, check, strat,
                ).unwrap();
                let b = propagate_with(
                    &hash_net, &hash.catalog, &hash.storage, check, strat,
                ).unwrap();
                prop_assert_eq!(
                    &a.condition_deltas, &b.condition_deltas,
                    "Δ-sets diverged (shape {}, thr {}, {:?}/{:?})",
                    shape, threshold, check, strat
                );
                prop_assert_eq!(
                    a.metrics.candidates, b.metrics.candidates,
                    "candidates diverged (shape {}, thr {}, {:?}/{:?})",
                    shape, threshold, check, strat
                );
                prop_assert_eq!(
                    a.metrics.rejected, b.metrics.rejected,
                    "rejections diverged (shape {}, thr {}, {:?}/{:?})",
                    shape, threshold, check, strat
                );
                prop_assert_eq!(
                    fired_diffs(&a), fired_diffs(&b),
                    "fired order diverged (shape {}, thr {}, {:?}/{:?})",
                    shape, threshold, check, strat
                );
            }
        }

        // Rolling back run-resident state restores the pre-transaction
        // contents exactly, tombstones and all.
        for w in [&mut lsm, &mut hash] {
            w.storage.rollback().unwrap();
        }
        for rel in [lsm.rq, lsm.rr] {
            let mut a: Vec<Tuple> = lsm.storage.relation(rel).scan().cloned().collect();
            let mut b: Vec<Tuple> = hash.storage.relation(rel).scan().cloned().collect();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "post-rollback contents diverged");
        }
    }
}
