//! Propagation through non-trivial network shapes: diamonds (one base
//! relation feeding two intermediate views that reconverge), negation
//! between levels, and three-level chains. The breadth-first bottom-up
//! order must deliver *complete* Δ-sets to every node before its
//! out-edges fire — these shapes are where a wrong order would show.

use amos_types::FxHashSet as HashSet;

use amos_core::differ::DiffScope;
use amos_core::network::PropagationNetwork;
use amos_core::propagate::{propagate, recompute_delta, CheckLevel};
use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::clause::{ClauseBuilder, Term};
use amos_storage::{RelId, Storage};
use amos_types::{tuple, CmpOp, TypeId};

fn sig(n: usize) -> Vec<TypeId> {
    vec![TypeId(0); n]
}

struct Diamond {
    storage: Storage,
    catalog: Catalog,
    rq: RelId,
    top: PredId,
}

/// q feeds `cheap` and `pricey`, which reconverge in `both`:
///
/// ```text
///        both(X) ← cheap(X) ∧ pricey(X)
///        /                        \
///   cheap(X) ← q(X,V) ∧ V < 50   pricey(X) ← q(X,V) ∧ V > 10
///        \                        /
///                 q(X, V)
/// ```
fn diamond() -> Diamond {
    let mut storage = Storage::new();
    let rq = storage.create_relation("q", 2).unwrap();
    let mut catalog = Catalog::new();
    let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
    let cheap = catalog
        .define_derived(
            "cheap",
            sig(1),
            vec![ClauseBuilder::new(2)
                .head([Term::var(0)])
                .pred(q, [Term::var(0), Term::var(1)])
                .cmp(Term::var(1), CmpOp::Lt, Term::val(50))
                .build()],
        )
        .unwrap();
    let pricey = catalog
        .define_derived(
            "pricey",
            sig(1),
            vec![ClauseBuilder::new(2)
                .head([Term::var(0)])
                .pred(q, [Term::var(0), Term::var(1)])
                .cmp(Term::var(1), CmpOp::Gt, Term::val(10))
                .build()],
        )
        .unwrap();
    let top = catalog
        .define_derived(
            "both",
            sig(1),
            vec![ClauseBuilder::new(1)
                .head([Term::var(0)])
                .pred(cheap, [Term::var(0)])
                .pred(pricey, [Term::var(0)])
                .build()],
        )
        .unwrap();
    storage.monitor(rq);
    Diamond {
        storage,
        catalog,
        rq,
        top,
    }
}

#[test]
fn diamond_reconvergence_is_exact() {
    let mut d = diamond();
    // Seed data: 1 in both bands, 2 cheap only, 3 pricey only.
    d.storage.insert(d.rq, tuple![1, 30]).unwrap();
    d.storage.insert(d.rq, tuple![2, 5]).unwrap();
    d.storage.insert(d.rq, tuple![3, 80]).unwrap();
    let net =
        PropagationNetwork::build(&d.catalog, &mut d.storage, &[d.top], DiffScope::Full).unwrap();
    assert_eq!(net.levels().len(), 3, "q / {{cheap,pricey}} / both");

    // Move 2 into the overlap, 1 out of it, add 4 in the overlap —
    // changes travel both diamond arms and must reconverge exactly once.
    d.storage.begin().unwrap();
    d.storage.delete(d.rq, &tuple![2, 5]).unwrap();
    d.storage.insert(d.rq, tuple![2, 20]).unwrap();
    d.storage.delete(d.rq, &tuple![1, 30]).unwrap();
    d.storage.insert(d.rq, tuple![1, 90]).unwrap();
    d.storage.insert(d.rq, tuple![4, 25]).unwrap();

    let result = propagate(&net, &d.catalog, &d.storage, CheckLevel::Strict).unwrap();
    let truth = recompute_delta(&d.catalog, &d.storage, d.top).unwrap();
    assert_eq!(&result.condition_deltas[&d.top], &truth);
    assert_eq!(
        truth.plus(),
        &[tuple![2], tuple![4]].into_iter().collect::<HashSet<_>>()
    );
    assert_eq!(truth.minus(), &[tuple![1]].into_iter().collect());
}

#[test]
fn diamond_no_double_counting_under_nervous() {
    let mut d = diamond();
    d.storage.insert(d.rq, tuple![7, 5]).unwrap();
    let net =
        PropagationNetwork::build(&d.catalog, &mut d.storage, &[d.top], DiffScope::Full).unwrap();
    d.storage.begin().unwrap();
    // 7 moves into the overlap: both arms report +7 to `both`; the ∪Δ
    // accumulation must merge them into one insertion.
    d.storage.delete(d.rq, &tuple![7, 5]).unwrap();
    d.storage.insert(d.rq, tuple![7, 20]).unwrap();
    let result = propagate(&net, &d.catalog, &d.storage, CheckLevel::Nervous).unwrap();
    let delta = &result.condition_deltas[&d.top];
    assert_eq!(delta.plus(), &[tuple![7]].into_iter().collect());
    assert!(delta.minus().is_empty());
}

/// Negation at the top of a two-level network: `gap(X) ← cheap(X) ∧
/// ¬pricey(X)` — a deletion from `pricey` (driven by a base update)
/// inserts into `gap` through a flipped-polarity differential against an
/// intermediate node.
#[test]
fn negation_over_intermediate_nodes() {
    let mut d = diamond();
    let cheap = d.catalog.lookup("cheap").unwrap();
    let pricey = d.catalog.lookup("pricey").unwrap();
    let gap = d
        .catalog
        .define_derived(
            "gap",
            sig(1),
            vec![ClauseBuilder::new(1)
                .head([Term::var(0)])
                .pred(cheap, [Term::var(0)])
                .not_pred(pricey, [Term::var(0)])
                .build()],
        )
        .unwrap();
    d.storage.insert(d.rq, tuple![1, 30]).unwrap(); // cheap ∧ pricey → not in gap
    let net =
        PropagationNetwork::build(&d.catalog, &mut d.storage, &[gap], DiffScope::Full).unwrap();

    d.storage.begin().unwrap();
    // 30 → 5: still cheap, stops being pricey ⇒ enters the gap.
    d.storage.delete(d.rq, &tuple![1, 30]).unwrap();
    d.storage.insert(d.rq, tuple![1, 5]).unwrap();
    let result = propagate(&net, &d.catalog, &d.storage, CheckLevel::Strict).unwrap();
    let truth = recompute_delta(&d.catalog, &d.storage, gap).unwrap();
    assert_eq!(&result.condition_deltas[&gap], &truth);
    assert_eq!(truth.plus(), &[tuple![1]].into_iter().collect());

    // And back out of the gap via the other side.
    d.storage.clear_deltas();
    d.storage.delete(d.rq, &tuple![1, 5]).unwrap();
    d.storage.insert(d.rq, tuple![1, 30]).unwrap();
    let result = propagate(&net, &d.catalog, &d.storage, CheckLevel::Strict).unwrap();
    let truth = recompute_delta(&d.catalog, &d.storage, gap).unwrap();
    assert_eq!(&result.condition_deltas[&gap], &truth);
    assert_eq!(truth.minus(), &[tuple![1]].into_iter().collect());
}

/// Three-level chain: base → v1 → v2 → v3 (condition). Levels must be
/// processed strictly bottom-up.
#[test]
fn three_level_chain() {
    let mut storage = Storage::new();
    let rq = storage.create_relation("q", 2).unwrap();
    let mut catalog = Catalog::new();
    let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
    let level_up = |catalog: &mut Catalog, name: &str, below: PredId| {
        catalog
            .define_derived(
                name,
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(below, [Term::var(0), Term::var(1)])
                    .arith(
                        Term::var(2),
                        Term::var(1),
                        amos_types::ArithOp::Add,
                        Term::val(1),
                    )
                    .build()],
            )
            .unwrap()
    };
    let v1 = level_up(&mut catalog, "v1", q);
    let v2 = level_up(&mut catalog, "v2", v1);
    let v3 = level_up(&mut catalog, "v3", v2);
    storage.monitor(rq);
    storage.insert(rq, tuple![1, 10]).unwrap();

    let net = PropagationNetwork::build(&catalog, &mut storage, &[v3], DiffScope::Full).unwrap();
    assert_eq!(net.levels().len(), 4);

    storage.begin().unwrap();
    storage.delete(rq, &tuple![1, 10]).unwrap();
    storage.insert(rq, tuple![1, 20]).unwrap();
    let result = propagate(&net, &catalog, &storage, CheckLevel::Strict).unwrap();
    let truth = recompute_delta(&catalog, &storage, v3).unwrap();
    assert_eq!(&result.condition_deltas[&v3], &truth);
    assert_eq!(truth.plus(), &[tuple![1, 23]].into_iter().collect());
    assert_eq!(truth.minus(), &[tuple![1, 13]].into_iter().collect());
}
