//! Builder-mutation tests for the network conformance verifier: corrupt
//! a freshly built (conforming) network four different ways and assert
//! each corruption is rejected with a distinct violation.

use amos_core::differ::{DiffId, DiffScope};
use amos_core::network::PropagationNetwork;
use amos_core::shard::ShardKey;
use amos_core::verify::{verify_network, Violation};
use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::clause::{ClauseBuilder, Term};
use amos_storage::Storage;
use amos_types::{CmpOp, TypeId};

fn sig(n: usize) -> Vec<TypeId> {
    vec![TypeId(0); n]
}

/// cnd(X) ← q(X,G1) ∧ thr(X,G2) ∧ G1 < G2, with thr derived from r —
/// a three-level bushy network so level mutations have room to land.
fn fixture() -> (Storage, Catalog, PredId) {
    let mut storage = Storage::new();
    let rq = storage.create_relation("q", 2).unwrap();
    let rr = storage.create_relation("r", 2).unwrap();
    let mut cat = Catalog::new();
    let q = cat.define_stored("q", sig(2), rq, 1).unwrap();
    let r = cat.define_stored("r", sig(2), rr, 1).unwrap();
    let thr = cat
        .define_derived(
            "thr",
            sig(2),
            vec![ClauseBuilder::new(2)
                .head([Term::var(0), Term::var(1)])
                .pred(r, [Term::var(0), Term::var(1)])
                .build()],
        )
        .unwrap();
    let cnd = cat
        .define_derived(
            "cnd",
            sig(1),
            vec![ClauseBuilder::new(3)
                .head([Term::var(0)])
                .pred(q, [Term::var(0), Term::var(1)])
                .pred(thr, [Term::var(0), Term::var(2)])
                .cmp(Term::var(1), CmpOp::Lt, Term::var(2))
                .build()],
        )
        .unwrap();
    (storage, cat, cnd)
}

fn build(storage: &mut Storage, cat: &Catalog, cnd: PredId) -> PropagationNetwork {
    PropagationNetwork::build(cat, storage, &[cnd], DiffScope::Full).unwrap()
}

#[test]
fn uncorrupted_network_verifies() {
    let (mut storage, cat, cnd) = fixture();
    let net = build(&mut storage, &cat, cnd);
    assert_eq!(
        verify_network(&cat, &storage, &net, DiffScope::Full, true),
        Vec::new()
    );
}

#[test]
fn dropped_differential_is_caught() {
    let (mut storage, cat, cnd) = fixture();
    let mut net = build(&mut storage, &cat, cnd);
    net.testing_remove_differential(DiffId(0));
    let violations = verify_network(&cat, &storage, &net, DiffScope::Full, true);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::MissingDifferential { .. })),
        "{violations:?}"
    );
    // The diagnostic names the absent edge.
    let msg = violations
        .iter()
        .find(|v| matches!(v, Violation::MissingDifferential { .. }))
        .unwrap()
        .to_string();
    assert!(msg.contains("was not emitted"), "{msg}");
}

#[test]
fn duplicated_differential_is_caught() {
    let (mut storage, cat, cnd) = fixture();
    let mut net = build(&mut storage, &cat, cnd);
    net.testing_duplicate_differential(DiffId(0));
    let violations = verify_network(&cat, &storage, &net, DiffScope::Full, true);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateDifferential { count: 2, .. })),
        "{violations:?}"
    );
    assert!(
        violations
            .iter()
            .find(|v| matches!(v, Violation::DuplicateDifferential { .. }))
            .unwrap()
            .to_string()
            .contains("double-counted"),
        "{violations:?}"
    );
}

#[test]
fn bad_level_is_caught() {
    let (mut storage, cat, cnd) = fixture();
    let mut net = build(&mut storage, &cat, cnd);
    let thr = cat.lookup("thr").unwrap();
    net.testing_set_node_level(thr, 5);
    let violations = verify_network(&cat, &storage, &net, DiffScope::Full, true);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::BadLevel {
                expected: 1,
                found: 5,
                ..
            }
        )),
        "{violations:?}"
    );
    // Raising thr above cnd also breaks edge monotonicity — the verifier
    // reports both, with distinct renderings.
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::NonMonotoneEdge { from: 5, to: 2, .. })),
        "{violations:?}"
    );
}

/// A differential whose correct key is `Columns` — flipping it to
/// `Broadcast` is a real corruption, not a no-op.
fn keyed_diff(net: &PropagationNetwork) -> DiffId {
    (0..net.differentials().len())
        .map(|i| DiffId(i as u32))
        .find(|d| matches!(net.shard_key(*d), ShardKey::Columns(_)))
        .expect("fixture has join differentials")
}

#[test]
fn wrong_shard_key_is_caught() {
    let (mut storage, cat, cnd) = fixture();
    let mut net = build(&mut storage, &cat, cnd);
    let target = keyed_diff(&net);
    net.testing_set_shard_key(target, ShardKey::Broadcast);
    let violations = verify_network(&cat, &storage, &net, DiffScope::Full, true);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(
        matches!(&violations[0], Violation::ShardKeyMismatch { found, .. } if found == "broadcast"),
        "{violations:?}"
    );
}

/// The four corruption diagnostics render distinctly — the engine's
/// activation error shows which invariant broke.
#[test]
fn corruption_diagnostics_are_distinct() {
    let (mut storage, cat, cnd) = fixture();
    let mut renderings = Vec::new();
    for mutation in 0..4usize {
        let mut net = build(&mut storage, &cat, cnd);
        match mutation {
            0 => net.testing_remove_differential(DiffId(0)),
            1 => net.testing_duplicate_differential(DiffId(0)),
            2 => net.testing_set_node_level(cat.lookup("thr").unwrap(), 5),
            _ => {
                let target = keyed_diff(&net);
                net.testing_set_shard_key(target, ShardKey::Broadcast);
            }
        }
        let violations = verify_network(&cat, &storage, &net, DiffScope::Full, true);
        assert!(!violations.is_empty(), "mutation {mutation} not caught");
        renderings.push(violations[0].to_string());
    }
    let unique: std::collections::HashSet<&String> = renderings.iter().collect();
    assert_eq!(unique.len(), 4, "{renderings:#?}");
}
