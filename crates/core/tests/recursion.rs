//! Linear recursion through the propagation network (§5 note 1):
//! transitive closure (`reach`) monitored incrementally — semi-naive
//! closure for insertions, exact recompute fallback for deletions —
//! always matching naive recomputation.

use amos_types::FxHashSet as HashSet;

use amos_core::differ::DiffScope;
use amos_core::network::PropagationNetwork;
use amos_core::propagate::{propagate, recompute_delta, CheckLevel};
use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::clause::{ClauseBuilder, Term};
use amos_storage::{RelId, Storage};
use amos_types::{tuple, Tuple, TypeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sig(n: usize) -> Vec<TypeId> {
    vec![TypeId(0); n]
}

struct World {
    storage: Storage,
    catalog: Catalog,
    re: RelId,
    reach: PredId,
}

/// reach(X,Y) ← edge(X,Y) ; reach(X,Y) ← reach(X,Z) ∧ edge(Z,Y)
fn world(edges: &[(i64, i64)]) -> World {
    let mut storage = Storage::new();
    let re = storage.create_relation("edge", 2).unwrap();
    let mut catalog = Catalog::new();
    let edge = catalog.define_stored("edge", sig(2), re, 1).unwrap();
    let reach = catalog.define_derived("reach", sig(2), vec![]).unwrap();
    catalog
        .replace_clauses(
            reach,
            vec![
                ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(edge, [Term::var(0), Term::var(1)])
                    .build(),
                ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(reach, [Term::var(0), Term::var(1)])
                    .pred(edge, [Term::var(1), Term::var(2)])
                    .build(),
            ],
        )
        .unwrap();
    for &(a, b) in edges {
        storage.insert(re, tuple![a, b]).unwrap();
    }
    storage.monitor(re);
    World {
        storage,
        catalog,
        re,
        reach,
    }
}

#[test]
fn inserting_an_edge_extends_closure_incrementally() {
    let mut w = world(&[(1, 2), (3, 4)]);
    let net =
        PropagationNetwork::build(&w.catalog, &mut w.storage, &[w.reach], DiffScope::Full).unwrap();
    // The recursive node carries self-differentials.
    let self_edges = net
        .differentials()
        .iter()
        .filter(|d| d.affected == w.reach && d.influent == w.reach)
        .count();
    assert!(self_edges > 0, "self-differentials exist");

    w.storage.begin().unwrap();
    // Bridge the two components: 2 → 3 adds 1→3, 1→4, 2→3, 2→4.
    w.storage.insert(w.re, tuple![2, 3]).unwrap();
    let result = propagate(&net, &w.catalog, &w.storage, CheckLevel::Strict).unwrap();
    let truth = recompute_delta(&w.catalog, &w.storage, w.reach).unwrap();
    assert_eq!(&result.condition_deltas[&w.reach], &truth);
    let expected: HashSet<Tuple> = [tuple![2, 3], tuple![2, 4], tuple![1, 3], tuple![1, 4]]
        .into_iter()
        .collect();
    assert_eq!(truth.plus(), &expected);
    assert!(truth.minus().is_empty());
}

#[test]
fn deleting_an_edge_falls_back_to_exact_recompute() {
    let mut w = world(&[(1, 2), (2, 3), (3, 4)]);
    let net =
        PropagationNetwork::build(&w.catalog, &mut w.storage, &[w.reach], DiffScope::Full).unwrap();
    w.storage.begin().unwrap();
    // Cut the chain in the middle: everything crossing 2→3 disappears.
    w.storage.delete(w.re, &tuple![2, 3]).unwrap();
    let result = propagate(&net, &w.catalog, &w.storage, CheckLevel::Strict).unwrap();
    let truth = recompute_delta(&w.catalog, &w.storage, w.reach).unwrap();
    assert_eq!(&result.condition_deltas[&w.reach], &truth);
    let expected: HashSet<Tuple> = [tuple![2, 3], tuple![2, 4], tuple![1, 3], tuple![1, 4]]
        .into_iter()
        .collect();
    assert_eq!(truth.minus(), &expected);
}

#[test]
fn cycle_creation_terminates_and_is_exact() {
    let mut w = world(&[(1, 2), (2, 3)]);
    let net =
        PropagationNetwork::build(&w.catalog, &mut w.storage, &[w.reach], DiffScope::Full).unwrap();
    w.storage.begin().unwrap();
    w.storage.insert(w.re, tuple![3, 1]).unwrap(); // close the cycle
    let result = propagate(&net, &w.catalog, &w.storage, CheckLevel::Strict).unwrap();
    let truth = recompute_delta(&w.catalog, &w.storage, w.reach).unwrap();
    assert_eq!(&result.condition_deltas[&w.reach], &truth);
    // All 9 pairs now reachable; 2 were already (1→2, 2→3), 1→3 too.
    assert_eq!(truth.plus().len(), 9 - 3);
}

/// Randomized equivalence: arbitrary edge insert/delete transactions on
/// a small node domain, incremental == recompute at every step.
#[test]
fn randomized_transactions_match_recompute() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut w = world(&[]);
    let net =
        PropagationNetwork::build(&w.catalog, &mut w.storage, &[w.reach], DiffScope::Full).unwrap();
    for _round in 0..30 {
        w.storage.begin().unwrap();
        for _ in 0..rng.gen_range(1..4) {
            let a = rng.gen_range(0..5i64);
            let b = rng.gen_range(0..5i64);
            if rng.gen_bool(0.65) {
                w.storage.insert(w.re, tuple![a, b]).unwrap();
            } else {
                w.storage.delete(w.re, &tuple![a, b]).unwrap();
            }
        }
        let result = propagate(&net, &w.catalog, &w.storage, CheckLevel::Strict).unwrap();
        let truth = recompute_delta(&w.catalog, &w.storage, w.reach).unwrap();
        assert_eq!(&result.condition_deltas[&w.reach], &truth);
        w.storage.commit().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property form: one random transaction over a random initial graph.
    #[test]
    fn proptest_incremental_equals_recompute(
        init in prop::collection::vec((0i64..5, 0i64..5), 0..8),
        ups in prop::collection::vec((any::<bool>(), 0i64..5, 0i64..5), 1..6),
    ) {
        let edges: Vec<(i64, i64)> = init;
        let mut w = world(&edges);
        let net = PropagationNetwork::build(
            &w.catalog, &mut w.storage, &[w.reach], DiffScope::Full,
        ).unwrap();
        w.storage.begin().unwrap();
        for (insert, a, b) in ups {
            if insert {
                w.storage.insert(w.re, tuple![a, b]).unwrap();
            } else {
                w.storage.delete(w.re, &tuple![a, b]).unwrap();
            }
        }
        let result = propagate(&net, &w.catalog, &w.storage, CheckLevel::Strict).unwrap();
        let truth = recompute_delta(&w.catalog, &w.storage, w.reach).unwrap();
        prop_assert_eq!(&result.condition_deltas[&w.reach], &truth);
    }
}

/// A rule over the recursive predicate, end to end through the manager.
#[test]
fn rule_over_transitive_closure() {
    use amos_core::rules::{ActionFn, RuleManager, RuleSemantics};
    use std::sync::{Arc, Mutex};

    let mut w = world(&[(1, 2)]);
    // cnd(X,Y) ← reach(X,Y): fires whenever a new pair becomes reachable.
    let cnd = w
        .catalog
        .define_derived(
            "cnd_connected",
            sig(2),
            vec![ClauseBuilder::new(2)
                .head([Term::var(0), Term::var(1)])
                .pred(w.reach, [Term::var(0), Term::var(1)])
                .build()],
        )
        .unwrap();
    let mut mgr = RuleManager::new();
    let log: Arc<Mutex<Vec<Tuple>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = log.clone();
    let action: ActionFn = Arc::new(move |_ctx, t| {
        sink.lock().unwrap().push(t.clone());
        Ok(())
    });
    let rid = mgr
        .define_rule("connected", cnd, 0, action, 0, RuleSemantics::Strict)
        .unwrap();
    mgr.activate(rid, Tuple::unit(), &w.catalog, &mut w.storage)
        .unwrap();

    w.storage.begin().unwrap();
    w.storage.insert(w.re, tuple![2, 3]).unwrap();
    mgr.check_phase(&w.catalog, &mut w.storage).unwrap();
    let mut fired = log.lock().unwrap().clone();
    fired.sort();
    // New reachable pairs: (1,3) and (2,3).
    assert_eq!(fired, vec![tuple![1, 3], tuple![2, 3]]);
}
