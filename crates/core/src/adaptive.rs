//! Statistics-driven adaptive differential planning.
//!
//! The paper optimizes each partial differential **once**, at rule
//! activation, under the assumption of "few changes to a single
//! influent". That assumption is exactly what a bulk-load transaction
//! violates — and the inverse (a huge base relation joined from a tiny
//! Δ-set) is where a statistics-blind join order wastes the most work.
//!
//! This module closes the loop: each differential's plan is cached
//! together with the **statistics fingerprint** it was compiled under
//! (the cardinalities of its stored inputs and the sizes of its Δ-seed
//! sides). At wave-front time the live fingerprint is recomputed from
//! [`Storage`] cardinality/NDV statistics and the frozen wave's Δ-sets;
//! if any dimension drifted past [`DRIFT_RATIO`] (or crossed the
//! empty/non-empty boundary) the differential is re-costed and
//! re-ordered with [`compile_clause_with`] before execution.
//!
//! Re-optimization is semantics-preserving by construction: a plan is a
//! join order over the same literals, every ordering computes the same
//! result set, and the §5 propagation invariants (frozen wave, serial
//! merge order) are untouched — plans are resolved *deterministically,
//! in serial task order* before any task runs. The adaptive≡static
//! proptests pin this.
//!
//! Sharded execution (`ExecStrategy::Sharded`) changes nothing here:
//! plans are resolved against the **full unsharded wave** before a
//! level is partitioned into worker shards, so fingerprints see the
//! summed per-shard Δ cardinalities and each replan/cache-hit decision
//! happens exactly once per level — a sharded pass replans exactly
//! like a serial one (`adaptive_sharded_replans_like_serial`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use amos_objectlog::catalog::{Catalog, PredId, PredKind};
use amos_objectlog::clause::Literal;
use amos_objectlog::eval::DeltaMap;
use amos_objectlog::plan::{compile_clause_with, Plan, PlanStats};
use amos_storage::{Polarity, RelId, Storage};
use amos_types::FxHashMap;

use crate::differ::{DiffId, Differential};
use crate::error::CoreError;

/// Re-plan when any fingerprint dimension changed by at least this
/// factor (in either direction).
pub const DRIFT_RATIO: f64 = 4.0;

/// Static statistic ceilings derived at activation time from the
/// catalog's declared signatures and the whole-catalog abstract
/// interpretation (`amos_lint::absint`): a boolean column can never hold
/// more than two distinct values, and a column whose every use site
/// bounds it to an interval can never have more than interval-width
/// distinct values probed. Live NDV measurements are clamped to these
/// ceilings, which matters most on cold start — an empty or barely
/// loaded relation measures NDV 0/1 and would otherwise leave the cost
/// model blind to the column's real spread.
#[derive(Debug, Clone, Default)]
pub struct StaticBounds {
    ndv_caps: FxHashMap<(RelId, usize), f64>,
}

impl StaticBounds {
    /// Derive ceilings for every stored relation column in the catalog.
    pub fn from_catalog(catalog: &Catalog, analysis: &amos_lint::absint::Analysis) -> Self {
        let mut ndv_caps = FxHashMap::default();
        for def in catalog.iter() {
            let PredKind::Stored { rel, .. } = def.kind else {
                continue;
            };
            for (col, &ty) in def.signature.iter().enumerate() {
                let mut cap: Option<f64> = None;
                if ty == amos_types::TypeId::BOOLEAN {
                    cap = Some(2.0);
                }
                if let Some(width) = analysis
                    .stored_column_usage(catalog, def.id, col)
                    .and_then(|iv| iv.width())
                {
                    cap = Some(cap.map_or(width, |c| c.min(width)));
                }
                if let Some(cap) = cap {
                    ndv_caps.insert((rel, col), cap);
                }
            }
        }
        StaticBounds { ndv_caps }
    }

    /// The static NDV ceiling of a relation column, when one is known.
    pub fn ndv_cap(&self, rel: RelId, col: usize) -> Option<f64> {
        self.ndv_caps.get(&(rel, col)).copied()
    }

    /// Number of bounded columns (introspection / tests).
    pub fn len(&self) -> usize {
        self.ndv_caps.len()
    }

    /// Whether no column has a ceiling.
    pub fn is_empty(&self) -> bool {
        self.ndv_caps.is_empty()
    }
}

/// Live statistics: storage cardinalities/NDVs plus the frozen wave's
/// Δ-set sizes, exposed to the [`compile_clause_with`] estimator.
pub struct LiveStats<'a> {
    /// The (frozen) database of the running pass.
    pub storage: &'a Storage,
    /// Predicate definitions (maps Δ-literal predicates to relations).
    pub catalog: &'a Catalog,
    /// The wave's Δ-sets, keyed by influent predicate.
    pub deltas: &'a DeltaMap,
    /// Static ceilings clamping the live measurements, when available.
    pub bounds: Option<&'a StaticBounds>,
}

impl PlanStats for LiveStats<'_> {
    fn cardinality(&self, rel: RelId) -> Option<f64> {
        Some(self.storage.relation(rel).len() as f64)
    }

    fn ndv(&self, rel: RelId, col: usize) -> Option<f64> {
        let live = self.storage.relation(rel).ndv(col) as f64;
        match self.bounds.and_then(|b| b.ndv_cap(rel, col)) {
            // The ceiling also lifts a cold-start measurement: with no
            // tuples yet, the column's eventual spread is still at most
            // (and plausibly close to) the static cap.
            Some(cap) if live == 0.0 => Some(cap),
            Some(cap) => Some(live.min(cap)),
            None => Some(live),
        }
    }

    fn delta_len(&self, pred: PredId, polarity: Polarity) -> Option<f64> {
        Some(self.deltas.get(&pred).map_or(0, |d| d.side(polarity).len()) as f64)
    }

    fn run_profile(&self, rel: RelId) -> Option<(usize, usize)> {
        let r = self.storage.relation(rel);
        Some((r.run_count(), r.run_sizes().iter().sum()))
    }
}

/// The statistics a differential's plan was compiled under: one entry
/// per stored literal (input cardinality) and per Δ-literal (side size),
/// in clause-body order, so two fingerprints of the same differential
/// compare positionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsFingerprint {
    dims: Vec<u64>,
}

impl StatsFingerprint {
    /// Fingerprint `diff`'s clause against the live state.
    pub fn capture(diff: &Differential, catalog: &Catalog, stats: &LiveStats<'_>) -> Self {
        let mut dims = Vec::new();
        for lit in &diff.clause.body {
            match lit {
                Literal::Delta { pred, polarity, .. } => {
                    dims.push(stats.delta_len(*pred, *polarity).unwrap_or(0.0) as u64);
                }
                Literal::Pred { pred, .. } => {
                    if let PredKind::Stored { rel, .. } = catalog.def(*pred).kind {
                        dims.push(stats.cardinality(rel).unwrap_or(0.0) as u64);
                    }
                }
                _ => {}
            }
        }
        StatsFingerprint { dims }
    }

    /// Whether the statistics moved enough to justify re-optimization:
    /// any dimension changed ≥ [`DRIFT_RATIO`]× or crossed the
    /// empty/non-empty boundary.
    pub fn drifted_from(&self, other: &StatsFingerprint) -> bool {
        if self.dims.len() != other.dims.len() {
            return true;
        }
        self.dims.iter().zip(&other.dims).any(|(&a, &b)| {
            if (a == 0) != (b == 0) {
                return true;
            }
            let lo = a.min(b).max(1) as f64;
            let hi = a.max(b) as f64;
            hi / lo >= DRIFT_RATIO
        })
    }
}

struct CachedPlan {
    plan: Arc<Plan>,
    fingerprint: StatsFingerprint,
}

/// Per-differential plan cache with fingerprint-gated re-optimization.
///
/// Owned by the rule layer (it survives propagation passes and is
/// replaced when the network is rebuilt); shared into the wave-front
/// loop by reference. Interior mutability keeps the propagation API
/// `&self` and the cache usable from the level loop.
#[derive(Default)]
pub struct AdaptivePlanner {
    plans: RwLock<FxHashMap<DiffId, CachedPlan>>,
    /// Static ceilings applied to live statistics (set after each
    /// network build, cleared by [`AdaptivePlanner::reset`]).
    bounds: RwLock<Option<Arc<StaticBounds>>>,
    replans: AtomicU64,
    hits: AtomicU64,
}

impl std::fmt::Debug for AdaptivePlanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptivePlanner")
            .field("cached", &self.plans.read().map(|p| p.len()).unwrap_or(0))
            .field("replans", &self.replan_count())
            .field("hits", &self.hit_count())
            .finish()
    }
}

impl AdaptivePlanner {
    /// Empty planner (no plans cached yet).
    pub fn new() -> Self {
        AdaptivePlanner::default()
    }

    /// Resolve the plan to execute for `diff` under the live statistics:
    /// the cached plan if its fingerprint has not drifted, otherwise a
    /// fresh statistics-aware compilation (counted as a re-plan).
    pub fn plan_for(
        &self,
        id: DiffId,
        diff: &Differential,
        catalog: &Catalog,
        storage: &Storage,
        deltas: &DeltaMap,
    ) -> Result<Arc<Plan>, CoreError> {
        let bounds = self.bounds.read().ok().and_then(|b| b.clone());
        let stats = LiveStats {
            storage,
            catalog,
            deltas,
            bounds: bounds.as_deref(),
        };
        let fingerprint = StatsFingerprint::capture(diff, catalog, &stats);
        if let Ok(cache) = self.plans.read() {
            if let Some(hit) = cache.get(&id) {
                if !fingerprint.drifted_from(&hit.fingerprint) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(&hit.plan));
                }
            }
        }
        let plan = Arc::new(
            compile_clause_with(catalog, &diff.clause, &Default::default(), &stats)
                .map_err(CoreError::ObjectLog)?,
        );
        self.replans.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut cache) = self.plans.write() {
            cache.insert(
                id,
                CachedPlan {
                    plan: Arc::clone(&plan),
                    fingerprint,
                },
            );
        }
        Ok(plan)
    }

    /// Cumulative statistics-aware (re)compilations.
    pub fn replan_count(&self) -> u64 {
        self.replans.load(Ordering::Relaxed)
    }

    /// Cumulative plan-cache hits (fingerprint within threshold).
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cached plans (for tests / introspection).
    pub fn cached_plans(&self) -> usize {
        self.plans.read().map(|p| p.len()).unwrap_or(0)
    }

    /// Install static statistic ceilings (computed at activation from
    /// the catalog and abstract interpretation).
    pub fn set_static_bounds(&self, bounds: StaticBounds) {
        if let Ok(mut b) = self.bounds.write() {
            *b = Some(Arc::new(bounds));
        }
    }

    /// The installed static ceilings, if any.
    pub fn static_bounds(&self) -> Option<Arc<StaticBounds>> {
        self.bounds.read().ok().and_then(|b| b.clone())
    }

    /// Drop all cached plans and counters (network rebuilt: DiffIds are
    /// reassigned, so cached entries would alias new differentials).
    pub fn reset(&self) {
        if let Ok(mut cache) = self.plans.write() {
            cache.clear();
        }
        if let Ok(mut b) = self.bounds.write() {
            *b = None;
        }
        self.replans.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_objectlog::clause::{ClauseBuilder, Term};
    use amos_objectlog::plan::PlanStep;
    use amos_types::{tuple, TypeId};
    use std::collections::HashSet;

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    /// A world with one differential Δp/Δ₊s over
    /// `p(X) ← Δ₊s(X,G) ∧ small(G)`.
    fn world() -> (Catalog, Storage, Differential) {
        let mut storage = Storage::new();
        let rs = storage.create_relation("s", 2).unwrap();
        let rsmall = storage.create_relation("small", 1).unwrap();
        let mut catalog = Catalog::new();
        let s = catalog.define_stored("s", sig(2), rs, 1).unwrap();
        let small = catalog.define_stored("small", sig(1), rsmall, 1).unwrap();
        let p = catalog
            .define_derived(
                "p",
                sig(1),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(s, [Term::var(0), Term::var(1)])
                    .pred(small, [Term::var(1)])
                    .build()],
            )
            .unwrap();
        let mut node_preds = HashSet::new();
        node_preds.insert(s);
        let diffs = crate::differ::generate_differentials(
            &catalog,
            &mut storage,
            p,
            &node_preds,
            crate::differ::DiffScope::InsertionsOnly,
        )
        .unwrap();
        assert_eq!(diffs.len(), 1);
        (catalog, storage, diffs.into_iter().next().unwrap())
    }

    #[test]
    fn plan_cache_hits_until_stats_drift() {
        let (catalog, mut storage, diff) = world();
        let rsmall = RelId(1);
        for i in 0..10 {
            storage.insert(rsmall, tuple![i]).unwrap();
        }
        let mut deltas = DeltaMap::new();
        let mut d = amos_storage::DeltaSet::new();
        d.apply_insert(tuple![1, 1]);
        d.apply_insert(tuple![2, 2]);
        deltas.insert(diff.influent, d);

        let planner = AdaptivePlanner::new();
        let id = DiffId(0);
        let p1 = planner
            .plan_for(id, &diff, &catalog, &storage, &deltas)
            .unwrap();
        assert_eq!(planner.replan_count(), 1, "first resolve compiles");
        assert!(p1.est_rows.is_some());

        // Same stats → cache hit, same plan object.
        let p2 = planner
            .plan_for(id, &diff, &catalog, &storage, &deltas)
            .unwrap();
        assert_eq!(planner.hit_count(), 1);
        assert!(Arc::ptr_eq(&p1, &p2));

        // Δ grows 3×: under the 4× threshold, still a hit.
        let mut d3 = amos_storage::DeltaSet::new();
        for i in 0..6 {
            d3.apply_insert(tuple![i, i]);
        }
        deltas.insert(diff.influent, d3);
        planner
            .plan_for(id, &diff, &catalog, &storage, &deltas)
            .unwrap();
        assert_eq!(planner.hit_count(), 2);
        assert_eq!(planner.replan_count(), 1);

        // Δ explodes past 4× → re-plan, and the bulk pair fuses into a
        // sorted merge join on the shared key.
        let mut dbig = amos_storage::DeltaSet::new();
        for i in 0..1000 {
            dbig.apply_insert(tuple![i, i % 10]);
        }
        deltas.insert(diff.influent, dbig);
        let p3 = planner
            .plan_for(id, &diff, &catalog, &storage, &deltas)
            .unwrap();
        assert_eq!(planner.replan_count(), 2, "drift forces recompilation");
        assert!(
            matches!(
                p3.steps[0],
                PlanStep::MergeJoin {
                    ref delta_cols,
                    ref rel_cols,
                    ..
                } if *delta_cols == vec![1] && *rel_cols == vec![0]
            ),
            "bulk Δ fuses into a merge join: {:?}",
            p3.steps
        );
        assert_eq!(p3.steps.len(), 1);
    }

    /// Static bounds clamp (and cold-start-lift) live NDV measurements:
    /// boolean columns cap at 2, interval-bounded uses cap at the hull
    /// width, and unbounded columns pass the live value through.
    #[test]
    fn static_bounds_clamp_ndv() {
        let mut storage = Storage::new();
        let rflag = storage.create_relation("flag", 2).unwrap();
        let mut catalog = Catalog::new();
        let flag = catalog
            .define_stored("flag", vec![TypeId::INTEGER, TypeId::BOOLEAN], rflag, 1)
            .unwrap();
        // Every use of flag's integer column bounds it to [0, 9].
        catalog
            .define_derived(
                "low",
                vec![TypeId::INTEGER],
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(flag, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(0), amos_types::CmpOp::Ge, Term::val(0))
                    .cmp(Term::var(0), amos_types::CmpOp::Lt, Term::val(10))
                    .build()],
            )
            .unwrap();
        let analysis = amos_lint::absint::analyze(&catalog);
        let bounds = StaticBounds::from_catalog(&catalog, &analysis);
        assert_eq!(bounds.ndv_cap(rflag, 0), Some(10.0), "interval hull");
        assert_eq!(bounds.ndv_cap(rflag, 1), Some(2.0), "boolean column");
        assert!(!bounds.is_empty());

        let deltas = DeltaMap::new();
        let stats = LiveStats {
            storage: &storage,
            catalog: &catalog,
            deltas: &deltas,
            bounds: Some(&bounds),
        };
        // Cold start: no tuples, live NDV 0 → lifted to the cap.
        assert_eq!(stats.ndv(rflag, 1), Some(2.0));
        for i in 0..100 {
            storage.insert(rflag, tuple![i, i % 2 == 0]).unwrap();
        }
        let stats = LiveStats {
            storage: &storage,
            catalog: &catalog,
            deltas: &deltas,
            bounds: Some(&bounds),
        };
        // 100 live values clamp to the interval hull; the boolean's live
        // NDV is already within its cap.
        assert_eq!(stats.ndv(rflag, 0), Some(10.0));
        assert_eq!(stats.ndv(rflag, 1), Some(2.0));

        // The planner carries bounds until reset.
        let planner = AdaptivePlanner::new();
        planner.set_static_bounds(bounds);
        assert!(planner.static_bounds().is_some());
        planner.reset();
        assert!(planner.static_bounds().is_none());
    }

    #[test]
    fn empty_boundary_crossing_forces_replan() {
        let (catalog, storage, diff) = world();
        let planner = AdaptivePlanner::new();
        let id = DiffId(0);
        let empty = DeltaMap::new();
        planner
            .plan_for(id, &diff, &catalog, &storage, &empty)
            .unwrap();
        assert_eq!(planner.replan_count(), 1);

        // 0 → 1 is under any ratio but crosses the boundary.
        let mut deltas = DeltaMap::new();
        let mut d = amos_storage::DeltaSet::new();
        d.apply_insert(tuple![1, 1]);
        deltas.insert(diff.influent, d);
        planner
            .plan_for(id, &diff, &catalog, &storage, &deltas)
            .unwrap();
        assert_eq!(planner.replan_count(), 2);
        assert_eq!(planner.hit_count(), 0);
        assert_eq!(planner.cached_plans(), 1);
        planner.reset();
        assert_eq!(planner.cached_plans(), 0);
        assert_eq!(planner.replan_count(), 0);
    }
}
