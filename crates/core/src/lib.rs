//! # amos-core
//!
//! The paper's primary contribution (Sköld & Risch, ICDE'96): **partial
//! differencing** of rule conditions and the **breadth-first, bottom-up
//! propagation algorithm** for efficient monitoring of deferred complex
//! rule conditions.
//!
//! ## The pipeline
//!
//! 1. A rule's condition is a derived ObjectLog predicate
//!    (`cnd_monitor_items`). At activation the condition is optionally
//!    *expanded* (flattened) — the flat network of fig. 2 — or kept
//!    bushy with shared intermediate nodes (§7.1).
//! 2. [`differ`] generates the **partial differentials**: for every
//!    occurrence of every influent `X` in every clause, the queries
//!    `ΔP/Δ₊X` (seed `Δ₊X`, rest of the body in the new state) and
//!    `ΔP/Δ₋X` (seed `Δ₋X`, other relation literals in the *old* state
//!    via logical rollback). Negated influents flip polarities.
//!    Each differential is compiled once into an index-seeded plan.
//! 3. [`network`] assembles the **propagation network**: nodes are the
//!    condition predicates and their (transitive) influents, levelled by
//!    stratum; each edge carries the differentials from an influent to an
//!    affected predicate (fig. 1/fig. 2).
//! 4. [`propagate`](mod@propagate) runs the §5 algorithm: level by level, for each
//!    changed node, execute the out-edge differentials and accumulate
//!    results into the affected nodes' Δ-sets with `∪Δ`; clear each
//!    node's Δ-set once processed ("wave-front" materialization). §7.2
//!    correction checks keep deletions exact (mandatory) and insertions
//!    strict (optional).
//! 5. [`rules`] implements CA rules on top: per-parameter activation,
//!    the deferred **check phase** (propagate → conflict resolution →
//!    set-oriented action execution → fixpoint), strict vs nervous
//!    semantics, and explainability ([`explain`]).
//!
//! ## Baselines and extensions
//!
//! * [`naive`] — the naive monitor of §6: re-evaluate the full condition
//!   whenever any influent changed, diff against the previous
//!   materialized result.
//! * [`hybrid`] — the §8 "future work" hybrid evaluator: per check phase
//!   choose naive or incremental per rule from a cost estimate.
//! * [`aggregate`] — incremental aggregate nodes (count/sum/avg/min/max),
//!   another §8 extension.

pub mod adaptive;
pub mod aggregate;
pub mod differ;
pub mod error;
pub mod explain;
pub mod hybrid;
pub mod maintained;
pub mod naive;
pub mod network;
pub mod propagate;
pub mod rules;
pub mod shard;
pub mod verify;

pub use adaptive::{AdaptivePlanner, LiveStats, StaticBounds, StatsFingerprint};
pub use aggregate::{AggFn, AggregateView};
pub use differ::{generate_differentials, DiffId, DiffScope, Differential};
pub use error::CoreError;
pub use explain::{CheckTrace, FiredDifferential, TriggerExplanation};
pub use hybrid::{CostModel, Strategy};
pub use maintained::{ClosureView, MaintainedAggregate, SourceDeltas, UserView};
pub use naive::NaiveMonitor;
pub use network::{NetworkStyle, NodeId, PropagationNetwork};
pub use propagate::{
    propagate, propagate_adaptive, propagate_with, recompute_delta, CheckLevel, ExecStrategy,
    PropagationResult,
};
pub use rules::{
    ActionCtx, ActionFn, MonitorMode, MonitorStats, Rule, RuleId, RuleManager, RuleSemantics,
};
pub use shard::{LevelExchange, ShardKey};
