//! User-defined differentials (§8 future work): incrementally maintained
//! views with custom Rust delta logic.
//!
//! The paper closes with: "Another interesting research area is the
//! possibility of incremental evaluation of foreign functions through
//! user defined differentials." This module provides that hook: a
//! [`UserView`] declares which stored relations it reads (its influents)
//! and how to turn their Δ-sets into a Δ-set of its own result — the
//! user-defined differential. The engine materializes the view into an
//! ordinary stored function at every commit, so rule conditions can
//! depend on arbitrarily computed data and still be monitored by partial
//! differencing.
//!
//! [`crate::aggregate::AggregateView`] is the built-in implementation
//! (count/sum/avg/min/max); [`ClosureView`] wraps plain closures for
//! ad-hoc foreign computations.

use std::collections::HashMap;

use amos_objectlog::catalog::Catalog;
use amos_storage::{DeltaSet, RelId, Storage};
use amos_types::Tuple;

use crate::aggregate::AggregateView;
use crate::error::CoreError;

/// Influent Δ-sets handed to a user differential, keyed by relation.
pub type SourceDeltas<'a> = HashMap<RelId, &'a DeltaSet>;

/// An incrementally maintained computation over stored relations.
///
/// `Send + Sync` because registered views live inside the engine, and
/// the engine is shared across session threads behind an `RwLock`
/// ([`apply`](Self::apply) itself only ever runs under the write lock).
pub trait UserView: Send + Sync {
    /// The stored relations this view reads. Changes to any of them
    /// invoke [`apply`](Self::apply) at commit.
    fn sources(&self) -> Vec<RelId>;

    /// Compute the full current result (called once at registration).
    fn initialize(&mut self, catalog: &Catalog, storage: &Storage)
        -> Result<Vec<Tuple>, CoreError>;

    /// The user-defined differential: fold the influents' Δ-sets into
    /// internal state and return the Δ-set of result tuples.
    ///
    /// `storage` is in the *new* state; the old state of any source is
    /// reachable through `storage.old_view(rel)` (logical rollback),
    /// exactly like compiler-generated negative differentials.
    fn apply(
        &mut self,
        deltas: &SourceDeltas<'_>,
        catalog: &Catalog,
        storage: &Storage,
    ) -> Result<DeltaSet, CoreError>;
}

/// [`AggregateView`] bound to its source relation — the built-in
/// [`UserView`] implementation.
pub struct MaintainedAggregate {
    /// The incremental aggregate state.
    pub view: AggregateView,
    /// The backing relation of the aggregate's source predicate.
    pub source_rel: RelId,
}

impl MaintainedAggregate {
    /// Bind an aggregate view to its resolved source relation.
    pub fn new(view: AggregateView, source_rel: RelId) -> Self {
        MaintainedAggregate { view, source_rel }
    }
}

impl UserView for MaintainedAggregate {
    fn sources(&self) -> Vec<RelId> {
        vec![self.source_rel]
    }

    fn initialize(
        &mut self,
        catalog: &Catalog,
        storage: &Storage,
    ) -> Result<Vec<Tuple>, CoreError> {
        self.view.initialize(catalog, storage)?;
        self.view.current()
    }

    fn apply(
        &mut self,
        deltas: &SourceDeltas<'_>,
        _catalog: &Catalog,
        _storage: &Storage,
    ) -> Result<DeltaSet, CoreError> {
        match deltas.get(&self.source_rel) {
            Some(d) => self.view.apply_delta(d),
            None => Ok(DeltaSet::new()),
        }
    }
}

/// Closure-based [`UserView`] for ad-hoc foreign computations.
///
/// `init` computes the full result; `diff` is the user-defined
/// differential. State, if any, lives inside the closures (e.g. an
/// `Arc<Mutex<…>>` cache shared with the application).
pub struct ClosureView<I, D>
where
    I: FnMut(&Catalog, &Storage) -> Result<Vec<Tuple>, CoreError> + Send + Sync,
    D: FnMut(&SourceDeltas<'_>, &Catalog, &Storage) -> Result<DeltaSet, CoreError> + Send + Sync,
{
    sources: Vec<RelId>,
    init: I,
    diff: D,
}

impl<I, D> ClosureView<I, D>
where
    I: FnMut(&Catalog, &Storage) -> Result<Vec<Tuple>, CoreError> + Send + Sync,
    D: FnMut(&SourceDeltas<'_>, &Catalog, &Storage) -> Result<DeltaSet, CoreError> + Send + Sync,
{
    /// Build a view over the given source relations.
    pub fn new(sources: Vec<RelId>, init: I, diff: D) -> Self {
        ClosureView {
            sources,
            init,
            diff,
        }
    }
}

impl<I, D> UserView for ClosureView<I, D>
where
    I: FnMut(&Catalog, &Storage) -> Result<Vec<Tuple>, CoreError> + Send + Sync,
    D: FnMut(&SourceDeltas<'_>, &Catalog, &Storage) -> Result<DeltaSet, CoreError> + Send + Sync,
{
    fn sources(&self) -> Vec<RelId> {
        self.sources.clone()
    }

    fn initialize(
        &mut self,
        catalog: &Catalog,
        storage: &Storage,
    ) -> Result<Vec<Tuple>, CoreError> {
        (self.init)(catalog, storage)
    }

    fn apply(
        &mut self,
        deltas: &SourceDeltas<'_>,
        catalog: &Catalog,
        storage: &Storage,
    ) -> Result<DeltaSet, CoreError> {
        (self.diff)(deltas, catalog, storage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::{tuple, TypeId, Value};

    /// A doubling view: result(k, 2v) for every source(k, v), maintained
    /// by a user differential that maps the source delta tuple-wise.
    #[test]
    fn closure_view_differential() {
        let mut storage = Storage::new();
        let rel = storage.create_relation("src", 2).unwrap();
        let mut catalog = Catalog::new();
        catalog
            .define_stored("src", vec![TypeId(0); 2], rel, 1)
            .unwrap();
        storage.insert(rel, tuple![1, 10]).unwrap();

        let double = |t: &Tuple| -> Tuple { tuple![t[0].clone(), t[1].as_int().unwrap() * 2] };
        let mut view = ClosureView::new(
            vec![rel],
            move |_cat: &Catalog, storage: &Storage| {
                Ok(storage.relation(rel).scan().map(double).collect())
            },
            move |deltas: &SourceDeltas<'_>, _cat: &Catalog, _storage: &Storage| {
                let mut out = DeltaSet::new();
                if let Some(d) = deltas.get(&rel) {
                    for t in d.minus() {
                        out.apply_delete(double(t));
                    }
                    for t in d.plus() {
                        out.apply_insert(double(t));
                    }
                }
                Ok(out)
            },
        );

        let initial = UserView::initialize(&mut view, &catalog, &storage).unwrap();
        assert_eq!(initial, vec![tuple![1, 20]]);

        let mut delta = DeltaSet::new();
        delta.apply_delete(tuple![1, 10]);
        delta.apply_insert(tuple![1, 15]);
        delta.apply_insert(tuple![2, 3]);
        let mut sources = SourceDeltas::new();
        sources.insert(rel, &delta);
        let out = UserView::apply(&mut view, &sources, &catalog, &storage).unwrap();
        assert!(out.plus().contains(&tuple![1, 30]));
        assert!(out.plus().contains(&tuple![2, 6]));
        assert!(out.minus().contains(&tuple![1, 20]));
    }

    #[test]
    fn aggregate_view_through_the_trait() {
        use crate::aggregate::AggFn;
        let mut storage = Storage::new();
        let rel = storage.create_relation("src", 2).unwrap();
        let mut catalog = Catalog::new();
        let src = catalog
            .define_stored("src", vec![TypeId(0); 2], rel, 1)
            .unwrap();
        storage.insert(rel, tuple![1, 10]).unwrap();
        storage.insert(rel, tuple![1, 5]).unwrap();

        let mut view: Box<dyn UserView> = Box::new(MaintainedAggregate::new(
            AggregateView::new(src, vec![0], 1, AggFn::Sum),
            rel,
        ));
        let initial = view.initialize(&catalog, &storage).unwrap();
        assert_eq!(initial, vec![tuple![1, 15]]);

        let mut delta = DeltaSet::new();
        delta.apply_insert(tuple![1, Value::Int(85)]);
        let mut sources = SourceDeltas::new();
        sources.insert(rel, &delta);
        let out = view.apply(&sources, &catalog, &storage).unwrap();
        assert!(out.plus().contains(&tuple![1, 100]));
        assert!(out.minus().contains(&tuple![1, 15]));
    }
}
