//! Shard-key selection and the per-level partitioned exchange.
//!
//! Sharded propagation ([`ExecStrategy::Sharded`]) runs each wave-front
//! level as a partitioned exchange: every task's seed Δ-set is
//! hash-partitioned into `S` worker-owned slices, worker `w` evaluates
//! each task against its own slice with no cross-worker locks, and the
//! per-(task, shard) outputs are recombined in (serial task order,
//! shard order) so the deterministic merge — and with it Raw / Nervous
//! / Strict semantics — is bit-identical to serial execution.
//!
//! The **shard key** of a differential is the set of Δ-literal argument
//! positions whose variable also occurs in another body literal — the
//! bound/join columns through which a seed tuple reaches the rest of
//! the plan. Partitioning on those columns keeps every binding a seed
//! tuple can produce inside one worker. A differential whose Δ-literal
//! shares no variable with the rest of the body is *key-free*
//! ([`ShardKey::Broadcast`]): there is nothing to co-partition on, so
//! the whole seed is routed to one owner shard and evaluated there
//! against the full shared state (the degenerate exchange).
//!
//! Correctness never depends on the key — every slice evaluates against
//! the same shared storage, and the slices partition the seed exactly —
//! so key selection is purely a locality/balance decision, made once at
//! network-build time ([`ShardKey::for_differential`]).
//!
//! [`ExecStrategy::Sharded`]: crate::propagate::ExecStrategy::Sharded

use amos_objectlog::catalog::PredId;
use amos_objectlog::clause::Literal;
use amos_objectlog::eval::DeltaMap;
use amos_storage::{DeltaSet, Polarity, ShardedDelta};

use crate::differ::Differential;

/// How a differential's seed Δ-set is routed across workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardKey {
    /// Hash-partition on these Δ-literal argument positions (the seed
    /// tuple's bound/join columns).
    Columns(Vec<usize>),
    /// Key-free differential: the whole seed goes to one owner shard.
    Broadcast,
}

impl ShardKey {
    /// Derive the shard key from a differential's clause: the Δ-literal
    /// argument positions whose variable occurs in another body literal.
    /// No such position — the Δ-literal is join-free — means
    /// [`ShardKey::Broadcast`].
    pub fn for_differential(diff: &Differential) -> ShardKey {
        ShardKey::for_delta_literal(&diff.clause, diff.literal_index)
    }

    /// The key for the Δ-literal at `literal_index` of a differential
    /// clause. Split out from [`ShardKey::for_differential`] so the
    /// conformance verifier can recompute expected keys from
    /// reconstructed clauses without compiling plans.
    pub fn for_delta_literal(
        clause: &amos_objectlog::clause::Clause,
        literal_index: usize,
    ) -> ShardKey {
        let Some(Literal::Delta { args, .. }) = clause.body.get(literal_index) else {
            return ShardKey::Broadcast;
        };
        let elsewhere: std::collections::HashSet<_> = clause
            .body
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != literal_index)
            .flat_map(|(_, lit)| lit.vars())
            .collect();
        let cols: Vec<usize> = args
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_var().is_some_and(|v| elsewhere.contains(&v)))
            .map(|(i, _)| i)
            .collect();
        if cols.is_empty() {
            ShardKey::Broadcast
        } else {
            ShardKey::Columns(cols)
        }
    }

    /// Short annotation for `render`/`explain` output, e.g. `key=[0,2]`
    /// or `broadcast`.
    pub fn describe(&self) -> String {
        match self {
            ShardKey::Columns(cols) => {
                let cols: Vec<String> = cols.iter().map(usize::to_string).collect();
                format!("key=[{}]", cols.join(","))
            }
            ShardKey::Broadcast => "broadcast".to_owned(),
        }
    }
}

/// The planned exchange of one wave-front level: every task's seed,
/// partitioned into per-shard [`DeltaMap`] slices that workers borrow.
///
/// Tasks whose seeds share a (predicate, polarity, key) partition also
/// share the slice maps — the seed is partitioned once per distinct
/// routing, not once per task.
pub struct LevelExchange {
    /// Distinct partitions; each holds `S` single-entry Δ-maps.
    slice_maps: Vec<Vec<DeltaMap>>,
    /// Partition index per task, in task order.
    task_partition: Vec<usize>,
    /// Seed tuples owned by each shard, summed over the level's tasks —
    /// the occupancy profile behind the skew metrics.
    occupancy: Vec<u64>,
    /// Seed tuples routed through the exchange (each distinct partition
    /// counted once).
    exchanged: u64,
}

impl LevelExchange {
    /// Partition the seeds of `routes` — one `(influent predicate, seed
    /// polarity, shard key)` per task, in serial task order — against
    /// the level-start `wave`, into `workers` shards.
    pub fn plan(routes: &[(PredId, Polarity, &ShardKey)], wave: &DeltaMap, workers: usize) -> Self {
        assert!(workers > 0, "sharded execution needs at least one worker");
        let mut slice_maps: Vec<Vec<DeltaMap>> = Vec::new();
        let mut keys: Vec<(PredId, Polarity, ShardKey)> = Vec::new();
        let mut task_partition = Vec::with_capacity(routes.len());
        let mut occupancy = vec![0u64; workers];
        let mut exchanged = 0u64;
        for &(pred, polarity, key) in routes {
            let idx = keys
                .iter()
                .position(|(p, pol, k)| *p == pred && *pol == polarity && k == key)
                .unwrap_or_else(|| {
                    let empty = DeltaSet::new();
                    let seed = wave.get(&pred).unwrap_or(&empty);
                    let parts = match key {
                        ShardKey::Columns(cols) => {
                            ShardedDelta::partition(seed, polarity, cols, workers)
                        }
                        ShardKey::Broadcast => ShardedDelta::broadcast(seed, polarity, workers, 0),
                    };
                    exchanged += parts.len() as u64;
                    let maps: Vec<DeltaMap> = parts
                        .shards()
                        .iter()
                        .map(|slice| {
                            let mut m = DeltaMap::new();
                            if !slice.is_empty() {
                                m.insert(pred, slice.clone());
                            }
                            m
                        })
                        .collect();
                    slice_maps.push(maps);
                    keys.push((pred, polarity, key.clone()));
                    keys.len() - 1
                });
            for (s, m) in slice_maps[idx].iter().enumerate() {
                occupancy[s] += m.get(&pred).map_or(0, |d| d.len() as u64);
            }
            task_partition.push(idx);
        }
        LevelExchange {
            slice_maps,
            task_partition,
            occupancy,
            exchanged,
        }
    }

    /// The `S` per-shard Δ-map slices for task `task_idx`, in shard
    /// order. Slice `w` is worker `w`'s whole view of the wave for this
    /// task; an empty map means the worker owns no seed tuples and the
    /// task can be skipped on that shard.
    pub fn slices(&self, task_idx: usize) -> &[DeltaMap] {
        &self.slice_maps[self.task_partition[task_idx]]
    }

    /// Seed tuples owned by each shard across the level's tasks.
    pub fn occupancy(&self) -> &[u64] {
        &self.occupancy
    }

    /// Seed tuples routed through this level's exchange.
    pub fn exchanged(&self) -> u64 {
        self.exchanged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_objectlog::catalog::Catalog;
    use amos_objectlog::clause::{ClauseBuilder, Term};
    use amos_storage::{DeltaSet, Storage};
    use amos_types::{tuple, TypeId};

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    /// p(X,Z) ← q(X,Y) ∧ r(Y,Z): ΔX/Δ±q keys on both columns (X heads
    /// into... no — X occurs only in q and the head; Y joins with r), so
    /// the q-seeded differentials key on the Y position only.
    #[test]
    fn join_columns_become_the_key() {
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 2).unwrap();
        let rr = storage.create_relation("r", 2).unwrap();
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), rq, 1).unwrap();
        let r = cat.define_stored("r", sig(2), rr, 1).unwrap();
        let p = cat
            .define_derived(
                "p",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap();
        let diffs = crate::differ::generate_differentials(
            &cat,
            &mut storage,
            p,
            &[q, r].into_iter().collect(),
            crate::differ::DiffScope::Full,
        )
        .unwrap();
        for d in &diffs {
            match ShardKey::for_differential(d) {
                // Either influent's only join column is Y: position 1 of
                // q(X,Y), position 0 of r(Y,Z).
                ShardKey::Columns(cols) => {
                    let expect = if d.influent == q { vec![1] } else { vec![0] };
                    assert_eq!(cols, expect, "{}", d.display_name(&cat));
                }
                ShardKey::Broadcast => panic!("join differential must be keyed"),
            }
        }
    }

    /// s(X) ← t(X): no other body literal, so Δs/Δ±t is key-free.
    #[test]
    fn single_literal_bodies_broadcast() {
        let mut storage = Storage::new();
        let rt = storage.create_relation("t", 1).unwrap();
        let mut cat = Catalog::new();
        let t = cat.define_stored("t", sig(1), rt, 0).unwrap();
        let s = cat
            .define_derived(
                "s",
                sig(1),
                vec![ClauseBuilder::new(1)
                    .head([Term::var(0)])
                    .pred(t, [Term::var(0)])
                    .build()],
            )
            .unwrap();
        let diffs = crate::differ::generate_differentials(
            &cat,
            &mut storage,
            s,
            &[t].into_iter().collect(),
            crate::differ::DiffScope::Full,
        )
        .unwrap();
        assert!(diffs
            .iter()
            .all(|d| ShardKey::for_differential(d) == ShardKey::Broadcast));
        assert_eq!(ShardKey::Broadcast.describe(), "broadcast");
        assert_eq!(ShardKey::Columns(vec![0, 2]).describe(), "key=[0,2]");
    }

    /// The exchange partitions each distinct (pred, polarity, key) route
    /// once, shares it between tasks, and accounts occupancy per task.
    #[test]
    fn exchange_shares_partitions_between_tasks() {
        let pred = PredId(7);
        let mut delta = DeltaSet::new();
        for i in 0..20 {
            delta.apply_insert(tuple![i, i]);
        }
        let mut wave = DeltaMap::new();
        wave.insert(pred, delta);
        let key = ShardKey::Columns(vec![0]);
        let routes = vec![
            (pred, Polarity::Plus, &key),
            (pred, Polarity::Plus, &key),
            (pred, Polarity::Minus, &key),
        ];
        let ex = LevelExchange::plan(&routes, &wave, 4);
        // Two distinct partitions (plus, minus), three tasks.
        assert_eq!(ex.slice_maps.len(), 2);
        assert_eq!(ex.task_partition, vec![0, 0, 1]);
        assert_eq!(ex.exchanged(), 20, "minus side is empty");
        // The plus seed is counted once per task that consumes it.
        assert_eq!(ex.occupancy().iter().sum::<u64>(), 40);
        let total: usize = ex
            .slices(0)
            .iter()
            .flat_map(|m| m.values())
            .map(DeltaSet::len)
            .sum();
        assert_eq!(total, 20);
        // Empty minus slices are entirely empty maps (skippable).
        assert!(ex.slices(2).iter().all(|m| m.is_empty()));
    }
}
