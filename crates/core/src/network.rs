//! The propagation network (fig. 1 / fig. 2).
//!
//! Nodes are predicates: the monitored condition functions at the top,
//! their (transitive) derived influents in the middle (only in *bushy*
//! networks, §7.1), and the stored influents at the bottom. Each edge
//! from influent `X` up to affected `P` carries the partial differentials
//! `ΔP/Δ₊X` and `ΔP/Δ₋X`.
//!
//! Nodes are levelled by stratum (longest path from a stored node) so the
//! §5 algorithm can process them breadth-first, bottom-up: all changes to
//! a node's influents are accumulated before the node's own out-edges
//! fire, which is the precondition for computing old states by logical
//! rollback.
//!
//! Networks are *shared* across rules: two conditions depending on the
//! same predicate share its node (and, in bushy style, shared derived
//! sub-functions like `threshold` become shared intermediate nodes —
//! the node-sharing optimization of §7.1).

use std::collections::{HashMap, HashSet};

use amos_objectlog::catalog::{Catalog, PredId, PredKind};
use amos_storage::{Polarity, Storage};

use amos_objectlog::plan::{compile_clause, ensure_plan_indexes};

use crate::differ::{generate_differentials, DiffId, DiffScope, Differential};
use crate::error::CoreError;
use crate::shard::ShardKey;

/// Identifier of a node within the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

/// How condition predicates were prepared, which shapes the network.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum NetworkStyle {
    /// Conditions fully expanded: stored influents feed conditions
    /// directly (fig. 2). This is the AMOS default.
    #[default]
    Flat,
    /// Expansion stopped at the named predicates, which become shared
    /// intermediate nodes (fig. 1 / §7.1).
    Bushy,
}

/// One node of the network.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// The predicate.
    pub pred: PredId,
    /// Stratum: 0 for stored predicates, `1 + max(influent levels)` for
    /// derived.
    pub level: usize,
    /// Differentials seeded by this node's Δ-set (out-edges).
    pub out_diffs: Vec<DiffId>,
    /// Whether this node is a monitored condition (top of the network).
    pub is_condition: bool,
}

/// The assembled propagation network.
#[derive(Debug, Clone, Default)]
pub struct PropagationNetwork {
    nodes: Vec<Node>,
    by_pred: HashMap<PredId, NodeId>,
    differentials: Vec<Differential>,
    /// Shard-routing key per differential, parallel to `differentials`
    /// (how sharded execution partitions the differential's seed Δ-set).
    shard_keys: Vec<ShardKey>,
    /// Node ids grouped by level, ascending.
    levels: Vec<Vec<NodeId>>,
    /// The condition predicates, in registration order.
    conditions: Vec<PredId>,
    /// Display names of differentials pruned as statically dead (Δ₋ on
    /// append-only relations, statically-false bodies) — lint pass L004.
    pruned: Vec<String>,
    /// Display names of differentials pruned because abstract
    /// interpretation proved their body empty — lint pass L007. Disjoint
    /// from `pruned` (syntactic pruning runs first).
    pruned_semantic: Vec<String>,
}

impl PropagationNetwork {
    /// Build the network for a set of condition predicates.
    ///
    /// Every predicate reachable from a condition through clause bodies
    /// becomes a node (derived influents were either expanded away before
    /// this call — flat style — or remain and become intermediate
    /// nodes). Differentials are generated for every derived node with
    /// respect to its direct influent nodes, compiled, and their probe
    /// indexes created in `storage`.
    pub fn build(
        catalog: &Catalog,
        storage: &mut Storage,
        conditions: &[PredId],
        scope: DiffScope,
    ) -> Result<Self, CoreError> {
        PropagationNetwork::build_with(catalog, storage, conditions, scope, true)
    }

    /// [`PropagationNetwork::build`] with semantic (L007) pruning made
    /// explicit. `semantic: false` keeps only the syntactic L004 pruning
    /// — the ablation knob the pruning-equivalence proptest flips to
    /// compare pruned and unpruned networks.
    pub fn build_with(
        catalog: &Catalog,
        storage: &mut Storage,
        conditions: &[PredId],
        scope: DiffScope,
        semantic: bool,
    ) -> Result<Self, CoreError> {
        let analysis = semantic.then(|| amos_lint::absint::analyze(catalog));
        let mut net = PropagationNetwork {
            conditions: conditions.to_vec(),
            ..Default::default()
        };

        // Discover all reachable predicates.
        let mut stack: Vec<PredId> = conditions.to_vec();
        let mut seen: HashSet<PredId> = HashSet::new();
        while let Some(p) = stack.pop() {
            if !seen.insert(p) {
                continue;
            }
            for dep in catalog.direct_influents(p) {
                stack.push(dep);
            }
        }

        // Create nodes with stratum levels (stratum() also rejects
        // recursion, which the §5 algorithm does not handle).
        let mut preds: Vec<PredId> = seen.into_iter().collect();
        preds.sort();
        for pred in preds {
            let level = catalog.stratum(pred)?;
            let id = NodeId(net.nodes.len() as u32);
            net.nodes.push(Node {
                id,
                pred,
                level,
                out_diffs: Vec::new(),
                is_condition: conditions.contains(&pred),
            });
            net.by_pred.insert(pred, id);
            if net.levels.len() <= level {
                net.levels.resize(level + 1, Vec::new());
            }
            net.levels[level].push(id);
        }

        // Generate differentials for each derived node w.r.t. its direct
        // influent nodes.
        let node_preds: HashSet<PredId> = net.by_pred.keys().copied().collect();
        for node_id in 0..net.nodes.len() {
            let pred = net.nodes[node_id].pred;
            if !matches!(catalog.def(pred).kind, PredKind::Derived(_)) {
                continue;
            }
            // Ensure the indexes for *full* evaluation of this predicate
            // too: the naive baseline re-evaluates conditions in full,
            // and the §7.2 correction checks run fully-bound point
            // queries — both probe stored literals on column subsets
            // that differ from the differential plans'.
            if let Some(clauses) = catalog.def(pred).clauses() {
                for clause in clauses {
                    let unbound = compile_clause(catalog, clause, &HashSet::new())?;
                    ensure_plan_indexes(catalog, &unbound, storage);
                    let all_head: HashSet<_> = clause.head_vars().into_iter().collect();
                    let bound = compile_clause(catalog, clause, &all_head)?;
                    ensure_plan_indexes(catalog, &bound, storage);
                }
            }
            let diffs = generate_differentials(catalog, storage, pred, &node_preds, scope)?;
            for d in diffs {
                // L004 dead-differential pruning: a Δ₋-seeded edge from a
                // stored append-only relation can never carry tuples (its
                // minus Δ-set is empty by contract), and a differential
                // whose body is statically false can never produce any.
                // Dropping them here keeps the propagation loop from
                // scheduling provably empty work. With no append-only
                // declarations this is a strict no-op.
                let dead_minus = d.seed == Polarity::Minus
                    && catalog
                        .def(d.influent)
                        .stored_rel()
                        .is_some_and(|rel| storage.is_append_only(rel));
                if dead_minus || amos_lint::clause_statically_false(&d.clause) {
                    net.pruned.push(d.display_name(catalog));
                    continue;
                }
                // L007 semantic pruning: the abstract interpreter can
                // prove bodies empty that no single-clause syntactic
                // check sees (e.g. a bound contradicting an influent's
                // inferred head interval). Sound — an empty differential
                // can never contribute tuples — so dropping it preserves
                // propagation semantics exactly (see the
                // pruning-equivalence proptest).
                if let Some(analysis) = &analysis {
                    if analysis.clause_provably_empty(catalog, &d.clause) {
                        net.pruned_semantic.push(d.display_name(catalog));
                        continue;
                    }
                }
                let did = DiffId(net.differentials.len() as u32);
                let influent_node = net.by_pred[&d.influent];
                net.nodes[influent_node.0 as usize].out_diffs.push(did);
                net.shard_keys.push(ShardKey::for_differential(&d));
                net.differentials.push(d);
            }
        }
        Ok(net)
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by predicate.
    pub fn node_of(&self, pred: PredId) -> Option<&Node> {
        self.by_pred.get(&pred).map(|id| &self.nodes[id.0 as usize])
    }

    /// All differentials.
    pub fn differentials(&self) -> &[Differential] {
        &self.differentials
    }

    /// A differential by id.
    pub fn differential(&self, id: DiffId) -> &Differential {
        &self.differentials[id.0 as usize]
    }

    /// The shard-routing key of a differential: the Δ-literal's
    /// bound/join columns, or [`ShardKey::Broadcast`] when it has none.
    pub fn shard_key(&self, id: DiffId) -> &ShardKey {
        &self.shard_keys[id.0 as usize]
    }

    /// Node ids per level, ascending (level 0 = stored predicates).
    pub fn levels(&self) -> &[Vec<NodeId>] {
        &self.levels
    }

    /// The monitored condition predicates.
    pub fn conditions(&self) -> &[PredId] {
        &self.conditions
    }

    /// Display names of differentials pruned as statically dead (L004).
    pub fn pruned(&self) -> &[String] {
        &self.pruned
    }

    /// Number of differentials pruned as statically dead.
    pub fn pruned_count(&self) -> usize {
        self.pruned.len()
    }

    /// Display names of differentials pruned as provably empty by
    /// abstract interpretation (L007).
    pub fn pruned_semantic(&self) -> &[String] {
        &self.pruned_semantic
    }

    /// Drop differential `id` from the network, as if the builder had
    /// forgotten to emit it. Testing hook for the conformance verifier's
    /// mutation tests — never called by production code.
    #[doc(hidden)]
    pub fn testing_remove_differential(&mut self, id: DiffId) {
        let idx = id.0 as usize;
        self.differentials.remove(idx);
        self.shard_keys.remove(idx);
        for node in &mut self.nodes {
            node.out_diffs.retain(|d| *d != id);
            for d in &mut node.out_diffs {
                if d.0 > id.0 {
                    d.0 -= 1;
                }
            }
        }
    }

    /// Emit differential `id` a second time, as if the builder had
    /// double-counted a contribution path. Testing hook.
    #[doc(hidden)]
    pub fn testing_duplicate_differential(&mut self, id: DiffId) {
        let d = self.differentials[id.0 as usize].clone();
        let key = self.shard_keys[id.0 as usize].clone();
        let dup = DiffId(self.differentials.len() as u32);
        let influent_node = self.by_pred[&d.influent];
        self.nodes[influent_node.0 as usize].out_diffs.push(dup);
        self.differentials.push(d);
        self.shard_keys.push(key);
    }

    /// Overwrite a node's breadth-first level. Testing hook.
    #[doc(hidden)]
    pub fn testing_set_node_level(&mut self, pred: PredId, level: usize) {
        let id = self.by_pred[&pred];
        self.nodes[id.0 as usize].level = level;
    }

    /// Overwrite a differential's shard key. Testing hook.
    #[doc(hidden)]
    pub fn testing_set_shard_key(&mut self, id: DiffId, key: ShardKey) {
        self.shard_keys[id.0 as usize] = key;
    }

    /// The stored predicates at the bottom of the network — the
    /// relations that must be monitored for Δ-set accumulation.
    pub fn stored_nodes(&self, catalog: &Catalog) -> Vec<PredId> {
        self.nodes
            .iter()
            .filter(|n| matches!(catalog.def(n.pred).kind, PredKind::Stored { .. }))
            .map(|n| n.pred)
            .collect()
    }

    /// Render the network structure for docs/tests: one line per node
    /// with its level and out-edge differentials.
    pub fn render(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        for level in (0..self.levels.len()).rev() {
            for node_id in &self.levels[level] {
                let node = &self.nodes[node_id.0 as usize];
                let marker = if node.is_condition { "*" } else { " " };
                out.push_str(&format!("L{level}{marker} {}\n", catalog.name(node.pred)));
                for did in &node.out_diffs {
                    let d = self.differential(*did);
                    out.push_str(&format!(
                        "      └─ {} [{}]\n",
                        d.display_name(catalog),
                        self.shard_key(*did).describe()
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_objectlog::clause::{ClauseBuilder, Term};
    use amos_types::{CmpOp, TypeId};

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    /// Build the fig. 1 dependency structure: cnd ← quantity, threshold;
    /// threshold ← consume_freq, delivery_time, supplies, min_stock.
    fn monitor_items_bushy() -> (Storage, Catalog, PredId, PredId) {
        let mut storage = Storage::new();
        let mut cat = Catalog::new();
        let stored = |st: &mut Storage, cat: &mut Catalog, name: &str, ar: usize| {
            let rel = st.create_relation(name, ar).unwrap();
            cat.define_stored(name, sig(ar), rel, ar - 1).unwrap()
        };
        let quantity = stored(&mut storage, &mut cat, "quantity", 2);
        let consume = stored(&mut storage, &mut cat, "consume_freq", 2);
        let delivery = stored(&mut storage, &mut cat, "delivery_time", 3);
        let supplies = stored(&mut storage, &mut cat, "supplies", 2);
        let min_stock = stored(&mut storage, &mut cat, "min_stock", 2);

        // threshold(I,T) ← consume_freq(I,G1) ∧ delivery_time(I,G2,G3) ∧
        //   supplies(I,G2) ∧ G4=G1*G3 ∧ min_stock(I,G5) ∧ T=G4+G5
        let threshold = cat
            .define_derived(
                "threshold",
                sig(2),
                vec![ClauseBuilder::new(7)
                    .head([Term::var(0), Term::var(6)])
                    .pred(consume, [Term::var(0), Term::var(1)])
                    .pred(delivery, [Term::var(0), Term::var(2), Term::var(3)])
                    .pred(supplies, [Term::var(0), Term::var(2)])
                    .arith(
                        Term::var(4),
                        Term::var(1),
                        amos_types::ArithOp::Mul,
                        Term::var(3),
                    )
                    .pred(min_stock, [Term::var(0), Term::var(5)])
                    .arith(
                        Term::var(6),
                        Term::var(4),
                        amos_types::ArithOp::Add,
                        Term::var(5),
                    )
                    .build()],
            )
            .unwrap();
        // cnd(I) ← quantity(I,G1) ∧ threshold(I,G2) ∧ G1 < G2
        let cnd = cat
            .define_derived(
                "cnd_monitor_items",
                sig(1),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0)])
                    .pred(quantity, [Term::var(0), Term::var(1)])
                    .pred(threshold, [Term::var(0), Term::var(2)])
                    .cmp(Term::var(1), CmpOp::Lt, Term::var(2))
                    .build()],
            )
            .unwrap();
        (storage, cat, cnd, threshold)
    }

    /// The fig. 1 network: threshold is an intermediate node at level 1,
    /// cnd at level 2, five stored nodes at level 0, and the marked `*`
    /// edge Δcnd/Δ₊quantity exists.
    #[test]
    fn bushy_network_matches_fig1() {
        let (mut storage, cat, cnd, threshold) = monitor_items_bushy();
        let net = PropagationNetwork::build(&cat, &mut storage, &[cnd], DiffScope::Full).unwrap();

        assert_eq!(net.levels().len(), 3);
        assert_eq!(net.levels()[0].len(), 5, "five stored influents");
        assert_eq!(net.levels()[1].len(), 1, "threshold is intermediate");
        assert_eq!(net.levels()[2].len(), 1, "cnd on top");

        let quantity = cat.lookup("quantity").unwrap();
        let qnode = net.node_of(quantity).unwrap();
        // quantity feeds cnd directly: Δcnd/Δ±quantity (the fig. 1 `*` edge).
        let names: Vec<String> = qnode
            .out_diffs
            .iter()
            .map(|d| net.differential(*d).display_name(&cat))
            .collect();
        assert!(names.contains(&"Δcnd_monitor_items/Δ+quantity".to_string()));

        // threshold's out-edges feed cnd.
        let tnode = net.node_of(threshold).unwrap();
        assert!(tnode
            .out_diffs
            .iter()
            .all(|d| net.differential(*d).affected == cnd));
        // threshold has 4 influents × 2 polarities in-edges — counted on
        // the influent side.
        let consume = cat.lookup("consume_freq").unwrap();
        let cnode = net.node_of(consume).unwrap();
        assert!(cnode
            .out_diffs
            .iter()
            .all(|d| net.differential(*d).affected == threshold));

        let rendered = net.render(&cat);
        assert!(rendered.contains("L2* cnd_monitor_items"), "{rendered}");
    }

    /// Flat style: expanding threshold away leaves a two-level network
    /// with five differential pairs straight into cnd (fig. 2).
    #[test]
    fn flat_network_matches_fig2() {
        let (mut storage, mut cat, cnd, _threshold) = monitor_items_bushy();
        let expanded = amos_objectlog::expand::expand_predicate(
            &cat,
            cnd,
            &amos_objectlog::expand::ExpandOptions::full(),
        )
        .unwrap();
        cat.replace_clauses(cnd, expanded).unwrap();

        let net = PropagationNetwork::build(&cat, &mut storage, &[cnd], DiffScope::Full).unwrap();
        assert_eq!(net.levels().len(), 2, "flat: stored + condition only");
        assert_eq!(net.levels()[0].len(), 5);
        // 5 influents × 2 polarities = 10 differentials, all into cnd.
        assert_eq!(net.differentials().len(), 10);
        assert!(net.differentials().iter().all(|d| d.affected == cnd));
    }

    /// Two rules sharing influents share nodes.
    #[test]
    fn node_sharing_between_conditions() {
        let (mut storage, mut cat, cnd, threshold) = monitor_items_bushy();
        let quantity = cat.lookup("quantity").unwrap();
        // A second condition using threshold and quantity.
        let cnd2 = cat
            .define_derived(
                "cnd_other",
                sig(1),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0)])
                    .pred(quantity, [Term::var(0), Term::var(1)])
                    .pred(threshold, [Term::var(0), Term::var(2)])
                    .cmp(Term::var(1), CmpOp::Gt, Term::var(2))
                    .build()],
            )
            .unwrap();
        let net =
            PropagationNetwork::build(&cat, &mut storage, &[cnd, cnd2], DiffScope::Full).unwrap();
        // threshold node exists once; its out-edges feed both conditions.
        let tnode = net.node_of(threshold).unwrap();
        let affected: HashSet<PredId> = tnode
            .out_diffs
            .iter()
            .map(|d| net.differential(*d).affected)
            .collect();
        assert_eq!(affected, [cnd, cnd2].into_iter().collect());
        // Network has exactly one threshold node (count nodes for pred).
        let count = net.nodes().iter().filter(|n| n.pred == threshold).count();
        assert_eq!(count, 1);
    }
}
