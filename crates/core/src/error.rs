//! Errors of the rule-monitoring core.

use std::fmt;

use amos_objectlog::ObjectLogError;
use amos_storage::StorageError;

/// Errors raised by differencing, propagation, and rule management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An ObjectLog error surfaced (compilation or evaluation).
    ObjectLog(ObjectLogError),
    /// A storage error surfaced.
    Storage(StorageError),
    /// No rule with this name.
    UnknownRule(String),
    /// A rule with this name already exists.
    DuplicateRule(String),
    /// The check phase did not reach a fixpoint within the iteration
    /// limit — a rule cascade keeps re-triggering.
    NonTerminatingRules {
        /// The iteration limit that was hit.
        limit: usize,
    },
    /// A rule action failed.
    ActionFailed {
        /// Rule name.
        rule: String,
        /// Failure description.
        reason: String,
    },
    /// A deterministic test fault fired (only ever constructed under the
    /// `fault-injection` feature; defined unconditionally so the enum's
    /// shape does not depend on feature flags).
    FaultInjected(String),
    /// Activation arguments did not match the rule's parameter count.
    ParameterArityMismatch {
        /// Rule name.
        rule: String,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        found: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ObjectLog(e) => write!(f, "{e}"),
            CoreError::Storage(e) => write!(f, "{e}"),
            CoreError::UnknownRule(n) => write!(f, "unknown rule `{n}`"),
            CoreError::DuplicateRule(n) => write!(f, "rule `{n}` already exists"),
            CoreError::NonTerminatingRules { limit } => {
                write!(
                    f,
                    "rule cascade did not terminate within {limit} iterations"
                )
            }
            CoreError::ActionFailed { rule, reason } => {
                write!(f, "action of rule `{rule}` failed: {reason}")
            }
            CoreError::FaultInjected(what) => write!(f, "injected fault: {what}"),
            CoreError::ParameterArityMismatch {
                rule,
                expected,
                found,
            } => write!(
                f,
                "rule `{rule}` takes {expected} parameters, {found} supplied"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ObjectLogError> for CoreError {
    fn from(e: ObjectLogError) -> Self {
        CoreError::ObjectLog(e)
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            CoreError::UnknownRule("r".into()).to_string(),
            "unknown rule `r`"
        );
        assert_eq!(
            CoreError::NonTerminatingRules { limit: 100 }.to_string(),
            "rule cascade did not terminate within 100 iterations"
        );
    }
}
