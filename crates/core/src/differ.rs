//! Generation of partial differentials from Horn clauses (§4.3–§4.5).
//!
//! For a derived predicate `P` with clause `P ← L₁ ∧ … ∧ Lₙ` and an
//! influent occurrence `Lᵢ` referencing node predicate `X`:
//!
//! * **positive** differential `ΔP/Δ₊X` — substitute `Lᵢ` with the
//!   Δ-literal `Δ₊X(args)`; all other literals evaluate in the **new**
//!   state (§4.3);
//! * **negative** differential `ΔP/Δ₋X` — substitute with `Δ₋X(args)`;
//!   all *other relation literals* evaluate in the **old** state, because
//!   "conditions that depend on deletions are actually historical queries
//!   that must be executed in the database state when the deleted data
//!   were present" (§4.4). Built-ins are state-independent and stay.
//!
//! A **negated** occurrence `¬X(args)` flips the mapping (cf. the `~Q`
//! rule `Δ(~Q) = <Δ₋Q, Δ₊Q>` of §4.5): deletions from `X` contribute
//! insertions to `P` (evaluated new) and insertions to `X` contribute
//! deletions from `P` (rest evaluated old). The substituted Δ-literal is
//! always *positive* — it binds from the Δ-set — and the negation guard
//! itself is implied: a tuple in `Δ₋X` is absent from `X_new`, one in
//! `Δ₊X` was absent from `X_old`.
//!
//! If `X` occurs several times in a body, each occurrence yields its own
//! differentials (changes through either occurrence must be seen).
//!
//! Every differential is compiled once into an index-seeded [`Plan`]; the
//! Δ-literal's zero cost puts it first, so each execution is
//! `O(|ΔX| · probes)` rather than a database-sized join.

use std::collections::HashSet;
use std::fmt;

use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::clause::{Clause, Literal};
use amos_objectlog::plan::{compile_clause, ensure_join_indexes, ensure_plan_indexes, Plan};
use amos_storage::{Polarity, StateEpoch, Storage};

use crate::error::CoreError;

/// Identifier of a differential within a propagation network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiffId(pub u32);

/// One partial differential `ΔP/Δ±X`, compiled and ready to execute.
#[derive(Debug, Clone)]
pub struct Differential {
    /// The affected predicate `P`.
    pub affected: PredId,
    /// The influent `X` whose Δ-set seeds this differential.
    pub influent: PredId,
    /// Which side of `ΔX` is consumed.
    pub seed: Polarity,
    /// Which side of `ΔP` the results feed. Equals `seed` for positive
    /// occurrences, `seed.flipped()` for negated occurrences.
    pub output: Polarity,
    /// Index of the source clause within `P`'s definition.
    pub clause_index: usize,
    /// Index of the substituted literal within that clause's body.
    pub literal_index: usize,
    /// The differential clause (body with the Δ-literal substituted).
    pub clause: Clause,
    /// The compiled, reusable plan.
    pub plan: Plan,
}

impl Differential {
    /// A readable name like `Δcnd_monitor_items/Δ+quantity`.
    pub fn display_name(&self, catalog: &Catalog) -> String {
        format!(
            "Δ{}/{}{}",
            catalog.name(self.affected),
            self.seed,
            catalog.name(self.influent)
        )
    }
}

impl fmt::Display for Differential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Δp{}/{}p{} (clause {}, literal {})",
            self.affected.0, self.seed, self.influent.0, self.clause_index, self.literal_index
        )
    }
}

/// Which differentials to generate for a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiffScope {
    /// Both insertions and deletions (required for negation, strict
    /// semantics, and rules whose actions may negatively affect others).
    #[default]
    Full,
    /// Insertions only — the common case the paper highlights
    /// ("often the rule condition depends only on positive changes").
    /// Deletion propagation is skipped entirely; net-change cancellation
    /// at the condition level is lost.
    InsertionsOnly,
}

/// Generate the partial differentials of `affected` with respect to every
/// occurrence of every predicate in `node_preds` (the influents that are
/// nodes of the propagation network and therefore carry Δ-sets).
///
/// Plans are compiled against the current catalog; `storage` gains the
/// hash indexes the plans probe (done once, at rule activation).
pub fn generate_differentials(
    catalog: &Catalog,
    storage: &mut Storage,
    affected: PredId,
    node_preds: &HashSet<PredId>,
    scope: DiffScope,
) -> Result<Vec<Differential>, CoreError> {
    let clauses: Vec<Clause> = catalog
        .def(affected)
        .clauses()
        .ok_or_else(|| {
            CoreError::ObjectLog(amos_objectlog::ObjectLogError::NotDerived(
                catalog.name(affected).to_string(),
            ))
        })?
        .to_vec();

    let mut out = Vec::new();
    for (ci, clause) in clauses.iter().enumerate() {
        for (li, lit) in clause.body.iter().enumerate() {
            let Literal::Pred {
                pred,
                negated,
                epoch,
                ..
            } = lit
            else {
                continue;
            };
            if !node_preds.contains(pred) {
                continue;
            }
            debug_assert_eq!(
                *epoch,
                StateEpoch::New,
                "differencing an already-differenced clause"
            );
            let seeds: &[Polarity] = match scope {
                DiffScope::Full => &[Polarity::Plus, Polarity::Minus],
                // For a positive occurrence only Δ₊X contributes
                // insertions; for a negated occurrence it is Δ₋X.
                DiffScope::InsertionsOnly => {
                    if *negated {
                        &[Polarity::Minus]
                    } else {
                        &[Polarity::Plus]
                    }
                }
            };
            for &seed in seeds {
                let (dclause, output) = differenced_clause(clause, li, seed)
                    .expect("literal checked to be a relation occurrence");
                let plan = compile_clause(catalog, &dclause, &HashSet::new())?;
                ensure_plan_indexes(catalog, &plan, storage);
                // Index every probe pattern adaptive re-optimization
                // could pick at wave-front time (storage is immutable
                // there, so the indexes must exist up front).
                ensure_join_indexes(catalog, &dclause, storage);
                out.push(Differential {
                    affected,
                    influent: *pred,
                    seed,
                    output,
                    clause_index: ci,
                    literal_index: li,
                    clause: dclause,
                    plan,
                });
            }
        }
    }
    Ok(out)
}

/// The §4.3–§4.5 substitution as a pure function: replace the relation
/// occurrence at `literal_index` with a Δ-literal of polarity `seed` and
/// re-target the remaining relation literals to the epoch the output
/// polarity requires. Returns the differential clause and the output
/// polarity (`seed` for positive occurrences, flipped for negated ones),
/// or `None` if the literal is not a relation occurrence.
///
/// [`generate_differentials`] compiles its result into plans; the
/// conformance verifier (`amos_core::verify`) calls it directly to
/// reconstruct what the builder should have emitted.
pub fn differenced_clause(
    clause: &Clause,
    literal_index: usize,
    seed: Polarity,
) -> Option<(Clause, Polarity)> {
    let Literal::Pred {
        pred,
        args,
        negated,
        ..
    } = clause.body.get(literal_index)?
    else {
        return None;
    };
    // Output polarity: positive occurrence keeps the seed's polarity;
    // negation flips it.
    let output = if *negated { seed.flipped() } else { seed };
    // "Rest" epoch: insertions evaluate new, deletions old.
    let rest_epoch = match output {
        Polarity::Plus => StateEpoch::New,
        Polarity::Minus => StateEpoch::Old,
    };
    let mut body = Vec::with_capacity(clause.body.len());
    for (lj, other) in clause.body.iter().enumerate() {
        if lj == literal_index {
            body.push(Literal::Delta {
                pred: *pred,
                polarity: seed,
                args: args.clone(),
            });
        } else {
            body.push(retarget(other, rest_epoch));
        }
    }
    Some((
        Clause {
            n_vars: clause.n_vars,
            head: clause.head.clone(),
            body,
        },
        output,
    ))
}

/// Re-annotate a literal with the epoch the differential requires.
/// Only relation (predicate) literals carry state; built-ins pass
/// through. Δ-literals never appear in source clauses.
fn retarget(lit: &Literal, epoch: StateEpoch) -> Literal {
    match lit {
        Literal::Pred {
            pred,
            args,
            negated,
            ..
        } => Literal::Pred {
            pred: *pred,
            args: args.clone(),
            negated: *negated,
            epoch,
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_objectlog::clause::{ClauseBuilder, Term};
    use amos_objectlog::plan::PlanStep;
    use amos_types::TypeId;

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    struct Fix {
        storage: Storage,
        catalog: Catalog,
        q: PredId,
        r: PredId,
        p: PredId,
    }

    /// p(X,Z) ← q(X,Y) ∧ r(Y,Z)
    fn fixture() -> Fix {
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 2).unwrap();
        let rr = storage.create_relation("r", 2).unwrap();
        let mut catalog = Catalog::new();
        let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
        let r = catalog.define_stored("r", sig(2), rr, 1).unwrap();
        let p = catalog
            .define_derived(
                "p",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap();
        Fix {
            storage,
            catalog,
            q,
            r,
            p,
        }
    }

    #[test]
    fn four_differentials_for_two_influents() {
        let mut f = fixture();
        let nodes: HashSet<PredId> = [f.q, f.r].into_iter().collect();
        let diffs =
            generate_differentials(&f.catalog, &mut f.storage, f.p, &nodes, DiffScope::Full)
                .unwrap();
        assert_eq!(diffs.len(), 4);
        let names: Vec<String> = diffs.iter().map(|d| d.display_name(&f.catalog)).collect();
        assert!(names.contains(&"Δp/Δ+q".to_string()));
        assert!(names.contains(&"Δp/Δ-q".to_string()));
        assert!(names.contains(&"Δp/Δ+r".to_string()));
        assert!(names.contains(&"Δp/Δ-r".to_string()));
    }

    #[test]
    fn negative_differential_evaluates_rest_old() {
        let mut f = fixture();
        let nodes: HashSet<PredId> = [f.q, f.r].into_iter().collect();
        let diffs =
            generate_differentials(&f.catalog, &mut f.storage, f.p, &nodes, DiffScope::Full)
                .unwrap();
        let dminus_r = diffs
            .iter()
            .find(|d| d.influent == f.r && d.seed == Polarity::Minus)
            .unwrap();
        // Its q literal must be old-state — the §4.4 q_old.
        let q_lit = dminus_r
            .clause
            .body
            .iter()
            .find(|l| matches!(l, Literal::Pred { pred, .. } if *pred == f.q))
            .unwrap();
        assert!(matches!(
            q_lit,
            Literal::Pred {
                epoch: StateEpoch::Old,
                ..
            }
        ));
        // Positive differential keeps q in the new state.
        let dplus_r = diffs
            .iter()
            .find(|d| d.influent == f.r && d.seed == Polarity::Plus)
            .unwrap();
        let q_lit = dplus_r
            .clause
            .body
            .iter()
            .find(|l| matches!(l, Literal::Pred { pred, .. } if *pred == f.q))
            .unwrap();
        assert!(matches!(
            q_lit,
            Literal::Pred {
                epoch: StateEpoch::New,
                ..
            }
        ));
    }

    #[test]
    fn plans_are_delta_seeded() {
        let mut f = fixture();
        let nodes: HashSet<PredId> = [f.q, f.r].into_iter().collect();
        let diffs =
            generate_differentials(&f.catalog, &mut f.storage, f.p, &nodes, DiffScope::Full)
                .unwrap();
        for d in &diffs {
            assert!(
                matches!(d.plan.steps[0], PlanStep::Delta { .. }),
                "differential {} must start with its Δ-scan",
                d.display_name(&f.catalog)
            );
        }
        // Index on r.0 (probe from Δq) and q.1 (probe from Δr) exist.
        let rr = f.catalog.def(f.r).stored_rel().unwrap();
        let rq = f.catalog.def(f.q).stored_rel().unwrap();
        assert!(f.storage.relation(rr).has_index(&[0]));
        assert!(f.storage.relation(rq).has_index(&[1]));
    }

    #[test]
    fn negated_occurrence_flips_polarity() {
        let mut f = fixture();
        // s(X) ← q(X,Y) ∧ ¬r(X,Y)
        let s = f
            .catalog
            .define_derived(
                "s",
                sig(1),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(f.q, [Term::var(0), Term::var(1)])
                    .not_pred(f.r, [Term::var(0), Term::var(1)])
                    .build()],
            )
            .unwrap();
        let nodes: HashSet<PredId> = [f.q, f.r].into_iter().collect();
        let diffs =
            generate_differentials(&f.catalog, &mut f.storage, s, &nodes, DiffScope::Full).unwrap();
        assert_eq!(diffs.len(), 4);
        let r_diffs: Vec<_> = diffs.iter().filter(|d| d.influent == f.r).collect();
        for d in r_diffs {
            assert_eq!(d.output, d.seed.flipped(), "negation flips polarity");
        }
        // Deletions from r (seed −) insert into s (output +) → rest new.
        let d = diffs
            .iter()
            .find(|d| d.influent == f.r && d.seed == Polarity::Minus)
            .unwrap();
        let q_lit = d
            .clause
            .body
            .iter()
            .find(|l| matches!(l, Literal::Pred { pred, .. } if *pred == f.q))
            .unwrap();
        assert!(matches!(
            q_lit,
            Literal::Pred {
                epoch: StateEpoch::New,
                ..
            }
        ));
    }

    #[test]
    fn insertions_only_scope_halves_the_differentials() {
        let mut f = fixture();
        let nodes: HashSet<PredId> = [f.q, f.r].into_iter().collect();
        let diffs = generate_differentials(
            &f.catalog,
            &mut f.storage,
            f.p,
            &nodes,
            DiffScope::InsertionsOnly,
        )
        .unwrap();
        assert_eq!(diffs.len(), 2);
        assert!(diffs.iter().all(|d| d.output == Polarity::Plus));
    }

    #[test]
    fn repeated_influent_occurrences_each_differenced() {
        let mut f = fixture();
        // self_join(X,Z) ← q(X,Y) ∧ q(Y,Z)
        let sj = f
            .catalog
            .define_derived(
                "self_join",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(f.q, [Term::var(0), Term::var(1)])
                    .pred(f.q, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap();
        let nodes: HashSet<PredId> = [f.q].into_iter().collect();
        let diffs = generate_differentials(&f.catalog, &mut f.storage, sj, &nodes, DiffScope::Full)
            .unwrap();
        // two occurrences × two polarities
        assert_eq!(diffs.len(), 4);
        let lits: HashSet<usize> = diffs.iter().map(|d| d.literal_index).collect();
        assert_eq!(lits, [0usize, 1].into_iter().collect());
    }
}
