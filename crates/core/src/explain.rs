//! Explainability (§1, §8): "one can easily determine which influents
//! actually caused a rule to trigger and if it was triggered by an
//! insertion or a deletion … by remembering which partial differentials
//! were actually executed in the triggering."
//!
//! Every propagation pass records the executed differentials and their
//! contributions; the rule manager attaches them to each triggering so
//! actions (and users) can ask *why* a rule fired — the CA-rule
//! alternative to duplicating ECA rules per event type that §8 describes.

use amos_objectlog::catalog::{Catalog, PredId};
use amos_storage::Polarity;
use amos_types::Tuple;

use crate::differ::DiffId;

/// One differential execution during propagation.
#[derive(Debug, Clone)]
pub struct FiredDifferential {
    /// Which differential.
    pub diff: DiffId,
    /// The affected predicate.
    pub affected: PredId,
    /// The influent whose Δ-set seeded the execution.
    pub influent: PredId,
    /// Which side of the influent's Δ-set was read.
    pub seed: Polarity,
    /// Which side of the affected Δ-set was fed.
    pub output: Polarity,
    /// The accepted contribution tuples.
    pub tuples: Vec<Tuple>,
}

impl FiredDifferential {
    /// Readable rendering, e.g.
    /// `Δcnd_monitor_items/Δ+quantity → +{(#[oid 1])}`.
    pub fn render(&self, catalog: &Catalog) -> String {
        let mut ts: Vec<String> = self.tuples.iter().map(|t| t.to_string()).collect();
        ts.sort();
        format!(
            "Δ{}/{}{} → {}{{{}}}",
            catalog.name(self.affected),
            self.seed,
            catalog.name(self.influent),
            if self.output == Polarity::Plus {
                "+"
            } else {
                "-"
            },
            ts.join(", ")
        )
    }
}

/// Why one rule instance triggered.
#[derive(Debug, Clone)]
pub struct TriggerExplanation {
    /// The rule's condition predicate.
    pub condition: PredId,
    /// The triggering instance (condition result tuple).
    pub instance: Tuple,
    /// Whether the instance was inserted into or deleted from the
    /// condition.
    pub polarity: Polarity,
    /// The influents (with seed polarities) whose differentials
    /// contributed this instance, in execution order.
    pub causes: Vec<(PredId, Polarity)>,
}

impl TriggerExplanation {
    /// Readable rendering.
    pub fn render(&self, catalog: &Catalog) -> String {
        let causes: Vec<String> = self
            .causes
            .iter()
            .map(|(p, pol)| format!("{pol}{}", catalog.name(*p)))
            .collect();
        format!(
            "{}{} of {} caused by [{}]",
            if self.polarity == Polarity::Plus {
                "+"
            } else {
                "-"
            },
            self.instance,
            catalog.name(self.condition),
            causes.join(", ")
        )
    }
}

/// The full trace of one check phase.
#[derive(Debug, Clone, Default)]
pub struct CheckTrace {
    /// Differential executions across all propagation passes, in order.
    pub fired: Vec<FiredDifferential>,
    /// Per-instance explanations for every rule triggering.
    pub explanations: Vec<TriggerExplanation>,
    /// Number of propagation passes (fixpoint iterations) performed.
    pub passes: usize,
}

impl CheckTrace {
    /// Explanations for a given condition predicate.
    pub fn for_condition(&self, cond: PredId) -> Vec<&TriggerExplanation> {
        self.explanations
            .iter()
            .filter(|e| e.condition == cond)
            .collect()
    }

    /// Derive per-instance explanations from the fired differentials of
    /// one pass, for the instances that ended up triggering.
    pub fn explain_instances(
        fired: &[FiredDifferential],
        condition: PredId,
        instances: &[(Tuple, Polarity)],
    ) -> Vec<TriggerExplanation> {
        instances
            .iter()
            .map(|(instance, polarity)| {
                let causes: Vec<(PredId, Polarity)> = fired
                    .iter()
                    .filter(|f| {
                        f.affected == condition
                            && f.output == *polarity
                            && f.tuples.contains(instance)
                    })
                    .map(|f| (f.influent, f.seed))
                    .collect();
                TriggerExplanation {
                    condition,
                    instance: instance.clone(),
                    polarity: *polarity,
                    causes,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    #[test]
    fn explanations_collect_matching_causes() {
        let cond = PredId(5);
        let fired = vec![
            FiredDifferential {
                diff: DiffId(0),
                affected: cond,
                influent: PredId(1),
                seed: Polarity::Plus,
                output: Polarity::Plus,
                tuples: vec![tuple![1], tuple![2]],
            },
            FiredDifferential {
                diff: DiffId(1),
                affected: cond,
                influent: PredId(2),
                seed: Polarity::Minus,
                output: Polarity::Plus,
                tuples: vec![tuple![1]],
            },
            FiredDifferential {
                diff: DiffId(2),
                affected: PredId(9), // other condition — ignored
                influent: PredId(1),
                seed: Polarity::Plus,
                output: Polarity::Plus,
                tuples: vec![tuple![1]],
            },
        ];
        let ex = CheckTrace::explain_instances(
            &fired,
            cond,
            &[(tuple![1], Polarity::Plus), (tuple![2], Polarity::Plus)],
        );
        assert_eq!(ex.len(), 2);
        assert_eq!(
            ex[0].causes,
            vec![(PredId(1), Polarity::Plus), (PredId(2), Polarity::Minus)]
        );
        assert_eq!(ex[1].causes, vec![(PredId(1), Polarity::Plus)]);
    }
}
