//! The naive condition monitor — the §6 baseline.
//!
//! "We have implemented both our incremental algorithm and a 'naive'
//! condition monitoring algorithm that recomputes the whole rule
//! condition every time an update has been made to an influent affecting
//! a condition."
//!
//! The naive monitor materializes each condition's result at activation
//! and, whenever any influent changed during a transaction, re-evaluates
//! the full condition and diffs against the previous materialization to
//! obtain the net changes. Its per-check cost is linear in the database
//! size (it scans the condition's relations), which is exactly the
//! behaviour fig. 6 plots; its memory cost is the materialization the
//! incremental method avoids.

use std::collections::{HashMap, HashSet};

use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::eval::{DeltaMap, EvalContext};
use amos_storage::{DeltaSet, StateEpoch, Storage};
use amos_types::Tuple;

use crate::error::CoreError;

/// Materialized previous results of monitored conditions.
#[derive(Debug, Default, Clone)]
pub struct NaiveMonitor {
    previous: HashMap<PredId, HashSet<Tuple>>,
}

impl NaiveMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        NaiveMonitor::default()
    }

    /// Start monitoring a condition: evaluate and materialize its current
    /// result.
    pub fn watch(
        &mut self,
        catalog: &Catalog,
        storage: &Storage,
        condition: PredId,
    ) -> Result<(), CoreError> {
        let result = full_eval(catalog, storage, condition)?;
        self.previous.insert(condition, result);
        Ok(())
    }

    /// Stop monitoring a condition and drop its materialization.
    pub fn unwatch(&mut self, condition: PredId) {
        self.previous.remove(&condition);
    }

    /// Whether a condition is being monitored.
    pub fn is_watching(&self, condition: PredId) -> bool {
        self.previous.contains_key(&condition)
    }

    /// The materialized previous result (for tests).
    pub fn previous(&self, condition: PredId) -> Option<&HashSet<Tuple>> {
        self.previous.get(&condition)
    }

    /// Mutable access to a materialization (hybrid bookkeeping).
    pub fn previous_mut(&mut self, condition: PredId) -> Option<&mut HashSet<Tuple>> {
        self.previous.get_mut(&condition)
    }

    /// Recompute a condition in full, diff against the previous
    /// materialization, update it, and return the net changes.
    pub fn check(
        &mut self,
        catalog: &Catalog,
        storage: &Storage,
        condition: PredId,
    ) -> Result<DeltaSet, CoreError> {
        let new = full_eval(catalog, storage, condition)?;
        let old = self.previous.get(&condition).cloned().unwrap_or_default();
        let delta = DeltaSet::from_parts(
            new.difference(&old).cloned().collect(),
            old.difference(&new).cloned().collect(),
        );
        self.previous.insert(condition, new);
        Ok(delta)
    }
}

/// Evaluate a condition predicate in full (unbound pattern, new state).
pub fn full_eval(
    catalog: &Catalog,
    storage: &Storage,
    condition: PredId,
) -> Result<HashSet<Tuple>, CoreError> {
    let deltas = DeltaMap::new();
    let ctx = EvalContext::new(storage, catalog, &deltas);
    let pattern = vec![None; catalog.def(condition).arity];
    Ok(ctx.eval_pred(condition, &pattern, StateEpoch::New)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_objectlog::clause::{ClauseBuilder, Term};
    use amos_types::{tuple, CmpOp, TypeId};

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    #[test]
    fn materialize_diff_cycle() {
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 2).unwrap();
        let mut catalog = Catalog::new();
        let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
        // low(X) ← q(X, V) ∧ V < 10
        let low = catalog
            .define_derived(
                "low",
                sig(1),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Lt, Term::val(10))
                    .build()],
            )
            .unwrap();
        storage.insert(rq, tuple![1, 5]).unwrap();
        storage.insert(rq, tuple![2, 50]).unwrap();

        let mut naive = NaiveMonitor::new();
        naive.watch(&catalog, &storage, low).unwrap();
        assert_eq!(naive.previous(low).unwrap().len(), 1);

        // No change → empty delta.
        let d = naive.check(&catalog, &storage, low).unwrap();
        assert!(d.is_empty());

        // 2 drops low, 1 rises.
        storage.delete(rq, &tuple![2, 50]).unwrap();
        storage.insert(rq, tuple![2, 3]).unwrap();
        storage.delete(rq, &tuple![1, 5]).unwrap();
        storage.insert(rq, tuple![1, 99]).unwrap();
        let d = naive.check(&catalog, &storage, low).unwrap();
        assert_eq!(d.plus(), &[tuple![2]].into_iter().collect());
        assert_eq!(d.minus(), &[tuple![1]].into_iter().collect());

        // Materialization advanced: a second check is clean.
        let d2 = naive.check(&catalog, &storage, low).unwrap();
        assert!(d2.is_empty());

        naive.unwatch(low);
        assert!(!naive.is_watching(low));
    }
}
