//! Hybrid evaluation (§8): choosing between naive and incremental
//! monitoring per check phase.
//!
//! "For transactions with many updates affecting monitored relations
//! naive evaluation can be more efficient, but only with a constant
//! factor. Further research is needed on detecting situations where
//! naive evaluation should be chosen and how to mix naive and
//! incremental evaluation into the same execution mechanism in a
//! *hybrid* evaluation method."
//!
//! The cost model compares:
//!
//! * incremental cost ≈ Σ over changed influents of
//!   `|ΔX| × out-degree(X) × probe cost` — each Δ tuple seeds that many
//!   differential executions, each a constant number of index probes
//!   (fig. 7's overlapping-execution effect appears as the out-degree
//!   factor);
//! * naive cost ≈ Σ over the condition's stored influents of `|X|` —
//!   a full recomputation scans each relation once (fig. 6's linear
//!   growth).
//!
//! When the estimated incremental cost exceeds `threshold ×` the naive
//! cost, naive evaluation is chosen. The paper measured the worst-case
//! incremental overhead at ≈1.6× naive; the default threshold of 1.0
//! switches as soon as incremental stops being predicted cheaper.

use amos_objectlog::catalog::{Catalog, PredId};
use amos_storage::Storage;

use crate::network::PropagationNetwork;

/// The strategy chosen for one rule in one check phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Partial differencing propagation.
    Incremental,
    /// Full recomputation + diff.
    Naive,
}

/// Tunable cost model for [`Strategy`] selection.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Estimated probes per differential execution per Δ tuple.
    pub probe_cost: f64,
    /// Estimated cost per tuple scanned during naive recomputation.
    pub scan_cost: f64,
    /// Switch to naive when `incremental > threshold × naive`.
    pub threshold: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // An index probe costs more than a sequential scan step.
            probe_cost: 4.0,
            scan_cost: 1.0,
            threshold: 1.0,
        }
    }
}

impl CostModel {
    /// Estimated cost of propagating the current transaction's changes
    /// to `condition` incrementally.
    pub fn incremental_cost(
        &self,
        catalog: &Catalog,
        storage: &Storage,
        network: &PropagationNetwork,
        condition: PredId,
    ) -> f64 {
        let mut cost = 0.0;
        for node in network.nodes() {
            let Some(rel) = catalog.def(node.pred).stored_rel() else {
                continue;
            };
            let Some(delta) = storage.delta(rel) else {
                continue;
            };
            if delta.is_empty() {
                continue;
            }
            // Differentials seeded by this node that (transitively) feed
            // the condition. For simplicity, count direct out-edges —
            // deep networks underestimate, which only biases toward
            // incremental for bushy shapes where sharing amortizes.
            let out = node
                .out_diffs
                .iter()
                .filter(|d| {
                    let diff = network.differential(**d);
                    diff.affected == condition || network.node_of(diff.affected).is_some()
                })
                .count();
            cost += delta.len() as f64 * out as f64 * self.probe_cost;
        }
        cost
    }

    /// Estimated cost of re-evaluating `condition` from scratch.
    pub fn naive_cost(&self, catalog: &Catalog, storage: &Storage, condition: PredId) -> f64 {
        let mut cost = 0.0;
        for pred in catalog.stored_influents(condition) {
            if let Some(rel) = catalog.def(pred).stored_rel() {
                cost += storage.relation(rel).len() as f64 * self.scan_cost;
            }
        }
        cost.max(1.0)
    }

    /// Choose a strategy for one condition in the current transaction.
    pub fn choose(
        &self,
        catalog: &Catalog,
        storage: &Storage,
        network: &PropagationNetwork,
        condition: PredId,
    ) -> Strategy {
        let inc = self.incremental_cost(catalog, storage, network, condition);
        let naive = self.naive_cost(catalog, storage, condition);
        if inc > self.threshold * naive {
            Strategy::Naive
        } else {
            Strategy::Incremental
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differ::DiffScope;
    use amos_objectlog::catalog::Catalog;
    use amos_objectlog::clause::{ClauseBuilder, Term};
    use amos_types::{tuple, CmpOp, TypeId, Value};

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    fn setup(n_items: i64) -> (Storage, Catalog, PredId, amos_storage::RelId) {
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 2).unwrap();
        let mut catalog = Catalog::new();
        let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
        let low = catalog
            .define_derived(
                "low",
                sig(1),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Lt, Term::val(10))
                    .build()],
            )
            .unwrap();
        for i in 0..n_items {
            storage.insert(rq, tuple![i, 100 + i]).unwrap();
        }
        storage.monitor(rq);
        (storage, catalog, low, rq)
    }

    #[test]
    fn few_changes_choose_incremental() {
        let (mut storage, catalog, low, rq) = setup(1000);
        let net =
            PropagationNetwork::build(&catalog, &mut storage, &[low], DiffScope::Full).unwrap();
        storage.begin().unwrap();
        storage
            .set_functional(rq, &[Value::Int(1)], &[Value::Int(5)])
            .unwrap();
        let model = CostModel::default();
        assert_eq!(
            model.choose(&catalog, &storage, &net, low),
            Strategy::Incremental
        );
    }

    #[test]
    fn massive_changes_choose_naive() {
        let (mut storage, catalog, low, rq) = setup(1000);
        let net =
            PropagationNetwork::build(&catalog, &mut storage, &[low], DiffScope::Full).unwrap();
        storage.begin().unwrap();
        for i in 0..1000 {
            storage
                .set_functional(rq, &[Value::Int(i)], &[Value::Int(5)])
                .unwrap();
        }
        let model = CostModel::default();
        assert_eq!(model.choose(&catalog, &storage, &net, low), Strategy::Naive);
    }

    #[test]
    fn empty_transaction_is_free_incremental() {
        let (mut storage, catalog, low, _rq) = setup(100);
        let net =
            PropagationNetwork::build(&catalog, &mut storage, &[low], DiffScope::Full).unwrap();
        storage.begin().unwrap();
        let model = CostModel::default();
        assert_eq!(model.incremental_cost(&catalog, &storage, &net, low), 0.0);
        assert_eq!(
            model.choose(&catalog, &storage, &net, low),
            Strategy::Incremental
        );
    }
}
