//! The breadth-first, bottom-up propagation algorithm (§5).
//!
//! > for each level (starting with the lowest level)
//! >   for each changed node (a non-empty Δ-set)
//! >     for each edge to an above node
//! >       execute the partial differential(s) and accumulate the result
//! >       in the Δ-set of the node above using ∪Δ
//!
//! Δ-sets of interior nodes are temporary "wave-front" materializations:
//! each node's Δ-set is cleared as soon as its out-edges have been
//! processed, so memory usage is bounded by the wave-front, not the
//! database. Base-relation Δ-sets live in [`Storage`] (they are needed
//! throughout for old-state logical rollback) and are *not* cleared here;
//! condition-node Δ-sets are the algorithm's output.
//!
//! The breadth-first, bottom-up order guarantees that when a negative
//! differential evaluates `Q_old` for some influent `Q`, every change to
//! `Q` has already been propagated — `Q_old` over derived predicates
//! reduces to evaluation over old base states, which are complete because
//! base Δ-sets are retained.
//!
//! §7.2 correction checks are applied per candidate change at
//! accumulation time ([`CheckLevel`]):
//!
//! * deletions are verified absent from the new state — mandatory
//!   whenever deletions are propagated at all, because a false deletion
//!   can cancel a true insertion through `∪Δ` and make rules
//!   *under-react*, "which is unacceptable";
//! * under [`CheckLevel::Strict`], insertions are verified absent from
//!   the old state (and present in the new), giving exact
//!   false→true transitions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use amos_metrics::{DiffTiming, LevelStats, PassMetrics, Stopwatch};
use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::eval::{DeltaMap, EvalContext, EvalShared};
use amos_objectlog::plan::Plan;
use amos_storage::{DeltaSet, Polarity, StateEpoch, Storage};
use amos_types::{Tuple, Value};

use crate::adaptive::AdaptivePlanner;
use crate::differ::DiffId;
use crate::error::CoreError;
use crate::explain::FiredDifferential;
use crate::network::PropagationNetwork;
use crate::shard::{LevelExchange, ShardKey};

/// Below this many exchanged seed tuples a sharded level runs its
/// shards inline (same partition, same combine order, no threads) —
/// thread spawn would cost more than the work it distributes.
const SHARD_INLINE_THRESHOLD: usize = 256;

/// Which §7.2 checks to apply to candidate changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckLevel {
    /// No checks — raw differentials. Only safe for insertion-only
    /// monotone conditions; exposed for the ablation benchmarks.
    Raw,
    /// Verify deletions against the new state (mandatory check), accept
    /// insertions as-is — *nervous* semantics may over-trigger.
    #[default]
    Nervous,
    /// Additionally verify insertions against old and new state —
    /// *strict* semantics (exact false→true transitions).
    Strict,
}

impl CheckLevel {
    /// Lowercase name for metrics and explain output.
    pub fn name(self) -> &'static str {
        match self {
            CheckLevel::Raw => "raw",
            CheckLevel::Nervous => "nervous",
            CheckLevel::Strict => "strict",
        }
    }
}

/// How to execute the differentials of one wave-front level.
///
/// Within a level every differential execution is an independent
/// read-only query: it reads storage and the *current* level's Δ-sets
/// and writes only to strictly higher-level nodes — and the §7.2
/// `accept` checks consult storage alone. The parallel strategy exploits
/// this by snapshotting the wave immutably, running all (node,
/// differential) tasks concurrently, and merging their accepted batches
/// *sequentially in serial execution order* — so the resulting Δ-sets
/// (and all counters) are identical to [`ExecStrategy::Serial`] under
/// every [`CheckLevel`].
///
/// The sharded strategy goes one step further: instead of fanning out
/// whole tasks over one shared wave, each level runs as a partitioned
/// exchange — every task's seed Δ-set is hash-partitioned on the
/// differential's shard key into `workers` worker-owned slices
/// ([`crate::shard`]), each worker evaluates every task against its own
/// slice with no cross-worker locks, and the per-(task, shard) outputs
/// are recombined in (serial task order, shard order) before the same
/// deterministic merge. Because the slices partition each seed exactly
/// and within a task all outputs carry one polarity, the merged Δ-sets,
/// counters, and fired trace are bit-identical to serial execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecStrategy {
    /// One differential at a time, in network order.
    Serial,
    /// All differentials of a level concurrently (deterministic merge).
    #[default]
    Parallel,
    /// Each level as a partitioned exchange over `workers` shard-owning
    /// workers (deterministic re-shard + merge).
    Sharded {
        /// Number of shards / worker threads (clamped to at least 1).
        workers: usize,
    },
}

/// A rejected [`ExecStrategy::parse`] input, with the byte span of the
/// offending part for caret-style CLI diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyParseError {
    /// What was wrong.
    pub message: String,
    /// `(byte offset, byte length)` of the offending slice of the input.
    pub span: (usize, usize),
}

impl std::fmt::Display for StrategyParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl ExecStrategy {
    /// Lowercase name for metrics and explain output.
    pub fn name(self) -> &'static str {
        match self {
            ExecStrategy::Serial => "serial",
            ExecStrategy::Parallel => "parallel",
            ExecStrategy::Sharded { .. } => "sharded",
        }
    }

    /// Parse a strategy spelling: `serial`, `parallel`, or `sharded:N`
    /// with `N` in `1..=64`. Errors carry the span of the offending
    /// input slice so callers can render a pointed diagnostic.
    pub fn parse(input: &str) -> Result<ExecStrategy, StrategyParseError> {
        let (head, arg) = match input.find(':') {
            Some(i) => (&input[..i], Some(&input[i + 1..])),
            None => (input, None),
        };
        let err = |message: String, span: (usize, usize)| Err(StrategyParseError { message, span });
        match (head, arg) {
            ("serial", None) => Ok(ExecStrategy::Serial),
            ("parallel", None) => Ok(ExecStrategy::Parallel),
            ("serial" | "parallel", Some(_)) => err(
                format!("strategy `{head}` takes no `:argument`"),
                (head.len(), input.len() - head.len()),
            ),
            ("sharded", None) => err(
                "strategy `sharded` needs a worker count, e.g. `sharded:4`".to_owned(),
                (0, input.len()),
            ),
            ("sharded", Some(n)) => {
                let off = head.len() + 1;
                match n.parse::<usize>() {
                    Ok(w) if (1..=64).contains(&w) => Ok(ExecStrategy::Sharded { workers: w }),
                    Ok(w) => err(
                        format!("worker count {w} out of range 1..=64"),
                        (off, n.len()),
                    ),
                    Err(_) => err(
                        format!("invalid worker count `{n}` (expected an integer 1..=64)"),
                        (off, n.len().max(1)),
                    ),
                }
            }
            _ => err(
                format!("unknown strategy `{head}`; expected serial, parallel, or sharded:N"),
                (0, head.len().max(1)),
            ),
        }
    }
}

/// The outcome of one propagation pass.
#[derive(Debug, Default)]
pub struct PropagationResult {
    /// Net changes of each condition predicate.
    pub condition_deltas: HashMap<PredId, DeltaSet>,
    /// Which differentials executed, in execution order (explainability).
    pub fired: Vec<FiredDifferential>,
    /// Total candidate tuples produced by differentials (before checks).
    pub candidates: usize,
    /// Candidates rejected by §7.2 checks.
    pub rejected: usize,
    /// Instrumentation for this pass (timings, wave-front sizes).
    pub metrics: PassMetrics,
}

/// Output of one differential execution, before the sequential merge.
struct TaskOutput {
    /// Tuples produced by the plan (count only; the tuples themselves
    /// are dropped once checked).
    candidates: usize,
    /// Tuples surviving the §7.2 checks.
    accepted: Vec<Tuple>,
    /// Wall-clock time of plan execution plus checks.
    nanos: u64,
}

/// One unit of wave-front work: execute differential `diff` seeded by
/// the Δ-set of the node at `level`, optionally under an adaptively
/// re-optimized plan resolved before the batch was launched.
#[derive(Clone)]
struct Task {
    diff: DiffId,
    level: usize,
    plan: Option<Arc<Plan>>,
}

/// Run one breadth-first bottom-up propagation pass over the network,
/// reading base-relation Δ-sets from `storage` and returning the
/// condition-level net changes. Uses the default execution strategy
/// ([`ExecStrategy::Parallel`]); see [`propagate_with`] to choose.
pub fn propagate(
    network: &PropagationNetwork,
    catalog: &Catalog,
    storage: &Storage,
    check: CheckLevel,
) -> Result<PropagationResult, CoreError> {
    propagate_with(network, catalog, storage, check, ExecStrategy::default())
}

/// [`propagate`] with an explicit execution strategy.
///
/// Both strategies share one code path: per level, (1) close changed
/// self-recursive nodes to their fixpoints sequentially, (2) execute
/// every remaining (changed node, out-differential) task — inline or on
/// a thread pool — against the immutable level-start wave, and (3) merge
/// the accepted batches sequentially in network order with `∪Δ`. Because
/// within-level tasks never read each other's output (differentials
/// write only to strictly higher levels) and checks consult storage
/// only, the merged Δ-sets are identical under either strategy.
pub fn propagate_with(
    network: &PropagationNetwork,
    catalog: &Catalog,
    storage: &Storage,
    check: CheckLevel,
    strategy: ExecStrategy,
) -> Result<PropagationResult, CoreError> {
    propagate_shared(
        network,
        catalog,
        storage,
        check,
        strategy,
        &Arc::new(EvalShared::default()),
    )
}

/// [`propagate_with`] against caller-owned shared evaluator state
/// (plan cache, old-state indexes, derived-call memo table).
///
/// The rule manager passes a long-lived [`EvalShared`] here so plan
/// compilations survive across passes and tabled derived-call results
/// are shared by every differential of the pass — the paper's
/// cross-differential sharing, realized at the evaluator level. The
/// caller is responsible for calling [`EvalShared::reset_pass`] at pass
/// boundaries (storage changes invalidate per-pass state).
pub fn propagate_shared(
    network: &PropagationNetwork,
    catalog: &Catalog,
    storage: &Storage,
    check: CheckLevel,
    strategy: ExecStrategy,
    shared: &Arc<EvalShared>,
) -> Result<PropagationResult, CoreError> {
    propagate_adaptive(network, catalog, storage, check, strategy, shared, None)
}

/// [`propagate_shared`] with wave-front re-optimization: when `planner`
/// is given, each level's differential plans are resolved against the
/// *live* statistics (base cardinalities, column NDVs, current Δ-set
/// sizes) before the batch launches — cached plans are reused until
/// their statistics fingerprint drifts, at which point the differential
/// is recompiled under the cardinality-aware cost model.
///
/// Plan resolution is sequential and happens in serial task order, so
/// the plans each task executes — and therefore every Δ-set and counter
/// — are identical under [`ExecStrategy::Serial`] and
/// [`ExecStrategy::Parallel`]. With `planner == None` this is exactly
/// the static path: each differential runs its activation-time plan.
pub fn propagate_adaptive(
    network: &PropagationNetwork,
    catalog: &Catalog,
    storage: &Storage,
    check: CheckLevel,
    strategy: ExecStrategy,
    shared: &Arc<EvalShared>,
    planner: Option<&AdaptivePlanner>,
) -> Result<PropagationResult, CoreError> {
    let pass_timer = Stopwatch::start();
    let hits_before = shared.tabling_hits();
    let misses_before = shared.tabling_misses();
    let probes_before = shared.probe_count();
    let scans_before = shared.scan_count();
    let delta_probes_before = shared.delta_probe_count();
    let delta_scans_before = shared.delta_scan_count();
    let merge_joins_before = shared.merge_join_count();
    let fallback_before = storage.fallback_scans_total();
    let replans_before = planner.map_or(0, AdaptivePlanner::replan_count);
    let hits_cache_before = planner.map_or(0, AdaptivePlanner::hit_count);
    let mut result = PropagationResult::default();
    result.metrics.strategy = strategy.name().to_owned();
    result.metrics.check = check.name().to_owned();
    let sharded_workers = match strategy {
        ExecStrategy::Sharded { workers } => Some(workers.max(1)),
        _ => None,
    };
    let mut shard_seed_tuples: Vec<u64> = vec![0; sharded_workers.unwrap_or(0)];
    let mut shard_candidates: Vec<u64> = vec![0; sharded_workers.unwrap_or(0)];
    let mut exchange_tuples = 0u64;

    // Wave-front Δ-sets, keyed by predicate. Level-0 nodes read straight
    // from storage's accumulated transaction Δ-sets.
    let mut wave: DeltaMap = DeltaMap::new();
    for node in network.nodes() {
        if node.level == 0 {
            if let Some(rel) = catalog.def(node.pred).stored_rel() {
                if let Some(delta) = storage.delta(rel) {
                    if !delta.is_empty() {
                        wave.insert(node.pred, delta.clone());
                    }
                }
            }
        }
    }

    let levels = network.levels().len();
    for level in 0..levels {
        // The changed set is fixed at level start: within a level,
        // differentials write only to strictly higher-level nodes, so
        // processing earlier nodes can never (un)change a later one.
        let changed: Vec<&crate::network::Node> = network.levels()[level]
            .iter()
            .map(|node_id| &network.nodes()[node_id.0 as usize])
            .filter(|node| wave.get(&node.pred).map(|d| !d.is_empty()).unwrap_or(false))
            .collect();
        if changed.is_empty() {
            continue;
        }
        let wave_tuples: usize = changed
            .iter()
            .filter_map(|node| wave.get(&node.pred))
            .map(DeltaSet::len)
            .sum();

        // Linearly recursive nodes (§5 note 1): close their Δ-sets to a
        // fixpoint before firing out-edges to other nodes. Sequential:
        // each closure mutates its own node's wave entry.
        for node in &changed {
            if catalog.is_self_recursive(node.pred) {
                close_recursive_node(
                    network,
                    catalog,
                    storage,
                    node,
                    &mut wave,
                    check,
                    &mut result,
                )?;
            }
        }

        // Gather the level's tasks in serial execution order; self-
        // differentials were consumed by the fixpoint closure above.
        // Adaptive plans are resolved here, sequentially against the
        // level-start wave, so parallel execution sees the same plans
        // (and fills the same caches) as serial execution would.
        let mut tasks: Vec<Task> = Vec::new();
        for node in &changed {
            for diff_id in &node.out_diffs {
                let diff = network.differential(*diff_id);
                if diff.affected == node.pred {
                    continue;
                }
                let plan = match planner {
                    Some(p) => Some(p.plan_for(*diff_id, diff, catalog, storage, &wave)?),
                    None => None,
                };
                tasks.push(Task {
                    diff: *diff_id,
                    level,
                    plan,
                });
            }
        }

        // Execute: a partitioned exchange under the sharded strategy,
        // threads when the parallel strategy and the task count warrant
        // it, inline otherwise. Either way `wave` is frozen (shared
        // immutably) for the whole batch.
        let mut level_shards = 0usize;
        let mut max_occupancy = 0u64;
        let mut min_occupancy = 0u64;
        let (outputs, parallel): (Vec<Result<TaskOutput, CoreError>>, bool) = if let Some(workers) =
            sharded_workers
        {
            // Plan the exchange: each task's seed partitioned on its
            // shard key against the frozen level-start wave.
            let routes: Vec<(PredId, Polarity, &ShardKey)> = tasks
                .iter()
                .map(|t| {
                    let d = network.differential(t.diff);
                    (d.influent, d.seed, network.shard_key(t.diff))
                })
                .collect();
            let exchange = LevelExchange::plan(&routes, &wave, workers);
            level_shards = workers;
            max_occupancy = exchange.occupancy().iter().copied().max().unwrap_or(0);
            min_occupancy = exchange.occupancy().iter().copied().min().unwrap_or(0);
            for (s, n) in exchange.occupancy().iter().enumerate() {
                shard_seed_tuples[s] += n;
            }
            exchange_tuples += exchange.exchanged();
            let threaded = workers > 1 && exchange.exchanged() as usize >= SHARD_INLINE_THRESHOLD;
            let outs = run_tasks_sharded(
                network,
                catalog,
                storage,
                shared,
                check,
                &tasks,
                &exchange,
                workers,
                threaded,
                &mut shard_candidates,
            );
            (outs, threaded)
        } else {
            let parallel = strategy == ExecStrategy::Parallel && tasks.len() > 1;
            // One evaluation context for the whole level, borrowing
            // the frozen wave; dropped before the merge mutates
            // `wave`.
            let ctx = EvalContext::with_shared(storage, catalog, &wave, Arc::clone(shared));
            let outs = if parallel {
                run_tasks_threaded(network, catalog, &ctx, check, &tasks)
            } else {
                tasks
                    .iter()
                    .map(|task| {
                        run_differential(
                            network,
                            catalog,
                            &ctx,
                            task.diff,
                            task.plan.as_deref(),
                            check,
                        )
                    })
                    .collect()
            };
            (outs, parallel)
        };

        result.metrics.levels.push(LevelStats {
            level,
            active_nodes: changed.len(),
            wave_tuples,
            tasks: tasks.len(),
            parallel,
            shards: level_shards,
            max_occupancy,
            min_occupancy,
        });

        // Merge sequentially, in serial execution order: `∪Δ` into the
        // affected nodes' Δ-sets plus counters, trace, and timings.
        for (task, output) in tasks.iter().zip(outputs) {
            let output = output?;
            let diff = network.differential(task.diff);
            result.candidates += output.candidates;
            result.rejected += output.candidates - output.accepted.len();
            result.metrics.differentials.push(DiffTiming {
                diff: task.diff.0 as usize,
                differential: diff.display_name(catalog),
                affected: catalog.name(diff.affected).to_owned(),
                level: task.level,
                nanos: output.nanos,
                candidates: output.candidates,
                accepted: output.accepted.len(),
                est_rows: task.plan.as_deref().unwrap_or(&diff.plan).est_rows,
            });
            if !output.accepted.is_empty() || !matches!(check, CheckLevel::Raw) {
                result.fired.push(FiredDifferential {
                    diff: task.diff,
                    affected: diff.affected,
                    influent: diff.influent,
                    seed: diff.seed,
                    output: diff.output,
                    tuples: output.accepted.clone(),
                });
            }
            let target = wave.entry(diff.affected).or_default();
            for t in output.accepted {
                match diff.output {
                    Polarity::Plus => target.delta_union_insert(t),
                    Polarity::Minus => target.delta_union_delete(t),
                }
            }
        }

        // Clear the processed nodes' wave-front Δ-sets (the paper's
        // space optimization). Base Δ-sets live in storage and are
        // untouched; condition deltas are collected below before the
        // wave map is dropped.
        for node in &changed {
            if !node.is_condition {
                wave.remove(&node.pred);
            }
        }
    }

    for cond in network.conditions() {
        let delta = wave.remove(cond).unwrap_or_default();
        result.condition_deltas.insert(*cond, delta);
    }
    result.metrics.fired = result.fired.len();
    result.metrics.candidates = result.candidates;
    result.metrics.rejected = result.rejected;
    result.metrics.tabling_hits = shared.tabling_hits() - hits_before;
    result.metrics.tabling_misses = shared.tabling_misses() - misses_before;
    result.metrics.probes = shared.probe_count() - probes_before;
    result.metrics.scans = shared.scan_count() - scans_before;
    result.metrics.delta_probes = shared.delta_probe_count() - delta_probes_before;
    result.metrics.delta_scans = shared.delta_scan_count() - delta_scans_before;
    result.metrics.merge_joins = shared.merge_join_count() - merge_joins_before;
    result.metrics.replans = planner.map_or(0, AdaptivePlanner::replan_count) - replans_before;
    result.metrics.plan_cache_hits =
        planner.map_or(0, AdaptivePlanner::hit_count) - hits_cache_before;
    result.metrics.fallback_scans = storage.fallback_scans_total() - fallback_before;
    if result.metrics.fallback_scans > 0 {
        result.metrics.fallback_sites = storage
            .take_fallback_sites()
            .into_iter()
            .map(|(name, cols)| {
                let cols: Vec<String> = cols.iter().map(usize::to_string).collect();
                format!("{}[{}]", name, cols.join(","))
            })
            .collect();
    }
    result.metrics.pruned_differentials = network.pruned_count() as u64;
    if let Some(workers) = sharded_workers {
        result.metrics.workers = workers;
        result.metrics.exchange_tuples = exchange_tuples;
        let total: u64 = shard_seed_tuples.iter().sum();
        result.metrics.skew = if total == 0 {
            0.0
        } else {
            let max = shard_seed_tuples.iter().copied().max().unwrap_or(0) as f64;
            max / (total as f64 / workers as f64)
        };
        result.metrics.shard_seed_tuples = shard_seed_tuples;
        result.metrics.shard_candidates = shard_candidates;
    }
    result.metrics.nanos = pass_timer.elapsed_nanos();
    Ok(result)
}

/// [`propagate_shared`] consulting a deterministic
/// [`FaultPlan`](amos_storage::fault::FaultPlan) first: if the plan
/// schedules a failure for this pass, the pass errors out *before*
/// touching any wave-front state — modelling an evaluator crash at pass
/// start, the worst point for the surrounding transaction. Test-only
/// (the `fault-injection` feature).
#[cfg(feature = "fault-injection")]
pub fn propagate_shared_faulted(
    network: &PropagationNetwork,
    catalog: &Catalog,
    storage: &Storage,
    check: CheckLevel,
    strategy: ExecStrategy,
    shared: &Arc<EvalShared>,
    plan: &amos_storage::fault::FaultPlan,
    planner: Option<&AdaptivePlanner>,
) -> Result<PropagationResult, CoreError> {
    if plan.take_propagation_fault() {
        return Err(CoreError::FaultInjected(format!(
            "propagation pass (seed {})",
            plan.seed()
        )));
    }
    propagate_adaptive(network, catalog, storage, check, strategy, shared, planner)
}

/// Execute one differential against the frozen wave: run its plan, then
/// apply the §7.2 checks. Read-only with respect to `wave` and
/// `storage`, so any number of these can run concurrently.
fn run_differential(
    network: &PropagationNetwork,
    catalog: &Catalog,
    ctx: &EvalContext<'_>,
    diff_id: DiffId,
    plan_override: Option<&Plan>,
    check: CheckLevel,
) -> Result<TaskOutput, CoreError> {
    let timer = Stopwatch::start();
    let diff = network.differential(diff_id);
    let plan = plan_override.unwrap_or(&diff.plan);
    let mut produced: Vec<Tuple> = Vec::new();
    let bindings = vec![None; plan.n_vars as usize];
    ctx.run_plan(plan, bindings, StateEpoch::New, 0, &mut |b, head| {
        let vals: Option<Vec<Value>> = head
            .iter()
            .map(|t| match t {
                amos_objectlog::clause::Term::Const(v) => Some(v.clone()),
                amos_objectlog::clause::Term::Var(v) => b[v.0 as usize].clone(),
            })
            .collect();
        if let Some(vals) = vals {
            produced.push(Tuple::new(vals));
        }
        Ok(())
    })?;

    // Candidates feeding a recursive node skip the per-tuple §7.2
    // checks: the fixpoint closure (or the exact recompute fallback on
    // deletions) establishes correctness for the whole node at once, and
    // per-tuple `holds` on a recursive predicate would re-run the
    // fixpoint per candidate.
    let effective_check = if catalog.is_self_recursive(diff.affected) {
        CheckLevel::Raw
    } else {
        check
    };
    let candidates = produced.len();
    let mut accepted: Vec<Tuple> = Vec::new();
    for t in produced {
        if accept(ctx, diff.affected, &t, diff.output, effective_check)? {
            accepted.push(t);
        }
    }
    Ok(TaskOutput {
        candidates,
        accepted,
        nanos: timer.elapsed_nanos(),
    })
}

/// Run a level's tasks on scoped worker threads pulling from a shared
/// atomic queue. Outputs land in per-task slots, so the caller's merge
/// order is independent of completion order.
fn run_tasks_threaded(
    network: &PropagationNetwork,
    catalog: &Catalog,
    ctx: &EvalContext<'_>,
    check: CheckLevel,
    tasks: &[Task],
) -> Vec<Result<TaskOutput, CoreError>> {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // At least two workers even on one hardware thread: the strategy's
    // contract (frozen wave, per-slot outputs, deterministic merge) must
    // hold under real concurrency wherever it runs.
    let workers = hw.max(2).min(tasks.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<TaskOutput, CoreError>>>> =
        tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(i) else {
                    break;
                };
                let out = run_differential(
                    network,
                    catalog,
                    ctx,
                    task.diff,
                    task.plan.as_deref(),
                    check,
                );
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled its slot"))
        .collect()
}

/// Run a level's tasks as a partitioned exchange: worker `w` evaluates
/// every task against shard `w`'s seed slice, then the per-(task, shard)
/// outputs are recombined per task in shard order.
///
/// The recombined outputs are bit-identical to whole-seed execution:
/// the slices partition each seed exactly (every candidate descends from
/// exactly one seed tuple, so the candidate multiset is preserved), and
/// within one task all accepted tuples carry the same output polarity,
/// making the `∪Δ` fold over them order-insensitive. Empty slices are
/// skipped on both the inline and threaded paths — an empty seed
/// produces nothing.
///
/// `shard_candidates[s]` accumulates the candidates produced by shard
/// `s` (the per-shard work counters surfaced in [`PassMetrics`]).
#[allow(clippy::too_many_arguments)]
fn run_tasks_sharded(
    network: &PropagationNetwork,
    catalog: &Catalog,
    storage: &Storage,
    shared: &Arc<EvalShared>,
    check: CheckLevel,
    tasks: &[Task],
    exchange: &LevelExchange,
    workers: usize,
    threaded: bool,
    shard_candidates: &mut [u64],
) -> Vec<Result<TaskOutput, CoreError>> {
    let empty_output = || TaskOutput {
        candidates: 0,
        accepted: Vec::new(),
        nanos: 0,
    };
    let mut combine = |total: &mut TaskOutput, s: usize, out: TaskOutput| {
        shard_candidates[s] += out.candidates as u64;
        total.candidates += out.candidates;
        total.nanos += out.nanos;
        total.accepted.extend(out.accepted);
    };
    if !threaded {
        // Inline fallback: same partition, same (task, shard) combine
        // order, no thread spawn — byte-identical output to the threaded
        // path.
        return tasks
            .iter()
            .enumerate()
            .map(|(i, task)| {
                let mut total = empty_output();
                for (s, slice) in exchange.slices(i).iter().enumerate() {
                    if slice.is_empty() {
                        continue;
                    }
                    let ctx = EvalContext::with_shared(storage, catalog, slice, Arc::clone(shared));
                    let out = run_differential(
                        network,
                        catalog,
                        &ctx,
                        task.diff,
                        task.plan.as_deref(),
                        check,
                    )?;
                    combine(&mut total, s, out);
                }
                Ok(total)
            })
            .collect();
    }

    // One scoped thread per shard; worker `w` owns slice `w` of every
    // task and writes into per-(task, shard) slots, so the combine below
    // is independent of completion order.
    type ShardSlot = Mutex<Option<Result<TaskOutput, CoreError>>>;
    let slots: Vec<Vec<ShardSlot>> = tasks
        .iter()
        .map(|_| (0..workers).map(|_| Mutex::new(None)).collect())
        .collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            scope.spawn(move || {
                for (i, task) in tasks.iter().enumerate() {
                    let slice = &exchange.slices(i)[w];
                    if slice.is_empty() {
                        continue;
                    }
                    let ctx = EvalContext::with_shared(storage, catalog, slice, Arc::clone(shared));
                    let out = run_differential(
                        network,
                        catalog,
                        &ctx,
                        task.diff,
                        task.plan.as_deref(),
                        check,
                    );
                    *slots[i][w].lock().unwrap() = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|task_slots| {
            let mut total = empty_output();
            for (s, slot) in task_slots.into_iter().enumerate() {
                match slot.into_inner().unwrap() {
                    None => {}
                    Some(Ok(out)) => combine(&mut total, s, out),
                    Some(Err(e)) => return Err(e),
                }
            }
            Ok(total)
        })
        .collect()
}

/// Close a linearly recursive node's Δ-set to a fixpoint ("revisiting
/// nodes below and using fixed point techniques", §5 note 1).
///
/// * Pure insertions: semi-naive — repeatedly execute the node's
///   self-differentials (`ΔP/Δ₊P`) seeded by the newest frontier until
///   a round derives nothing new.
/// * Any deletions: fall back to exact recomputation of the node's
///   delta (`<P_new − P_old, P_old − P_new>` via fixpoint evaluation in
///   both states) — the DRed-style over-delete/re-derive dance is out
///   of scope, and the fallback is always exact.
///
/// Under [`CheckLevel::Strict`] the closed insertions are additionally
/// filtered against the node's old-state fixpoint (computed once).
fn close_recursive_node(
    network: &PropagationNetwork,
    catalog: &Catalog,
    storage: &Storage,
    node: &crate::network::Node,
    wave: &mut DeltaMap,
    check: CheckLevel,
    result: &mut PropagationResult,
) -> Result<(), CoreError> {
    let Some(delta) = wave.get(&node.pred) else {
        return Ok(());
    };
    if !delta.minus().is_empty() {
        // Deletions reached a recursive node: recompute exactly.
        let exact = recompute_delta(catalog, storage, node.pred)?;
        wave.insert(node.pred, exact);
        return Ok(());
    }

    let self_diffs: Vec<&crate::differ::Differential> = node
        .out_diffs
        .iter()
        .map(|d| network.differential(*d))
        .filter(|d| d.affected == node.pred && d.seed == Polarity::Plus)
        .collect();
    let mut total: amos_types::FxHashSet<Tuple> = delta.plus().clone();
    let mut frontier: amos_types::FxHashSet<Tuple> = total.clone();
    while !frontier.is_empty() {
        let mut fdelta = DeltaSet::new();
        for t in frontier.drain() {
            fdelta.apply_insert(t);
        }
        let mut fmap = DeltaMap::new();
        fmap.insert(node.pred, fdelta);
        let ctx = EvalContext::new(storage, catalog, &fmap);
        let mut produced: Vec<Tuple> = Vec::new();
        for diff in &self_diffs {
            let bindings = vec![None; diff.plan.n_vars as usize];
            ctx.run_plan(&diff.plan, bindings, StateEpoch::New, 0, &mut |b, head| {
                if let Some(vals) = head
                    .iter()
                    .map(|t| match t {
                        amos_objectlog::clause::Term::Const(v) => Some(v.clone()),
                        amos_objectlog::clause::Term::Var(v) => b[v.0 as usize].clone(),
                    })
                    .collect::<Option<Vec<Value>>>()
                {
                    produced.push(Tuple::new(vals));
                }
                Ok(())
            })?;
        }
        result.candidates += produced.len();
        for t in produced {
            if total.insert(t.clone()) {
                frontier.insert(t);
            }
        }
    }

    // Strict: only genuinely new derivations (absent from the old
    // fixpoint). The old state is computed once for the whole node.
    if check == CheckLevel::Strict {
        let empty = DeltaMap::new();
        let ctx = EvalContext::new(storage, catalog, &empty);
        let pattern = vec![None; catalog.def(node.pred).arity];
        let old = ctx.eval_pred(node.pred, &pattern, StateEpoch::Old)?;
        let before = total.len();
        total.retain(|t| !old.contains(t));
        result.rejected += before - total.len();
    }

    let mut closed = DeltaSet::new();
    for t in total {
        closed.delta_union_insert(t);
    }
    wave.insert(node.pred, closed);
    Ok(())
}

/// Apply the §7.2 checks to one candidate change of `pred`.
fn accept(
    ctx: &EvalContext<'_>,
    pred: PredId,
    tuple: &Tuple,
    output: Polarity,
    check: CheckLevel,
) -> Result<bool, CoreError> {
    let pattern: Vec<Option<Value>> = tuple.values().iter().cloned().map(Some).collect();
    Ok(match (check, output) {
        (CheckLevel::Raw, _) => true,
        // Mandatory: a propagated deletion must really be gone, or rules
        // under-react.
        (CheckLevel::Nervous, Polarity::Minus) | (CheckLevel::Strict, Polarity::Minus) => {
            let still_present = ctx.holds(pred, &pattern, StateEpoch::New)?;
            if still_present {
                false
            } else if check == CheckLevel::Strict {
                // Strict deletions must also have held before.
                ctx.holds(pred, &pattern, StateEpoch::Old)?
            } else {
                true
            }
        }
        (CheckLevel::Nervous, Polarity::Plus) => true,
        (CheckLevel::Strict, Polarity::Plus) => {
            ctx.holds(pred, &pattern, StateEpoch::New)?
                && !ctx.holds(pred, &pattern, StateEpoch::Old)?
        }
    })
}

/// Ground truth for tests and the naive baseline: the exact delta of a
/// predicate, `<P_new − P_old, P_old − P_new>`, by full evaluation in
/// both states.
pub fn recompute_delta(
    catalog: &Catalog,
    storage: &Storage,
    pred: PredId,
) -> Result<DeltaSet, CoreError> {
    let deltas = DeltaMap::new();
    let ctx = EvalContext::new(storage, catalog, &deltas);
    let arity = catalog.def(pred).arity;
    let pattern = vec![None; arity];
    let new = ctx.eval_pred(pred, &pattern, StateEpoch::New)?;
    let old = ctx.eval_pred(pred, &pattern, StateEpoch::Old)?;
    Ok(DeltaSet::from_parts(
        new.difference(&old).cloned().collect(),
        old.difference(&new).cloned().collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differ::DiffScope;
    use amos_objectlog::catalog::Catalog;
    use amos_objectlog::clause::{ClauseBuilder, Term};
    use amos_types::{tuple, CmpOp, TypeId};

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    struct Fix {
        storage: Storage,
        catalog: Catalog,
        rq: amos_storage::RelId,
        rr: amos_storage::RelId,
        p: PredId,
    }

    /// p(X,Z) ← q(X,Y) ∧ r(Y,Z), monitored.
    fn fixture() -> Fix {
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 2).unwrap();
        let rr = storage.create_relation("r", 2).unwrap();
        let mut catalog = Catalog::new();
        let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
        let r = catalog.define_stored("r", sig(2), rr, 1).unwrap();
        let p = catalog
            .define_derived(
                "p",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap();
        storage.monitor(rq);
        storage.monitor(rr);
        storage.insert(rq, tuple![1, 1]).unwrap();
        storage.insert(rr, tuple![1, 2]).unwrap();
        storage.insert(rr, tuple![2, 3]).unwrap();
        Fix {
            storage,
            catalog,
            rq,
            rr,
            p,
        }
    }

    /// §4.3: insert q(1,2), r(1,4) ⇒ Δ₊p = {(1,3),(1,4)}.
    #[test]
    fn positive_example_propagates() {
        let mut f = fixture();
        let net =
            PropagationNetwork::build(&f.catalog, &mut f.storage, &[f.p], DiffScope::Full).unwrap();
        f.storage.begin().unwrap();
        f.storage.insert(f.rq, tuple![1, 2]).unwrap();
        f.storage.insert(f.rr, tuple![1, 4]).unwrap();

        let result = propagate(&net, &f.catalog, &f.storage, CheckLevel::Strict).unwrap();
        let dp = &result.condition_deltas[&f.p];
        assert_eq!(
            dp.plus(),
            &[tuple![1, 3], tuple![1, 4]].into_iter().collect()
        );
        assert!(dp.minus().is_empty());
        // Two differentials fired: Δp/Δ₊q and Δp/Δ₊r.
        let fired: Vec<_> = result
            .fired
            .iter()
            .filter(|f| !f.tuples.is_empty())
            .collect();
        assert_eq!(fired.len(), 2);
    }

    /// §4.4: mixed inserts and deletes ⇒ Δp = <{(1,4)}, {(1,2)}> — the
    /// old state of q prevents the spurious deletion of (1,3).
    #[test]
    fn negative_example_uses_old_state() {
        let mut f = fixture();
        let net =
            PropagationNetwork::build(&f.catalog, &mut f.storage, &[f.p], DiffScope::Full).unwrap();
        f.storage.begin().unwrap();
        f.storage.insert(f.rq, tuple![1, 2]).unwrap();
        f.storage.insert(f.rr, tuple![1, 4]).unwrap();
        f.storage.delete(f.rr, &tuple![1, 2]).unwrap();
        f.storage.delete(f.rr, &tuple![2, 3]).unwrap();

        let result = propagate(&net, &f.catalog, &f.storage, CheckLevel::Nervous).unwrap();
        let dp = &result.condition_deltas[&f.p];
        assert_eq!(dp.plus(), &[tuple![1, 4]].into_iter().collect());
        assert_eq!(dp.minus(), &[tuple![1, 2]].into_iter().collect());
    }

    /// Propagated deltas match naive recomputation (strict check level).
    #[test]
    fn matches_recompute() {
        let mut f = fixture();
        let net =
            PropagationNetwork::build(&f.catalog, &mut f.storage, &[f.p], DiffScope::Full).unwrap();
        f.storage.begin().unwrap();
        f.storage.insert(f.rq, tuple![2, 2]).unwrap();
        f.storage.delete(f.rq, &tuple![1, 1]).unwrap();
        f.storage.insert(f.rr, tuple![2, 9]).unwrap();

        let result = propagate(&net, &f.catalog, &f.storage, CheckLevel::Strict).unwrap();
        let truth = recompute_delta(&f.catalog, &f.storage, f.p).unwrap();
        assert_eq!(&result.condition_deltas[&f.p], &truth);
    }

    /// No changes ⇒ empty result, nothing fired.
    #[test]
    fn no_changes_no_work() {
        let mut f = fixture();
        let net =
            PropagationNetwork::build(&f.catalog, &mut f.storage, &[f.p], DiffScope::Full).unwrap();
        f.storage.begin().unwrap();
        let result = propagate(&net, &f.catalog, &f.storage, CheckLevel::Strict).unwrap();
        assert!(result.condition_deltas[&f.p].is_empty());
        assert!(result.fired.is_empty());
        assert_eq!(result.candidates, 0);
    }

    /// A transaction with no net effect propagates no change (logical
    /// events only).
    #[test]
    fn cancelled_updates_propagate_nothing() {
        let mut f = fixture();
        let net =
            PropagationNetwork::build(&f.catalog, &mut f.storage, &[f.p], DiffScope::Full).unwrap();
        f.storage.begin().unwrap();
        f.storage.delete(f.rq, &tuple![1, 1]).unwrap();
        f.storage.insert(f.rq, tuple![1, 1]).unwrap();
        let result = propagate(&net, &f.catalog, &f.storage, CheckLevel::Strict).unwrap();
        assert!(result.condition_deltas[&f.p].is_empty());
        assert_eq!(
            result.candidates, 0,
            "empty Δ-sets never execute differentials"
        );
    }

    /// Strict vs nervous: an insertion of an already-true instance is
    /// filtered under strict, reported under nervous.
    #[test]
    fn strict_filters_already_true() {
        let mut f = fixture();
        // Make p(1,2) derivable twice: q(1,1) ∧ r(1,2) already holds; add
        // q(1,2) ∧ r(2,2) as a second derivation.
        f.storage.insert(f.rr, tuple![2, 2]).unwrap();
        let net =
            PropagationNetwork::build(&f.catalog, &mut f.storage, &[f.p], DiffScope::Full).unwrap();
        f.storage.begin().unwrap();
        f.storage.insert(f.rq, tuple![1, 2]).unwrap();

        let nervous = propagate(&net, &f.catalog, &f.storage, CheckLevel::Nervous).unwrap();
        assert!(
            nervous.condition_deltas[&f.p]
                .plus()
                .contains(&tuple![1, 2]),
            "nervous over-reports the second derivation"
        );
        let strict = propagate(&net, &f.catalog, &f.storage, CheckLevel::Strict).unwrap();
        assert!(
            !strict.condition_deltas[&f.p].plus().contains(&tuple![1, 2]),
            "strict suppresses already-true instances"
        );
        assert!(strict.condition_deltas[&f.p].plus().contains(&tuple![1, 3]));
    }

    /// The mandatory deletion check: deleting one derivation of a tuple
    /// with another surviving must not propagate the deletion.
    #[test]
    fn deletion_check_prevents_under_reaction() {
        let mut f = fixture();
        // p(1,2) via q(1,1),r(1,2); add second derivation q(1,2),r(2,2).
        f.storage.insert(f.rq, tuple![1, 2]).unwrap();
        f.storage.insert(f.rr, tuple![2, 2]).unwrap();
        let net =
            PropagationNetwork::build(&f.catalog, &mut f.storage, &[f.p], DiffScope::Full).unwrap();
        f.storage.begin().unwrap();
        f.storage.delete(f.rq, &tuple![1, 1]).unwrap();

        let result = propagate(&net, &f.catalog, &f.storage, CheckLevel::Nervous).unwrap();
        assert!(
            !result.condition_deltas[&f.p]
                .minus()
                .contains(&tuple![1, 2]),
            "p(1,2) still derivable — deletion must be filtered"
        );
        assert!(result.rejected > 0, "the check did reject the candidate");
    }

    /// Serial and parallel strategies agree — Δ-sets, counters, and the
    /// set of fired differentials — under every check level.
    #[test]
    fn serial_and_parallel_strategies_agree() {
        let mut f = fixture();
        let net =
            PropagationNetwork::build(&f.catalog, &mut f.storage, &[f.p], DiffScope::Full).unwrap();
        f.storage.begin().unwrap();
        f.storage.insert(f.rq, tuple![1, 2]).unwrap();
        f.storage.insert(f.rr, tuple![1, 4]).unwrap();
        f.storage.delete(f.rr, &tuple![2, 3]).unwrap();

        for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            let serial =
                propagate_with(&net, &f.catalog, &f.storage, check, ExecStrategy::Serial).unwrap();
            let parallel =
                propagate_with(&net, &f.catalog, &f.storage, check, ExecStrategy::Parallel)
                    .unwrap();
            assert_eq!(serial.condition_deltas, parallel.condition_deltas);
            assert_eq!(serial.candidates, parallel.candidates);
            assert_eq!(serial.rejected, parallel.rejected);
            assert_eq!(
                serial.fired.iter().map(|fd| fd.diff).collect::<Vec<_>>(),
                parallel.fired.iter().map(|fd| fd.diff).collect::<Vec<_>>(),
                "trace order must match serial execution order"
            );
        }
    }

    /// Sharded execution agrees with serial for every worker count and
    /// check level — Δ-sets, counters, and the fired trace.
    #[test]
    fn sharded_strategy_agrees_with_serial() {
        let mut f = fixture();
        let net =
            PropagationNetwork::build(&f.catalog, &mut f.storage, &[f.p], DiffScope::Full).unwrap();
        f.storage.begin().unwrap();
        f.storage.insert(f.rq, tuple![1, 2]).unwrap();
        f.storage.insert(f.rr, tuple![1, 4]).unwrap();
        f.storage.delete(f.rr, &tuple![2, 3]).unwrap();

        for check in [CheckLevel::Raw, CheckLevel::Nervous, CheckLevel::Strict] {
            let serial =
                propagate_with(&net, &f.catalog, &f.storage, check, ExecStrategy::Serial).unwrap();
            for workers in [1, 2, 3, 8] {
                let sharded = propagate_with(
                    &net,
                    &f.catalog,
                    &f.storage,
                    check,
                    ExecStrategy::Sharded { workers },
                )
                .unwrap();
                assert_eq!(serial.condition_deltas, sharded.condition_deltas);
                assert_eq!(serial.candidates, sharded.candidates);
                assert_eq!(serial.rejected, sharded.rejected);
                assert_eq!(
                    serial.fired.iter().map(|fd| fd.diff).collect::<Vec<_>>(),
                    sharded.fired.iter().map(|fd| fd.diff).collect::<Vec<_>>(),
                );
                // The exchange accounted every seed tuple exactly once
                // per distinct routing, and occupancy sums to the seeds
                // consumed per task.
                let m = &sharded.metrics;
                assert_eq!(m.strategy, "sharded");
                assert_eq!(m.workers, workers);
                assert_eq!(m.shard_seed_tuples.len(), workers);
                assert!(m.exchange_tuples > 0);
                assert!(m.skew >= 1.0, "skew {} below balanced floor", m.skew);
                assert!(m.levels.iter().all(|l| l.shards == workers));
                let cand: u64 = m.shard_candidates.iter().sum();
                assert_eq!(cand as usize, sharded.candidates);
            }
        }
    }

    /// Strategy parsing: the accepted grammar and spanned rejections.
    #[test]
    fn strategy_parse_grammar_and_spans() {
        assert_eq!(ExecStrategy::parse("serial"), Ok(ExecStrategy::Serial));
        assert_eq!(ExecStrategy::parse("parallel"), Ok(ExecStrategy::Parallel));
        assert_eq!(
            ExecStrategy::parse("sharded:4"),
            Ok(ExecStrategy::Sharded { workers: 4 })
        );
        assert_eq!(
            ExecStrategy::parse("sharded:1"),
            Ok(ExecStrategy::Sharded { workers: 1 })
        );

        let e = ExecStrategy::parse("turbo").unwrap_err();
        assert_eq!(e.span, (0, 5));
        assert!(e.message.contains("unknown strategy `turbo`"));

        let e = ExecStrategy::parse("sharded").unwrap_err();
        assert_eq!(e.span, (0, 7));
        assert!(e.message.contains("worker count"));

        let e = ExecStrategy::parse("sharded:0").unwrap_err();
        assert_eq!(e.span, (8, 1), "span covers the count after the colon");
        assert!(e.message.contains("out of range"));

        let e = ExecStrategy::parse("sharded:many").unwrap_err();
        assert_eq!(e.span, (8, 4));
        assert!(e.message.contains("invalid worker count"));

        let e = ExecStrategy::parse("serial:2").unwrap_err();
        assert_eq!(e.span, (6, 2));
        assert!(e.message.contains("takes no"));
    }

    /// The metrics layer records the pass: per-differential timings in
    /// merge order, per-level wave sizes, and consistent totals.
    #[test]
    fn metrics_describe_the_pass() {
        let mut f = fixture();
        let net =
            PropagationNetwork::build(&f.catalog, &mut f.storage, &[f.p], DiffScope::Full).unwrap();
        f.storage.begin().unwrap();
        f.storage.insert(f.rq, tuple![1, 2]).unwrap();
        f.storage.insert(f.rr, tuple![1, 4]).unwrap();

        let result = propagate(&net, &f.catalog, &f.storage, CheckLevel::Strict).unwrap();
        let m = &result.metrics;
        assert_eq!(m.strategy, "parallel");
        assert_eq!(m.check, "strict");
        assert_eq!(m.fired, result.fired.len());
        assert_eq!(m.candidates, result.candidates);
        assert_eq!(m.rejected, result.rejected);
        // Both base relations changed at level 0, each with a positive
        // and a negative differential into p (full diff scope); the wave
        // then reaches p's level, which has no out-edges.
        assert_eq!(m.levels.len(), 2);
        assert_eq!(m.levels[0].active_nodes, 2);
        assert_eq!(m.levels[0].wave_tuples, 2);
        assert_eq!(m.levels[0].tasks, 4);
        assert!(m.levels[0].parallel);
        assert_eq!(m.levels[1].active_nodes, 1);
        assert_eq!(m.levels[1].tasks, 0);
        assert_eq!(m.differentials.len(), 4);
        let total: usize = m.differentials.iter().map(|d| d.candidates).sum();
        assert_eq!(total, result.candidates);
        assert!(m
            .differentials
            .iter()
            .all(|d| d.differential.starts_with("Δp/")));
        // The JSON artifact serializes without panicking and mentions
        // the differential names.
        assert!(m.to_json().to_compact().contains("Δp/"));
    }

    /// Multi-level (bushy) propagation: changes pass through an
    /// intermediate node.
    #[test]
    fn bushy_two_level_propagation() {
        let mut f = fixture();
        let q = f.catalog.lookup("q").unwrap();
        let r = f.catalog.lookup("r").unwrap();
        // mid(X,Z) ← q(X,Y) ∧ r(Y,Z);  top(X) ← mid(X,Z) ∧ Z < 100
        let mid = f
            .catalog
            .define_derived(
                "mid",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap();
        let top = f
            .catalog
            .define_derived(
                "top",
                sig(1),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(mid, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Lt, Term::val(100))
                    .build()],
            )
            .unwrap();
        let net =
            PropagationNetwork::build(&f.catalog, &mut f.storage, &[top], DiffScope::Full).unwrap();
        assert_eq!(net.levels().len(), 3);

        f.storage.begin().unwrap();
        f.storage.insert(f.rq, tuple![7, 2]).unwrap(); // q(7,2) ∧ r(2,3) ⇒ mid(7,3) ⇒ top(7)
        let result = propagate(&net, &f.catalog, &f.storage, CheckLevel::Strict).unwrap();
        assert_eq!(
            result.condition_deltas[&top].plus(),
            &[tuple![7]].into_iter().collect()
        );
        let truth = recompute_delta(&f.catalog, &f.storage, top).unwrap();
        assert_eq!(&result.condition_deltas[&top], &truth);
    }
}
