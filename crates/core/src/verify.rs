//! Conformance verification of a compiled propagation network.
//!
//! The network builder is trusted code, but the calculus it implements
//! has sharp invariants that are easy to break silently while refactoring
//! — a dropped differential loses updates, a duplicated one double-counts
//! contributions into the Δ-sets, a bad level breaks the breadth-first
//! precondition for old-state rollback, and a wrong shard key splits a
//! seed tuple's bindings across workers. This module re-derives, from the
//! catalog alone, what the paper's equations say the network must contain
//! and diffs the compiled artifact against it:
//!
//! * **edge completeness** — exactly one differential per (affected,
//!   influent occurrence, seed polarity) required by the differencing
//!   scope, minus those the static pruning passes (L004 syntactic, L007
//!   semantic) are entitled to drop; nothing extra, nothing doubled;
//! * **substitution fidelity** — each differential's clause and output
//!   polarity equal the §4.3–§4.5 substitution recomputed from source;
//! * **monotone levels** — every node sits at its catalog stratum and
//!   no differential edge goes downward (level-preserving edges are
//!   legal only for the semi-naive fixpoint inside a recursive SCC),
//!   so the wave-front processes all of a node's in-edges before its
//!   out-edges fire;
//! * **shard-key consistency** — the recorded routing key matches the
//!   Δ-literal's join columns.
//!
//! The engine runs this after every `build_network` during `activate`
//! and refuses to install rules over a non-conforming network. A
//! builder-mutation test corrupts networks through the `testing_*` hooks
//! and asserts each corruption is rejected with a distinct violation.

use std::collections::{HashMap, HashSet};
use std::fmt;

use amos_objectlog::catalog::{Catalog, PredId, PredKind};
use amos_objectlog::clause::Literal;
use amos_storage::{Polarity, Storage};

use crate::differ::{differenced_clause, DiffScope};
use crate::network::PropagationNetwork;
use crate::shard::ShardKey;

/// One way a compiled network can fail to conform to the calculus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A predicate reachable from a condition has no node.
    MissingNode {
        /// The absent predicate.
        pred: String,
    },
    /// A required differential was not emitted (and no pruning pass is
    /// entitled to drop it).
    MissingDifferential {
        /// Display name of the absent differential.
        name: String,
        /// Source clause index within the affected predicate.
        clause_index: usize,
        /// Substituted literal index within that clause.
        literal_index: usize,
    },
    /// The same (affected, occurrence, seed) differential appears more
    /// than once — a double-counted contribution path.
    DuplicateDifferential {
        /// Display name of the doubled differential.
        name: String,
        /// How many copies were found.
        count: usize,
    },
    /// A differential exists that the calculus does not call for.
    SpuriousDifferential {
        /// Display name of the extra differential.
        name: String,
    },
    /// A differential's clause or output polarity differs from the
    /// substitution recomputed from the source clause.
    SubstitutionMismatch {
        /// Display name of the mismatching differential.
        name: String,
    },
    /// A node's level is not its catalog stratum.
    BadLevel {
        /// The node's predicate.
        pred: String,
        /// The stratum the catalog assigns.
        expected: usize,
        /// The level recorded in the network.
        found: usize,
    },
    /// A differential edge goes downward in level (upward and — for
    /// recursive SCCs — level-preserving edges are the only legal
    /// shapes).
    NonMonotoneEdge {
        /// Display name of the offending differential.
        name: String,
        /// Level of the influent (source) node.
        from: usize,
        /// Level of the affected (target) node.
        to: usize,
    },
    /// A differential's recorded shard key differs from the Δ-literal's
    /// join columns.
    ShardKeyMismatch {
        /// Display name of the offending differential.
        name: String,
        /// The key the Δ-literal's join columns call for.
        expected: String,
        /// The key recorded in the network.
        found: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingNode { pred } => {
                write!(
                    f,
                    "conformance: reachable predicate {pred} has no network node"
                )
            }
            Violation::MissingDifferential {
                name,
                clause_index,
                literal_index,
            } => write!(
                f,
                "conformance: required differential {name} (clause {clause_index}, \
                 literal {literal_index}) was not emitted"
            ),
            Violation::DuplicateDifferential { name, count } => write!(
                f,
                "conformance: differential {name} emitted {count} times — \
                 contributions would be double-counted"
            ),
            Violation::SpuriousDifferential { name } => {
                write!(
                    f,
                    "conformance: differential {name} is not called for by the calculus"
                )
            }
            Violation::SubstitutionMismatch { name } => write!(
                f,
                "conformance: differential {name} does not match the §4.3–§4.5 \
                 substitution of its source clause"
            ),
            Violation::BadLevel {
                pred,
                expected,
                found,
            } => write!(
                f,
                "conformance: node {pred} at level {found}, but its stratum is {expected}"
            ),
            Violation::NonMonotoneEdge { name, from, to } => write!(
                f,
                "conformance: differential {name} runs downward from level {from} to \
                 level {to} — the wave-front cannot revisit a finished level"
            ),
            Violation::ShardKeyMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "conformance: differential {name} routed by {found}, but its join \
                 columns call for {expected}"
            ),
        }
    }
}

/// Statically check `net` against the calculus. `scope` and `semantic`
/// must be the values the network was built with (they determine which
/// differentials are required and which the pruning passes may drop).
/// Returns every violation found — empty means the network conforms.
pub fn verify_network(
    catalog: &Catalog,
    storage: &Storage,
    net: &PropagationNetwork,
    scope: DiffScope,
    semantic: bool,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let analysis = semantic.then(|| amos_lint::absint::analyze(catalog));

    // Reachability: every predicate a condition depends on needs a node
    // at its catalog stratum.
    let mut reachable: HashSet<PredId> = HashSet::new();
    let mut stack: Vec<PredId> = net.conditions().to_vec();
    while let Some(p) = stack.pop() {
        if !reachable.insert(p) {
            continue;
        }
        stack.extend(catalog.direct_influents(p));
    }
    for &pred in &reachable {
        let Some(node) = net.node_of(pred) else {
            violations.push(Violation::MissingNode {
                pred: catalog.name(pred).to_string(),
            });
            continue;
        };
        if let Ok(stratum) = catalog.stratum(pred) {
            if node.level != stratum {
                violations.push(Violation::BadLevel {
                    pred: catalog.name(pred).to_string(),
                    expected: stratum,
                    found: node.level,
                });
            }
        }
    }

    // Re-derive the required differential set. A required edge is keyed
    // by (affected, influent, seed, clause, literal); the value carries
    // the substituted clause so fidelity can be checked.
    type Key = (PredId, PredId, Polarity, usize, usize);
    let node_preds: HashSet<PredId> = net.nodes().iter().map(|n| n.pred).collect();
    let mut required: HashMap<Key, amos_objectlog::clause::Clause> = HashMap::new();
    for node in net.nodes() {
        let affected = node.pred;
        if !matches!(catalog.def(affected).kind, PredKind::Derived(_)) {
            continue;
        }
        let Some(clauses) = catalog.def(affected).clauses() else {
            continue;
        };
        for (ci, clause) in clauses.iter().enumerate() {
            for (li, lit) in clause.body.iter().enumerate() {
                let Literal::Pred { pred, negated, .. } = lit else {
                    continue;
                };
                if !node_preds.contains(pred) {
                    continue;
                }
                let seeds: &[Polarity] = match scope {
                    DiffScope::Full => &[Polarity::Plus, Polarity::Minus],
                    DiffScope::InsertionsOnly => {
                        if *negated {
                            &[Polarity::Minus]
                        } else {
                            &[Polarity::Plus]
                        }
                    }
                };
                for &seed in seeds {
                    let (dclause, _output) = differenced_clause(clause, li, seed)
                        .expect("literal is a relation occurrence");
                    // Mirror the builder's pruning entitlements: a pruned
                    // differential is neither required nor spurious.
                    let dead_minus = seed == Polarity::Minus
                        && catalog
                            .def(*pred)
                            .stored_rel()
                            .is_some_and(|rel| storage.is_append_only(rel));
                    if dead_minus || amos_lint::clause_statically_false(&dclause) {
                        continue;
                    }
                    if let Some(analysis) = &analysis {
                        if analysis.clause_provably_empty(catalog, &dclause) {
                            continue;
                        }
                    }
                    required.insert((affected, *pred, seed, ci, li), dclause);
                }
            }
        }
    }

    // Index the compiled differentials by the same key.
    let mut found: HashMap<Key, Vec<usize>> = HashMap::new();
    for (idx, d) in net.differentials().iter().enumerate() {
        found
            .entry((
                d.affected,
                d.influent,
                d.seed,
                d.clause_index,
                d.literal_index,
            ))
            .or_default()
            .push(idx);
    }

    for (key, dclause) in &required {
        let &(affected, influent, seed, ci, li) = key;
        let name = format!(
            "Δ{}/{}{}",
            catalog.name(affected),
            seed,
            catalog.name(influent)
        );
        match found.get(key).map(Vec::as_slice) {
            None | Some([]) => violations.push(Violation::MissingDifferential {
                name,
                clause_index: ci,
                literal_index: li,
            }),
            Some(idxs) => {
                if idxs.len() > 1 {
                    violations.push(Violation::DuplicateDifferential {
                        name: name.clone(),
                        count: idxs.len(),
                    });
                }
                for &idx in idxs {
                    let d = &net.differentials()[idx];
                    let expected_output =
                        differenced_clause(&catalog.def(affected).clauses().unwrap()[ci], li, seed)
                            .unwrap()
                            .1;
                    if d.clause != *dclause || d.output != expected_output {
                        violations.push(Violation::SubstitutionMismatch { name: name.clone() });
                    }
                    let expected_key = ShardKey::for_delta_literal(dclause, li);
                    let recorded = net.shard_key(crate::differ::DiffId(idx as u32));
                    if *recorded != expected_key {
                        violations.push(Violation::ShardKeyMismatch {
                            name: name.clone(),
                            expected: expected_key.describe(),
                            found: recorded.describe(),
                        });
                    }
                }
            }
        }
    }

    for (key, idxs) in &found {
        if !required.contains_key(key) {
            for _ in idxs {
                let &(affected, influent, seed, ..) = key;
                violations.push(Violation::SpuriousDifferential {
                    name: format!(
                        "Δ{}/{}{}",
                        catalog.name(affected),
                        seed,
                        catalog.name(influent)
                    ),
                });
            }
        }
    }

    // Edge monotonicity over the levels the network records. Equal
    // levels are legal exactly within a recursive SCC (a linear
    // self-differential like Δreach/Δ+reach re-enters its own stratum
    // for the semi-naive fixpoint); strata are otherwise strictly
    // increasing along dependencies, and a *wrong* equal level is still
    // caught by the `BadLevel` comparison against the catalog.
    for d in net.differentials() {
        let (Some(from), Some(to)) = (net.node_of(d.influent), net.node_of(d.affected)) else {
            continue; // already reported as MissingNode
        };
        if from.level > to.level {
            violations.push(Violation::NonMonotoneEdge {
                name: d.display_name(catalog),
                from: from.level,
                to: to.level,
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_objectlog::clause::{ClauseBuilder, Term};
    use amos_types::{CmpOp, TypeId};

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    /// A freshly built network conforms; the violation renderings are
    /// distinct per variant.
    #[test]
    fn fresh_network_conforms() {
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 2).unwrap();
        let rr = storage.create_relation("r", 2).unwrap();
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), rq, 1).unwrap();
        let r = cat.define_stored("r", sig(2), rr, 1).unwrap();
        let cnd = cat
            .define_derived(
                "cnd",
                sig(1),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .cmp(Term::var(1), CmpOp::Lt, Term::var(2))
                    .build()],
            )
            .unwrap();
        let net = PropagationNetwork::build(&cat, &mut storage, &[cnd], DiffScope::Full).unwrap();
        assert_eq!(
            verify_network(&cat, &storage, &net, DiffScope::Full, true),
            Vec::new()
        );
        // InsertionsOnly-built networks verify under their own scope but
        // are (correctly) incomplete under Full.
        let net_ins =
            PropagationNetwork::build(&cat, &mut storage, &[cnd], DiffScope::InsertionsOnly)
                .unwrap();
        assert!(
            verify_network(&cat, &storage, &net_ins, DiffScope::InsertionsOnly, true).is_empty()
        );
        assert!(
            verify_network(&cat, &storage, &net_ins, DiffScope::Full, true)
                .iter()
                .all(|v| matches!(v, Violation::MissingDifferential { .. }))
        );
    }
}
