//! Incremental aggregates — the §8 "future work" extension.
//!
//! An [`AggregateView`] maintains `agg(value_col) group by group_cols`
//! over a **stored** source relation, incrementally: the source's Δ-set
//! folds into per-group state, and the view emits its own Δ-set of
//! `(group…, value)` result tuples.
//!
//! * `count`/`sum`/`avg` keep O(1) state per group.
//! * `min`/`max` keep a multiset (ordered map value → multiplicity) so
//!   deletions of the current extremum are exact without rescanning the
//!   source.
//!
//! The engine layer materializes the view into a backing stored relation
//! at the start of each check phase: writing the aggregate's changes
//! through [`amos_storage::Storage`] produces ordinary physical events,
//! so the propagation network (and therefore rule conditions) can depend
//! on aggregates exactly like on any stored function.

use std::collections::{BTreeMap, HashMap};

use amos_objectlog::catalog::{Catalog, PredId};
use amos_storage::{DeltaSet, Storage};
use amos_types::{Tuple, Value, ValueError};

use crate::error::CoreError;

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Number of source tuples per group.
    Count,
    /// Sum of the value column.
    Sum,
    /// Average of the value column (`real`-valued).
    Avg,
    /// Minimum of the value column.
    Min,
    /// Maximum of the value column.
    Max,
}

impl AggFn {
    /// The AMOSQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Count => "count",
            AggFn::Sum => "sum",
            AggFn::Avg => "avg",
            AggFn::Min => "min",
            AggFn::Max => "max",
        }
    }

    /// Parse an AMOSQL aggregate name.
    pub fn parse(s: &str) -> Option<AggFn> {
        match s {
            "count" => Some(AggFn::Count),
            "sum" => Some(AggFn::Sum),
            "avg" => Some(AggFn::Avg),
            "min" => Some(AggFn::Min),
            "max" => Some(AggFn::Max),
            _ => None,
        }
    }
}

/// Per-group incremental state.
#[derive(Debug, Clone, Default)]
struct GroupState {
    count: i64,
    /// Running sum (integers; promoted to real on demand).
    sum_int: i64,
    sum_real: f64,
    any_real: bool,
    /// Ordered multiset for min/max.
    values: BTreeMap<Value, usize>,
}

impl GroupState {
    fn add(&mut self, v: &Value) -> Result<(), ValueError> {
        self.count += 1;
        match v {
            Value::Int(i) => self.sum_int += *i,
            Value::Real(r) => {
                self.sum_real += *r;
                self.any_real = true;
            }
            _ => {}
        }
        *self.values.entry(v.clone()).or_insert(0) += 1;
        Ok(())
    }

    fn remove(&mut self, v: &Value) -> Result<(), ValueError> {
        self.count -= 1;
        match v {
            Value::Int(i) => self.sum_int -= *i,
            Value::Real(r) => self.sum_real -= *r,
            _ => {}
        }
        if let Some(m) = self.values.get_mut(v) {
            *m -= 1;
            if *m == 0 {
                self.values.remove(v);
            }
        }
        Ok(())
    }

    fn result(&self, agg: AggFn) -> Result<Option<Value>, ValueError> {
        if self.count == 0 {
            return Ok(None);
        }
        Ok(Some(match agg {
            AggFn::Count => Value::Int(self.count),
            AggFn::Sum => {
                if self.any_real {
                    Value::real(self.sum_real + self.sum_int as f64)?
                } else {
                    Value::Int(self.sum_int)
                }
            }
            AggFn::Avg => Value::real((self.sum_real + self.sum_int as f64) / self.count as f64)?,
            AggFn::Min => self
                .values
                .keys()
                .next()
                .cloned()
                .expect("count > 0 implies non-empty multiset"),
            AggFn::Max => self
                .values
                .keys()
                .next_back()
                .cloned()
                .expect("count > 0 implies non-empty multiset"),
        }))
    }
}

/// An incrementally maintained grouped aggregate over a stored relation.
#[derive(Debug, Clone)]
pub struct AggregateView {
    /// The source predicate (must be stored).
    pub source: PredId,
    /// Source columns forming the group key.
    pub group_cols: Vec<usize>,
    /// Source column being aggregated.
    pub value_col: usize,
    /// The aggregate function.
    pub agg: AggFn,
    groups: HashMap<Tuple, GroupState>,
}

impl AggregateView {
    /// Create an uninitialized view.
    pub fn new(source: PredId, group_cols: Vec<usize>, value_col: usize, agg: AggFn) -> Self {
        AggregateView {
            source,
            group_cols,
            value_col,
            agg,
            groups: HashMap::new(),
        }
    }

    fn group_of(&self, t: &Tuple) -> Tuple {
        t.project(&self.group_cols)
    }

    /// Initialize from the current contents of the source relation.
    pub fn initialize(&mut self, catalog: &Catalog, storage: &Storage) -> Result<(), CoreError> {
        self.groups.clear();
        let rel = catalog.def(self.source).stored_rel().ok_or_else(|| {
            CoreError::ObjectLog(amos_objectlog::ObjectLogError::NotDerived(
                catalog.name(self.source).to_string(),
            ))
        })?;
        for t in storage.relation(rel).scan() {
            let g = self.group_of(t);
            self.groups
                .entry(g)
                .or_default()
                .add(&t[self.value_col])
                .map_err(amos_objectlog::ObjectLogError::from)?;
        }
        Ok(())
    }

    /// Fold a source Δ-set into the view and return the Δ-set of result
    /// tuples `(group…, value)`: old results removed, new inserted.
    pub fn apply_delta(&mut self, delta: &DeltaSet) -> Result<DeltaSet, CoreError> {
        // Collect affected groups and their before-values.
        let mut before: HashMap<Tuple, Option<Value>> = HashMap::new();
        let touch = |groups: &HashMap<Tuple, GroupState>,
                     before: &mut HashMap<Tuple, Option<Value>>,
                     g: Tuple,
                     agg: AggFn|
         -> Result<(), CoreError> {
            if let std::collections::hash_map::Entry::Vacant(e) = before.entry(g) {
                let v = match groups.get(e.key()) {
                    Some(st) => st
                        .result(agg)
                        .map_err(amos_objectlog::ObjectLogError::from)?,
                    None => None,
                };
                e.insert(v);
            }
            Ok(())
        };
        for t in delta.plus().iter().chain(delta.minus()) {
            touch(&self.groups, &mut before, self.group_of(t), self.agg)?;
        }
        // Apply the changes.
        for t in delta.plus() {
            let g = self.group_of(t);
            self.groups
                .entry(g)
                .or_default()
                .add(&t[self.value_col])
                .map_err(amos_objectlog::ObjectLogError::from)?;
        }
        for t in delta.minus() {
            let g = self.group_of(t);
            if let Some(st) = self.groups.get_mut(&g) {
                st.remove(&t[self.value_col])
                    .map_err(amos_objectlog::ObjectLogError::from)?;
                if st.count == 0 {
                    self.groups.remove(&g);
                }
            }
        }
        // Emit result-level changes.
        let mut out = DeltaSet::new();
        for (g, old) in before {
            let new = match self.groups.get(&g) {
                Some(st) => st
                    .result(self.agg)
                    .map_err(amos_objectlog::ObjectLogError::from)?,
                None => None,
            };
            if old == new {
                continue;
            }
            if let Some(v) = old {
                out.apply_delete(g.concat(&Tuple::new(vec![v])));
            }
            if let Some(v) = new {
                out.apply_insert(g.concat(&Tuple::new(vec![v])));
            }
        }
        Ok(out)
    }

    /// The current result tuples `(group…, value)`.
    pub fn current(&self) -> Result<Vec<Tuple>, CoreError> {
        let mut out = Vec::with_capacity(self.groups.len());
        for (g, st) in &self.groups {
            if let Some(v) = st
                .result(self.agg)
                .map_err(amos_objectlog::ObjectLogError::from)?
            {
                out.push(g.concat(&Tuple::new(vec![v])));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Number of groups currently tracked.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::{tuple, TypeId};

    fn setup() -> (Storage, Catalog, PredId, amos_storage::RelId) {
        let mut storage = Storage::new();
        let rel = storage.create_relation("sales", 2).unwrap(); // (region, amount)
        let mut catalog = Catalog::new();
        let sales = catalog
            .define_stored("sales", vec![TypeId(0); 2], rel, 1)
            .unwrap();
        storage.insert(rel, tuple![1, 10]).unwrap();
        storage.insert(rel, tuple![1, 20]).unwrap();
        storage.insert(rel, tuple![2, 5]).unwrap();
        (storage, catalog, sales, rel)
    }

    fn delta(plus: &[Tuple], minus: &[Tuple]) -> DeltaSet {
        let mut d = DeltaSet::new();
        for t in minus {
            d.apply_delete(t.clone());
        }
        for t in plus {
            d.apply_insert(t.clone());
        }
        d
    }

    #[test]
    fn sum_and_count_initialize_and_update() {
        let (storage, catalog, sales, _) = setup();
        let mut sum = AggregateView::new(sales, vec![0], 1, AggFn::Sum);
        sum.initialize(&catalog, &storage).unwrap();
        assert_eq!(sum.current().unwrap(), vec![tuple![1, 30], tuple![2, 5]]);

        let d = sum
            .apply_delta(&delta(&[tuple![1, 15]], &[tuple![1, 10]]))
            .unwrap();
        assert_eq!(d.plus(), &[tuple![1, 35]].into_iter().collect());
        assert_eq!(d.minus(), &[tuple![1, 30]].into_iter().collect());
        assert_eq!(sum.current().unwrap(), vec![tuple![1, 35], tuple![2, 5]]);
    }

    #[test]
    fn count_tracks_group_disappearance() {
        let (storage, catalog, sales, _) = setup();
        let mut count = AggregateView::new(sales, vec![0], 1, AggFn::Count);
        count.initialize(&catalog, &storage).unwrap();
        let d = count.apply_delta(&delta(&[], &[tuple![2, 5]])).unwrap();
        assert_eq!(d.minus(), &[tuple![2, 1]].into_iter().collect());
        assert!(d.plus().is_empty());
        assert_eq!(count.group_count(), 1);
    }

    #[test]
    fn min_max_survive_extremum_deletion() {
        let (storage, catalog, sales, _) = setup();
        let mut min = AggregateView::new(sales, vec![0], 1, AggFn::Min);
        min.initialize(&catalog, &storage).unwrap();
        assert_eq!(min.current().unwrap(), vec![tuple![1, 10], tuple![2, 5]]);

        // Delete the group-1 minimum: falls back to 20 without rescan.
        let d = min.apply_delta(&delta(&[], &[tuple![1, 10]])).unwrap();
        assert_eq!(d.plus(), &[tuple![1, 20]].into_iter().collect());
        assert_eq!(d.minus(), &[tuple![1, 10]].into_iter().collect());

        let mut max = AggregateView::new(sales, vec![0], 1, AggFn::Max);
        max.initialize(&catalog, &storage).unwrap();
        assert_eq!(max.current().unwrap(), vec![tuple![1, 20], tuple![2, 5]]);
    }

    #[test]
    fn duplicate_values_multiset_semantics() {
        let (mut storage, catalog, sales, rel) = setup();
        storage.insert(rel, tuple![2, 5]).unwrap(); // set semantics: no-op
        let mut min = AggregateView::new(sales, vec![0], 1, AggFn::Min);
        min.initialize(&catalog, &storage).unwrap();
        // Two *distinct* tuples with equal values per group:
        storage.insert(rel, tuple![1, 10]).unwrap(); // no-op (already there)
        let d = min.apply_delta(&delta(&[tuple![1, 5]], &[])).unwrap();
        assert_eq!(d.plus(), &[tuple![1, 5]].into_iter().collect());
        // Removing one of the two 5-valued... there is only one (1,5); after
        // deleting it the min reverts to 10.
        let d = min.apply_delta(&delta(&[], &[tuple![1, 5]])).unwrap();
        assert_eq!(d.plus(), &[tuple![1, 10]].into_iter().collect());
    }

    #[test]
    fn avg_is_real_valued() {
        let (storage, catalog, sales, _) = setup();
        let mut avg = AggregateView::new(sales, vec![0], 1, AggFn::Avg);
        avg.initialize(&catalog, &storage).unwrap();
        let cur = avg.current().unwrap();
        assert_eq!(
            cur,
            vec![
                tuple![1, Value::real(15.0).unwrap()],
                tuple![2, Value::real(5.0).unwrap()]
            ]
        );
    }

    #[test]
    fn no_change_emits_empty_delta() {
        let (storage, catalog, sales, _) = setup();
        let mut sum = AggregateView::new(sales, vec![0], 1, AggFn::Sum);
        sum.initialize(&catalog, &storage).unwrap();
        // +15 and −15 in the same group with the same net sum? Replace a
        // 10 with another 10-valued tuple… set semantics prevents exact
        // duplicates, so swap (1,10) for (1,10) — a no-op delta.
        let d = sum.apply_delta(&DeltaSet::new()).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn aggregate_fn_names_round_trip() {
        for agg in [AggFn::Count, AggFn::Sum, AggFn::Avg, AggFn::Min, AggFn::Max] {
            assert_eq!(AggFn::parse(agg.name()), Some(agg));
        }
        assert_eq!(AggFn::parse("median"), None);
    }
}
