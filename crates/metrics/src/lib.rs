//! # amos-metrics
//!
//! Instrumentation layer for the propagation engine: structured,
//! machine-readable measurements of each propagation pass — per-
//! differential execution timing, candidate/rejected counters, per-level
//! wave-front sizes, and a pass summary. The engine fills these structs
//! in during [`propagate`](../amos_core/propagate/index.html); `explain`
//! renders them for humans and `crates/bench` serializes them into
//! `BENCH_*.json` artifacts via the [`json`] module.
//!
//! The crate is deliberately a leaf: plain data + a hand-rolled JSON
//! writer (no registry access, so no `serde`), with no dependency on the
//! engine's types — predicates appear here by name.

pub mod json;

pub use json::JsonValue;

use std::fmt::Write as _;
use std::time::Instant;

/// Wall-clock stopwatch for filling `nanos` fields.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// Execution record for one partial-differential run within a pass.
#[derive(Debug, Clone)]
pub struct DiffTiming {
    /// Differential id within the network.
    pub diff: usize,
    /// Rendered differential, e.g. `Δcnd_monitor_items/Δ₊quantity`.
    pub differential: String,
    /// Name of the affected (written) predicate.
    pub affected: String,
    /// Network level of the influent node that seeded the run.
    pub level: usize,
    /// Wall-clock time of plan execution plus checks.
    pub nanos: u64,
    /// Tuples produced by the differential before §7.2 checks.
    pub candidates: usize,
    /// Tuples surviving the checks (merged with `∪Δ`).
    pub accepted: usize,
    /// Planner's estimated output rows for the executed plan, when the
    /// statistics-backed estimator produced one (`None` under the static
    /// cost model).
    pub est_rows: Option<f64>,
}

impl DiffTiming {
    /// Candidates rejected by the §7.2 correction checks.
    pub fn rejected(&self) -> usize {
        self.candidates - self.accepted
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .with("diff", self.diff)
            .with("differential", self.differential.as_str())
            .with("affected", self.affected.as_str())
            .with("level", self.level)
            .with("nanos", self.nanos)
            .with("candidates", self.candidates)
            .with("accepted", self.accepted)
            .with("rejected", self.rejected())
            .with(
                "est_rows",
                self.est_rows.map_or(JsonValue::Null, JsonValue::from),
            )
    }
}

/// Wave-front shape at one level of the propagation network.
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Level index (0 = stored relations).
    pub level: usize,
    /// Nodes at this level holding a non-empty Δ-set when the wave
    /// reached them.
    pub active_nodes: usize,
    /// Total Δ-tuples (insertions + deletions) across those nodes.
    pub wave_tuples: usize,
    /// Differential executions launched from this level.
    pub tasks: usize,
    /// Whether the level's tasks ran on the parallel path.
    pub parallel: bool,
    /// Shards the level's seeds were partitioned into (0 when the pass
    /// did not run sharded).
    pub shards: usize,
    /// Seed tuples owned by the busiest worker of this level (sharded
    /// passes only) — `max_occupancy / min_occupancy` is the level's
    /// skew, which totals alone cannot show.
    pub max_occupancy: u64,
    /// Seed tuples owned by the idlest worker of this level.
    pub min_occupancy: u64,
}

impl LevelStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .with("level", self.level)
            .with("active_nodes", self.active_nodes)
            .with("wave_tuples", self.wave_tuples)
            .with("tasks", self.tasks)
            .with("parallel", self.parallel)
            .with("shards", self.shards)
            .with("max_occupancy", self.max_occupancy)
            .with("min_occupancy", self.min_occupancy)
    }
}

/// Summary of one full propagation pass (one check-phase wave).
#[derive(Debug, Clone, Default)]
pub struct PassMetrics {
    /// Execution strategy (`"serial"` or `"parallel"`).
    pub strategy: String,
    /// Check level the pass ran under (`"raw"`/`"nervous"`/`"strict"`).
    pub check: String,
    /// Wall-clock time of the whole pass.
    pub nanos: u64,
    /// Differentials that fired (were recorded in the trace).
    pub fired: usize,
    /// Total candidate tuples across all differentials.
    pub candidates: usize,
    /// Total candidates rejected by checks.
    pub rejected: usize,
    /// Derived-call memo ("tabling") hits during the pass — evaluations
    /// shared across differentials instead of recomputed.
    pub tabling_hits: u64,
    /// Derived-call memo misses (first evaluation of a call pattern).
    pub tabling_misses: u64,
    /// Per-level wave-front statistics, in propagation order.
    pub levels: Vec<LevelStats>,
    /// Per-differential-execution records, in merge (= serial) order.
    pub differentials: Vec<DiffTiming>,
    /// Rule actions that failed during the check phase this pass fed
    /// (`"rule: reason"`); the rule was quarantined and its updates
    /// rolled back to the pre-action savepoint.
    pub failed_actions: Vec<String>,
    /// Differential plans recompiled this pass because their statistics
    /// fingerprint drifted (adaptive planner only).
    pub replans: u64,
    /// Differential plans served from the adaptive plan cache.
    pub plan_cache_hits: u64,
    /// Stored-relation index probes during differential evaluation.
    pub probes: u64,
    /// Stored-relation full scans during differential evaluation.
    pub scans: u64,
    /// Δ-set probes through per-column hash indexes (or the small-set
    /// linear path).
    pub delta_probes: u64,
    /// Unbound Δ-set scans (the seed literal of each differential).
    pub delta_scans: u64,
    /// Sorted merge-join zipper executions (fused Δ ⋈ stored steps).
    pub merge_joins: u64,
    /// Probes that silently fell back to an O(n) relation scan because
    /// no index covered the bound columns.
    pub fallback_scans: u64,
    /// The distinct `relation[cols]` sites behind `fallback_scans`,
    /// drained once per pass.
    pub fallback_sites: Vec<String>,
    /// Differentials statically pruned from the network at activation
    /// (lint pass L004: Δ₋ on append-only relations, statically-false
    /// bodies). Constant across passes of the same network.
    pub pruned_differentials: u64,
    /// Worker count of a sharded pass (0 for serial/parallel passes).
    pub workers: usize,
    /// Seed tuples routed through the per-level partitioned exchanges.
    pub exchange_tuples: u64,
    /// Seed tuples owned by each shard, summed over levels (empty for
    /// non-sharded passes).
    pub shard_seed_tuples: Vec<u64>,
    /// Candidate tuples produced by each shard's workers, summed over
    /// levels (empty for non-sharded passes).
    pub shard_candidates: Vec<u64>,
    /// Load-balance skew of the pass: busiest shard's seed tuples over
    /// the per-shard mean (1.0 = perfectly balanced, 0.0 = no seeds or
    /// not sharded).
    pub skew: f64,
}

impl PassMetrics {
    /// Serialize for `BENCH_*.json` and other machine consumers.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .with("strategy", self.strategy.as_str())
            .with("check", self.check.as_str())
            .with("nanos", self.nanos)
            .with("fired", self.fired)
            .with("candidates", self.candidates)
            .with("rejected", self.rejected)
            .with("tabling_hits", self.tabling_hits)
            .with("tabling_misses", self.tabling_misses)
            .with(
                "levels",
                JsonValue::Array(self.levels.iter().map(LevelStats::to_json).collect()),
            )
            .with(
                "differentials",
                JsonValue::Array(self.differentials.iter().map(DiffTiming::to_json).collect()),
            )
            .with(
                "failed_actions",
                JsonValue::Array(
                    self.failed_actions
                        .iter()
                        .map(|s| JsonValue::from(s.as_str()))
                        .collect(),
                ),
            )
            .with("replans", self.replans)
            .with("plan_cache_hits", self.plan_cache_hits)
            .with("probes", self.probes)
            .with("scans", self.scans)
            .with("delta_probes", self.delta_probes)
            .with("delta_scans", self.delta_scans)
            .with("merge_joins", self.merge_joins)
            .with("fallback_scans", self.fallback_scans)
            .with(
                "fallback_sites",
                JsonValue::Array(
                    self.fallback_sites
                        .iter()
                        .map(|s| JsonValue::from(s.as_str()))
                        .collect(),
                ),
            )
            .with("pruned_differentials", self.pruned_differentials)
            .with("workers", self.workers)
            .with("exchange_tuples", self.exchange_tuples)
            .with(
                "shard_seed_tuples",
                JsonValue::Array(
                    self.shard_seed_tuples
                        .iter()
                        .map(|&n| JsonValue::from(n))
                        .collect(),
                ),
            )
            .with(
                "shard_candidates",
                JsonValue::Array(
                    self.shard_candidates
                        .iter()
                        .map(|&n| JsonValue::from(n))
                        .collect(),
                ),
            )
            .with("skew", self.skew)
    }

    /// Human-readable rendering for `explain` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "propagation pass: strategy={} check={} time={:.3}ms fired={} candidates={} rejected={} tabling_hits={} tabling_misses={}",
            self.strategy,
            self.check,
            self.nanos as f64 / 1e6,
            self.fired,
            self.candidates,
            self.rejected,
            self.tabling_hits,
            self.tabling_misses
        );
        let _ = writeln!(
            out,
            "  planning: replans={} plan_cache_hits={} probes={} scans={} delta_probes={} delta_scans={} merge_joins={} fallback_scans={} pruned_differentials={}",
            self.replans,
            self.plan_cache_hits,
            self.probes,
            self.scans,
            self.delta_probes,
            self.delta_scans,
            self.merge_joins,
            self.fallback_scans,
            self.pruned_differentials
        );
        if self.workers > 0 {
            let _ = writeln!(
                out,
                "  sharding: workers={} exchange_tuples={} skew={:.2} seed_per_shard={:?} candidates_per_shard={:?}",
                self.workers,
                self.exchange_tuples,
                self.skew,
                self.shard_seed_tuples,
                self.shard_candidates
            );
        }
        for site in &self.fallback_sites {
            let _ = writeln!(out, "  FALLBACK scan at {site} (no covering index)");
        }
        for lvl in &self.levels {
            let _ = write!(
                out,
                "  level {}: active_nodes={} wave_tuples={} tasks={} ({})",
                lvl.level,
                lvl.active_nodes,
                lvl.wave_tuples,
                lvl.tasks,
                if lvl.parallel { "parallel" } else { "serial" }
            );
            if lvl.shards > 0 {
                let _ = write!(
                    out,
                    " shards={} occupancy={}..{}",
                    lvl.shards, lvl.min_occupancy, lvl.max_occupancy
                );
            }
            out.push('\n');
        }
        for d in &self.differentials {
            let _ = writeln!(
                out,
                "  {} -> {}: {:.3}ms candidates={} accepted={} rejected={}",
                d.differential,
                d.affected,
                d.nanos as f64 / 1e6,
                d.candidates,
                d.accepted,
                d.rejected()
            );
            if let Some(est) = d.est_rows {
                let _ = writeln!(out, "    est-rows={est:.2} actual={}", d.candidates);
            }
        }
        for fa in &self.failed_actions {
            let _ = writeln!(out, "  FAILED action {fa} (rule quarantined)");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PassMetrics {
        PassMetrics {
            strategy: "parallel".into(),
            check: "strict".into(),
            nanos: 1_500_000,
            fired: 2,
            candidates: 5,
            rejected: 1,
            tabling_hits: 4,
            tabling_misses: 2,
            levels: vec![LevelStats {
                level: 0,
                active_nodes: 2,
                wave_tuples: 3,
                tasks: 2,
                parallel: true,
                shards: 4,
                max_occupancy: 2,
                min_occupancy: 0,
            }],
            differentials: vec![DiffTiming {
                diff: 7,
                differential: "Δcnd/Δ₊quantity".into(),
                affected: "cnd".into(),
                level: 0,
                nanos: 900_000,
                candidates: 5,
                accepted: 4,
                est_rows: Some(4.5),
            }],
            failed_actions: vec!["order_rule: order service down".into()],
            replans: 1,
            plan_cache_hits: 3,
            probes: 10,
            scans: 2,
            delta_probes: 6,
            delta_scans: 1,
            merge_joins: 1,
            fallback_scans: 1,
            fallback_sites: vec!["stock[1]".into()],
            pruned_differentials: 2,
            workers: 4,
            exchange_tuples: 3,
            shard_seed_tuples: vec![2, 1, 0, 0],
            shard_candidates: vec![3, 2, 0, 0],
            skew: 2.67,
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let doc = sample().to_json().to_compact();
        assert!(doc.starts_with(r#"{"strategy":"parallel","check":"strict","nanos":1500000"#));
        assert!(doc.contains(r#""levels":[{"level":0,"active_nodes":2"#));
        assert!(doc.contains(r#""rejected":1,"#));
        assert!(doc.contains(r#""tabling_hits":4,"tabling_misses":2,"#));
        assert!(doc.contains(r#""differential":"Δcnd/Δ₊quantity""#));
        assert!(doc.contains(r#""failed_actions":["order_rule: order service down"]"#));
        assert!(doc.contains(r#""est_rows":4.5"#));
        assert!(doc.contains(r#""replans":1,"plan_cache_hits":3,"#));
        assert!(doc.contains(r#""delta_scans":1,"merge_joins":1,"#));
        assert!(doc.contains(r#""fallback_scans":1,"fallback_sites":["stock[1]"]"#));
        assert!(doc.contains(r#""pruned_differentials":2"#));
        assert!(doc.contains(r#""shards":4,"max_occupancy":2,"min_occupancy":0"#));
        assert!(doc.contains(r#""workers":4,"exchange_tuples":3,"#));
        assert!(doc.contains(r#""shard_seed_tuples":[2,1,0,0]"#));
        assert!(doc.contains(r#""shard_candidates":[3,2,0,0]"#));
        assert!(doc.contains(r#""skew":2.67"#));
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample().render();
        assert!(text.contains("strategy=parallel"));
        assert!(text.contains("tabling_hits=4"));
        assert!(text.contains("level 0: active_nodes=2"));
        assert!(text.contains("accepted=4 rejected=1"));
        assert!(text.contains("FAILED action order_rule"));
        assert!(text.contains("replans=1 plan_cache_hits=3"));
        assert!(text.contains("merge_joins=1"));
        assert!(text.contains("pruned_differentials=2"));
        assert!(text.contains("est-rows=4.50 actual=5"));
        assert!(text.contains("FALLBACK scan at stock[1]"));
        assert!(text.contains("sharding: workers=4 exchange_tuples=3 skew=2.67"));
        assert!(text.contains("shards=4 occupancy=0..2"));
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
    }
}
