//! A minimal JSON document model with a serializer and parser.
//!
//! The workspace has no registry access (so no `serde`/`serde_json`);
//! this hand-rolled module covers what the metrics layer and the bench
//! harness need: building documents programmatically, rendering them
//! with correct string escaping (compact or pretty-printed), and
//! parsing them back — the bench regression gate reads committed
//! `BENCH_*.json` baselines and diffs them against fresh runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Integers are kept exact rather than routed through `f64`.
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    /// Insertion-ordered object (stable output for diffing artifacts).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object builder.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Append a field (builder-style; panics on non-objects).
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(fields) => fields.push((key.to_owned(), value.into())),
            _ => panic!("JsonValue::with on non-object"),
        }
        self
    }

    /// Render without whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    /// Parse a JSON document (the whole input must be one value plus
    /// optional trailing whitespace).
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` both answer.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    let mut s = format!("{f}");
                    // `{}` omits the point for whole floats; keep the
                    // value unambiguously a float for JSON consumers.
                    if !s.contains(['.', 'e', 'E']) {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Array(items) => {
                render_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].render(out, indent, depth + 1)
                });
            }
            JsonValue::Object(fields) => {
                render_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    render_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, depth + 1);
                });
            }
        }
    }
}

/// Recursive-descent JSON parser over raw bytes (inputs are the
/// artifacts this module itself writes, so strings are valid UTF-8 and
/// escape handling mirrors [`render_string`]).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Artifacts we write only \u-escape control
                            // characters (< 0x20), so surrogate pairs are
                            // rejected rather than recombined.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "non-scalar \\u escape".to_string())?,
                            );
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| "unterminated string".to_string())?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|e| format!("bad number '{text}': {e}"))
        } else {
            text.parse::<i128>()
                .map(JsonValue::Int)
                .map_err(|e| format!("bad number '{text}': {e}"))
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<f64> for JsonValue {
    fn from(f: f64) -> Self {
        JsonValue::Float(f)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for JsonValue {
            fn from(i: $t) -> Self {
                JsonValue::Int(i as i128)
            }
        }
    )*};
}

from_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::JsonValue;

    #[test]
    fn compact_rendering_and_escaping() {
        let doc = JsonValue::object()
            .with("name", "he said \"hi\"\n")
            .with("n", 42u64)
            .with("ok", true)
            .with("xs", vec![1i64, 2, 3]);
        assert_eq!(
            doc.to_compact(),
            r#"{"name":"he said \"hi\"\n","n":42,"ok":true,"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn floats_stay_floats() {
        assert_eq!(JsonValue::Float(1.5).to_compact(), "1.5");
        assert_eq!(JsonValue::Float(2.0).to_compact(), "2.0");
        assert_eq!(JsonValue::Float(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn parse_roundtrips_what_we_write() {
        let doc = JsonValue::object()
            .with("name", "he said \"hi\"\n\u{1}")
            .with("n", 42u64)
            .with("neg", -7i64)
            .with("f", 1.25)
            .with("ok", true)
            .with("nothing", JsonValue::Null)
            .with("xs", vec![1i64, 2, 3])
            .with("nested", JsonValue::object().with("k", "v"))
            .with("unicode", "Δ₊quantity ⋈");
        for rendered in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(JsonValue::parse(&rendered).unwrap(), doc, "{rendered}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\q\"",
            "{\"a\" 1}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn accessors_view_parsed_documents() {
        let doc =
            JsonValue::parse(r#"{"bulk":{"speedup":1.31,"rows":2000},"tags":["a"]}"#).unwrap();
        let bulk = doc.get("bulk").unwrap();
        assert_eq!(bulk.get("speedup").and_then(JsonValue::as_f64), Some(1.31));
        assert_eq!(bulk.get("rows").and_then(JsonValue::as_f64), Some(2000.0));
        assert_eq!(
            doc.get("tags")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(1)
        );
        assert_eq!(
            doc.get("tags").unwrap().as_array().unwrap()[0].as_str(),
            Some("a")
        );
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn pretty_rendering_indents() {
        let doc = JsonValue::object()
            .with("xs", vec![1i64])
            .with("e", JsonValue::object());
        assert_eq!(
            doc.to_pretty(),
            "{\n  \"xs\": [\n    1\n  ],\n  \"e\": {}\n}"
        );
    }
}
