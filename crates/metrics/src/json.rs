//! A minimal JSON document model with a serializer.
//!
//! The workspace has no registry access (so no `serde`/`serde_json`);
//! this hand-rolled writer covers what the metrics layer and the bench
//! harness need: building documents programmatically and rendering them
//! with correct string escaping, either compact or pretty-printed.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Integers are kept exact rather than routed through `f64`.
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    /// Insertion-ordered object (stable output for diffing artifacts).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object builder.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Append a field (builder-style; panics on non-objects).
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(fields) => fields.push((key.to_owned(), value.into())),
            _ => panic!("JsonValue::with on non-object"),
        }
        self
    }

    /// Render without whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    let mut s = format!("{f}");
                    // `{}` omits the point for whole floats; keep the
                    // value unambiguously a float for JSON consumers.
                    if !s.contains(['.', 'e', 'E']) {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Array(items) => {
                render_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].render(out, indent, depth + 1)
                });
            }
            JsonValue::Object(fields) => {
                render_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    render_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, depth + 1);
                });
            }
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<f64> for JsonValue {
    fn from(f: f64) -> Self {
        JsonValue::Float(f)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for JsonValue {
            fn from(i: $t) -> Self {
                JsonValue::Int(i as i128)
            }
        }
    )*};
}

from_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::JsonValue;

    #[test]
    fn compact_rendering_and_escaping() {
        let doc = JsonValue::object()
            .with("name", "he said \"hi\"\n")
            .with("n", 42u64)
            .with("ok", true)
            .with("xs", vec![1i64, 2, 3]);
        assert_eq!(
            doc.to_compact(),
            r#"{"name":"he said \"hi\"\n","n":42,"ok":true,"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn floats_stay_floats() {
        assert_eq!(JsonValue::Float(1.5).to_compact(), "1.5");
        assert_eq!(JsonValue::Float(2.0).to_compact(), "2.0");
        assert_eq!(JsonValue::Float(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn pretty_rendering_indents() {
        let doc = JsonValue::object()
            .with("xs", vec![1i64])
            .with("e", JsonValue::object());
        assert_eq!(
            doc.to_pretty(),
            "{\n  \"xs\": [\n    1\n  ],\n  \"e\": {}\n}"
        );
    }
}
