//! Abstract interpretation over the whole catalog.
//!
//! A *product domain* of three abstractions per predicate column:
//!
//! * **constant** ([`ConstDom`]) — the column always holds one value;
//! * **integer interval** ([`Interval`]) — bounds on integer columns;
//! * **type** — declared column types, checked separately by
//!   [`check_types`] against the [`TypeRegistry`] lattice.
//!
//! [`analyze`] propagates the constant/interval component to fixpoint
//! across every derived predicate, visiting strongly-connected
//! components in dependency order (the same Tarjan pass L002 uses).
//! Members of a recursive SCC are summarized against ⊤ inputs, which
//! over-approximates every fixpoint iterate and keeps the analysis
//! sound without iteration.
//!
//! On top of the engine sit four lint passes:
//!
//! * **L006** [`check_types`] — a variable used at columns of
//!   incompatible declared types, constants that cannot inhabit their
//!   column, comparisons/arithmetic over incompatible operand types.
//! * **L007** [`check_provably_empty`] — clauses whose abstract state
//!   is ⊥ (contradictory intervals *across* predicate boundaries, which
//!   the purely syntactic L005 cannot see). The network builder uses
//!   [`Analysis::clause_provably_empty`] to prune the matching
//!   differentials.
//! * **L008** [`check_subsumption`] — rule A's condition implies rule
//!   B's (every A-match already satisfies B): redundant monitoring.
//! * **L009** [`check_const_fold`] — a subcondition that always holds
//!   under the abstraction; the diagnostic shows the folded residual.
//!
//! Soundness notes: interval narrowing is only applied to classes with
//! *integer evidence* (an integer-typed column, an integer constant, or
//! integer arithmetic) — narrowing a `real`-valued variable with integer
//! bounds would wrongly conclude `0 < x < 1` is empty. `i64::MIN`/`MAX`
//! bounds are treated as ∓∞ and survive arithmetic untouched.

use std::collections::{HashMap, HashSet};
use std::fmt;

use amos_objectlog::catalog::{Catalog, PredId, PredKind};
use amos_objectlog::clause::{Clause, Literal, Term, Var};
use amos_storage::{Polarity, StateEpoch};
use amos_types::{ArithOp, CmpOp, TypeId, TypeRegistry, Value};

use crate::{clause_statically_false, tarjan_sccs, Diagnostic, LintCode, LintConfig, Span};

// ---------------------------------------------------------------------
// Domains
// ---------------------------------------------------------------------

/// A closed integer interval; `i64::MIN`/`i64::MAX` bounds mean ∓∞.
/// `lo > hi` is the empty interval (⊥).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound (`i64::MIN` = −∞).
    pub lo: i64,
    /// Inclusive upper bound (`i64::MAX` = +∞).
    pub hi: i64,
}

impl Interval {
    /// The full interval (⊤).
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The singleton `[k, k]`.
    pub fn point(k: i64) -> Interval {
        Interval { lo: k, hi: k }
    }

    /// Whether no integer is contained.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Whether this is the full interval.
    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    /// Whether `k` is contained.
    pub fn contains(self, k: i64) -> bool {
        self.lo <= k && k <= self.hi
    }

    /// Intersection.
    pub fn meet(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.max(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    /// Convex hull (empty operands are identities).
    pub fn join(self, o: Interval) -> Interval {
        if self.is_empty() {
            return o;
        }
        if o.is_empty() {
            return self;
        }
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Number of contained integers when finitely bounded.
    pub fn width(self) -> Option<f64> {
        if self.is_empty() || self.lo == i64::MIN || self.hi == i64::MAX {
            return None;
        }
        Some((self.hi as i128 - self.lo as i128 + 1) as f64)
    }

    fn add(self, o: Interval) -> Interval {
        Interval {
            lo: if self.lo == i64::MIN || o.lo == i64::MIN {
                i64::MIN
            } else {
                self.lo.saturating_add(o.lo)
            },
            hi: if self.hi == i64::MAX || o.hi == i64::MAX {
                i64::MAX
            } else {
                self.hi.saturating_add(o.hi)
            },
        }
    }

    fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: if self.lo == i64::MIN || o.hi == i64::MAX {
                i64::MIN
            } else {
                self.lo.saturating_sub(o.hi)
            },
            hi: if self.hi == i64::MAX || o.lo == i64::MIN {
                i64::MAX
            } else {
                self.hi.saturating_sub(o.lo)
            },
        }
    }

    fn mul(self, o: Interval) -> Interval {
        if self.lo == i64::MIN || self.hi == i64::MAX || o.lo == i64::MIN || o.hi == i64::MAX {
            return Interval::TOP;
        }
        let corners = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval {
            lo: *corners.iter().min().unwrap(),
            hi: *corners.iter().max().unwrap(),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("∅");
        }
        match (self.lo, self.hi) {
            (i64::MIN, i64::MAX) => f.write_str("[−∞, +∞]"),
            (i64::MIN, h) => write!(f, "[−∞, {h}]"),
            (l, i64::MAX) => write!(f, "[{l}, +∞]"),
            (l, h) => write!(f, "[{l}, {h}]"),
        }
    }
}

/// Constant-propagation lattice: ⊤ (unknown) / one value / ⊥.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ConstDom {
    /// No information.
    #[default]
    Top,
    /// The column/variable always holds exactly this value.
    Const(Value),
    /// Contradiction — no value is possible.
    Bottom,
}

impl ConstDom {
    /// Greatest lower bound. Two constants meet to ⊥ unless they compare
    /// equal under runtime semantics (numeric promotion included).
    pub fn meet(&self, other: &ConstDom) -> ConstDom {
        match (self, other) {
            (ConstDom::Bottom, _) | (_, ConstDom::Bottom) => ConstDom::Bottom,
            (ConstDom::Top, x) | (x, ConstDom::Top) => x.clone(),
            (ConstDom::Const(a), ConstDom::Const(b)) => {
                if const_eq(a, b) {
                    ConstDom::Const(a.clone())
                } else {
                    ConstDom::Bottom
                }
            }
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &ConstDom) -> ConstDom {
        match (self, other) {
            (ConstDom::Bottom, x) | (x, ConstDom::Bottom) => x.clone(),
            (ConstDom::Top, _) | (_, ConstDom::Top) => ConstDom::Top,
            (ConstDom::Const(a), ConstDom::Const(b)) => {
                if const_eq(a, b) {
                    ConstDom::Const(a.clone())
                } else {
                    ConstDom::Top
                }
            }
        }
    }
}

/// Runtime equality (with numeric promotion: `2 = 2.0`).
fn const_eq(a: &Value, b: &Value) -> bool {
    CmpOp::Eq.apply(a, b).unwrap_or(false)
}

/// Abstraction of one predicate column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColAbs {
    /// Constant component.
    pub konst: ConstDom,
    /// Integer-interval component (⊤ for non-integer columns).
    pub range: Interval,
}

impl ColAbs {
    /// The no-information abstraction.
    pub fn top() -> ColAbs {
        ColAbs {
            konst: ConstDom::Top,
            range: Interval::TOP,
        }
    }

    fn of_const(v: &Value) -> ColAbs {
        ColAbs {
            konst: ConstDom::Const(v.clone()),
            range: match v {
                Value::Int(k) => Interval::point(*k),
                _ => Interval::TOP,
            },
        }
    }

    fn join(&self, other: &ColAbs) -> ColAbs {
        ColAbs {
            konst: self.konst.join(&other.konst),
            range: self.range.join(other.range),
        }
    }
}

/// Whole-predicate abstraction: one [`ColAbs`] per column, plus a
/// provable-emptiness flag.
#[derive(Debug, Clone, PartialEq)]
pub struct PredAbs {
    /// Per-column abstractions (over-approximate the extent).
    pub cols: Vec<ColAbs>,
    /// Whether the predicate's extent is provably empty.
    pub empty: bool,
}

impl PredAbs {
    fn top(arity: usize) -> PredAbs {
        PredAbs {
            cols: vec![ColAbs::top(); arity],
            empty: false,
        }
    }
}

// ---------------------------------------------------------------------
// Catalog fixpoint
// ---------------------------------------------------------------------

/// Result of a whole-catalog analysis: one [`PredAbs`] per predicate.
#[derive(Debug, Clone)]
pub struct Analysis {
    preds: HashMap<PredId, PredAbs>,
}

/// Analyze the whole catalog. Stored and foreign predicates are ⊤
/// (their extents are dynamic); derived predicates are summarized in
/// Tarjan SCC order so every influent is summarized first.
pub fn analyze(catalog: &Catalog) -> Analysis {
    let mut preds: HashMap<PredId, PredAbs> = HashMap::new();
    let mut derived: Vec<PredId> = Vec::new();
    for def in catalog.iter() {
        match &def.kind {
            PredKind::Derived(_) => derived.push(def.id),
            _ => {
                preds.insert(def.id, PredAbs::top(def.arity));
            }
        }
    }
    let is_derived = |p: PredId| matches!(catalog.def(p).kind, PredKind::Derived(_));
    // Tarjan emits SCCs in reverse topological order of the condensation
    // (edges point at influents), so dependencies are summarized first.
    let sccs = tarjan_sccs(&derived, &|p| {
        catalog
            .direct_influents(p)
            .into_iter()
            .filter(|q| is_derived(*q))
            .collect()
    });
    for scc in sccs {
        // Seed every member at ⊤ so recursive references over-approximate
        // any fixpoint iterate, then refine each member once.
        for &p in &scc {
            preds.insert(p, PredAbs::top(catalog.def(p).arity));
        }
        for &p in &scc {
            let abs = summarize(catalog, &preds, p);
            preds.insert(p, abs);
        }
    }
    Analysis { preds }
}

impl Analysis {
    /// The abstraction of one predicate.
    pub fn pred(&self, p: PredId) -> Option<&PredAbs> {
        self.preds.get(&p)
    }

    /// Whether one clause body is provably empty under this analysis.
    /// Works on differential clauses too (Δ-literals are abstracted like
    /// positive occurrences of their predicate).
    pub fn clause_provably_empty(&self, catalog: &Catalog, clause: &Clause) -> bool {
        eval_clause(catalog, &self.preds, clause).empty
    }

    /// The inferred interval of a column, when it is a proper bound.
    pub fn column_interval(&self, p: PredId, col: usize) -> Option<Interval> {
        self.preds
            .get(&p)
            .and_then(|pa| pa.cols.get(col))
            .map(|c| c.range)
            .filter(|r| !r.is_top())
    }

    /// A static upper bound on the number of distinct values a column can
    /// hold, from a finitely bounded inferred interval. Feeds the
    /// planner's statistics as an NDV ceiling on cold start.
    pub fn ndv_bound(&self, p: PredId, col: usize) -> Option<f64> {
        let pa = self.preds.get(&p)?;
        if pa.empty {
            return Some(0.0);
        }
        let c = pa.cols.get(col)?;
        if matches!(c.konst, ConstDom::Const(_)) {
            return Some(1.0);
        }
        c.range.width()
    }

    /// The hull of the interval constraints column `col` of `target` is
    /// subject to across **every** positive occurrence in the analyzed
    /// catalog's clauses, or `None` when any occurrence leaves it
    /// unbounded (or it never occurs).
    ///
    /// Stored relations get no content abstraction (anything may be
    /// inserted), but cost estimation only cares about the tuples that
    /// can *participate* in some clause — and if every use site bounds
    /// the column to an interval, at most hull-width distinct values are
    /// ever probed. That hull is therefore a static NDV ceiling for the
    /// planner (`StaticBounds` in `amos-core`), not a claim about the
    /// relation's contents.
    pub fn stored_column_usage(
        &self,
        catalog: &Catalog,
        target: PredId,
        col: usize,
    ) -> Option<Interval> {
        let mut hull: Option<Interval> = None;
        for def in catalog.iter() {
            let Some(clauses) = def.clauses() else {
                continue;
            };
            for clause in clauses {
                let mut ev = eval_clause(catalog, &self.preds, clause);
                if ev.empty {
                    continue; // an empty clause constrains nothing
                }
                for lit in &clause.body {
                    let (Literal::Pred {
                        pred,
                        args,
                        negated: false,
                        ..
                    }
                    | Literal::Delta { pred, args, .. }) = lit
                    else {
                        continue;
                    };
                    if *pred != target {
                        continue;
                    }
                    let Some(t) = args.get(col) else {
                        continue;
                    };
                    let (_, range, is_int, _) = ev.operand(t);
                    if !is_int || range.is_top() {
                        return None;
                    }
                    hull = Some(match hull {
                        Some(h) => h.join(range),
                        None => range,
                    });
                }
            }
        }
        hull.filter(|h| !h.is_top())
    }
}

/// Summarize one derived predicate from its clauses: join of per-clause
/// head abstractions, empty iff every clause is provably empty.
fn summarize(catalog: &Catalog, preds: &HashMap<PredId, PredAbs>, p: PredId) -> PredAbs {
    let def = catalog.def(p);
    let clauses = def.clauses().unwrap_or(&[]);
    let mut cols: Option<Vec<ColAbs>> = None;
    for clause in clauses {
        let mut ev = eval_clause(catalog, preds, clause);
        if ev.empty {
            continue;
        }
        let head: Vec<ColAbs> = clause.head.iter().map(|t| ev.term_abs(t)).collect();
        cols = Some(match cols {
            None => head,
            Some(prev) => prev
                .iter()
                .zip(head.iter())
                .map(|(a, b)| a.join(b))
                .collect(),
        });
    }
    match cols {
        Some(cols) => PredAbs { cols, empty: false },
        None => PredAbs {
            cols: vec![ColAbs::top(); def.arity],
            empty: true,
        },
    }
}

// ---------------------------------------------------------------------
// Per-clause transfer function
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct VarAbs {
    konst: ConstDom,
    range: Interval,
    /// Whether the class provably holds integers (integer-typed column,
    /// integer constant, or integer arithmetic). Interval reasoning is
    /// gated on this — narrowing a real with integer bounds is unsound.
    is_int: bool,
}

impl Default for VarAbs {
    fn default() -> Self {
        VarAbs {
            konst: ConstDom::Top,
            range: Interval::TOP,
            is_int: false,
        }
    }
}

fn uf_find(parent: &mut [usize], i: usize) -> usize {
    let mut root = i;
    while parent[root] != root {
        root = parent[root];
    }
    let mut cur = i;
    while parent[cur] != root {
        let next = parent[cur];
        parent[cur] = root;
        cur = next;
    }
    root
}

fn uf_union(parent: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (uf_find(parent, a), uf_find(parent, b));
    if ra != rb {
        parent[ra] = rb;
    }
}

/// Abstract state of one clause body after local fixpoint: a union-find
/// over variables (result vars of identical calls are one class) with a
/// [`VarAbs`] per class.
pub(crate) struct ClauseEval {
    parent: Vec<usize>,
    state: Vec<VarAbs>,
    /// The body is provably unsatisfiable.
    pub(crate) empty: bool,
    /// Body literal indexes that hold trivially (state-independent):
    /// const/const comparisons and unifications, reflexive comparisons.
    pub(crate) trivially_true: Vec<usize>,
}

/// Run the transfer function over one clause body to a local fixpoint.
pub(crate) fn eval_clause(
    catalog: &Catalog,
    preds: &HashMap<PredId, PredAbs>,
    clause: &Clause,
) -> ClauseEval {
    let n = clause.n_vars as usize;
    let mut parent: Vec<usize> = (0..n).collect();
    // Identical positive calls (same predicate, same non-result args,
    // same state epoch) bind equal result variables — unify them, plus
    // explicit var/var unifications. Δ-literals evaluate against the
    // epoch their polarity reads (Δ₊ ⊆ new state, Δ₋ ⊆ old state).
    let mut groups: HashMap<String, usize> = HashMap::new();
    let mut group = |parent: &mut [usize], key: String, res: usize| match groups.get(&key) {
        Some(&prev) => uf_union(parent, prev, res),
        None => {
            groups.insert(key, res);
        }
    };
    for lit in &clause.body {
        match lit {
            Literal::Pred {
                pred,
                args,
                negated: false,
                epoch,
            } if args.len() >= 2 => {
                if let Some(res) = args.last().and_then(Term::as_var) {
                    let key = format!("{pred:?}|{epoch:?}|{:?}", &args[..args.len() - 1]);
                    group(&mut parent, key, res.0 as usize);
                }
            }
            Literal::Delta {
                pred,
                polarity,
                args,
            } if args.len() >= 2 => {
                if let Some(res) = args.last().and_then(Term::as_var) {
                    let epoch = match polarity {
                        Polarity::Plus => StateEpoch::New,
                        Polarity::Minus => StateEpoch::Old,
                    };
                    let key = format!("{pred:?}|{epoch:?}|{:?}", &args[..args.len() - 1]);
                    group(&mut parent, key, res.0 as usize);
                }
            }
            Literal::Unify {
                lhs: Term::Var(a),
                rhs: Term::Var(b),
            } => uf_union(&mut parent, a.0 as usize, b.0 as usize),
            _ => {}
        }
    }
    let mut ev = ClauseEval {
        parent,
        state: vec![VarAbs::default(); n],
        empty: false,
        trivially_true: Vec::new(),
    };
    // Narrowing is monotone, so a handful of passes converges for the
    // short bodies clauses have; integer evidence discovered in pass 1
    // unlocks interval logic from pass 2 on.
    let passes = clause.body.len().min(8) + 2;
    for _ in 0..passes {
        ev.trivially_true.clear();
        for (li, lit) in clause.body.iter().enumerate() {
            ev.apply(catalog, preds, li, lit);
            if ev.empty {
                return ev;
            }
        }
    }
    ev
}

impl ClauseEval {
    fn find(&mut self, v: Var) -> usize {
        uf_find(&mut self.parent, v.0 as usize)
    }

    pub(crate) fn same_class(&mut self, a: Var, b: Var) -> bool {
        self.find(a) == self.find(b)
    }

    /// Meet new facts into a variable's class.
    fn narrow(&mut self, v: Var, konst: &ConstDom, range: Interval, is_int: bool) {
        let r = self.find(v);
        let s = &mut self.state[r];
        if is_int {
            s.is_int = true;
        }
        s.konst = s.konst.meet(konst);
        if s.konst == ConstDom::Bottom {
            self.empty = true;
            return;
        }
        if let ConstDom::Const(Value::Int(k)) = &s.konst {
            let k = *k;
            s.is_int = true;
            s.range = s.range.meet(Interval::point(k));
        }
        if s.is_int {
            s.range = s.range.meet(range);
            if s.range.is_empty() {
                self.empty = true;
            }
        }
    }

    fn set_range(&mut self, class: usize, range: Interval) {
        let s = &mut self.state[class];
        s.is_int = true;
        s.range = s.range.meet(range);
        if s.range.is_empty() {
            self.empty = true;
        }
    }

    /// Resolve a term to `(constant, interval, integer evidence, class)`.
    pub(crate) fn operand(&mut self, t: &Term) -> (ConstDom, Interval, bool, Option<usize>) {
        match t {
            Term::Const(c) => {
                let iv = match c {
                    Value::Int(k) => Interval::point(*k),
                    _ => Interval::TOP,
                };
                (
                    ConstDom::Const(c.clone()),
                    iv,
                    matches!(c, Value::Int(_)),
                    None,
                )
            }
            Term::Var(v) => {
                let r = self.find(*v);
                let s = &self.state[r];
                let iv = if s.is_int { s.range } else { Interval::TOP };
                (s.konst.clone(), iv, s.is_int, Some(r))
            }
        }
    }

    /// The final constant abstraction of a variable.
    pub(crate) fn var_konst(&mut self, v: Var) -> ConstDom {
        let r = self.find(v);
        self.state[r].konst.clone()
    }

    /// Head-term abstraction for predicate summarization.
    fn term_abs(&mut self, t: &Term) -> ColAbs {
        match t {
            Term::Const(c) => ColAbs::of_const(c),
            Term::Var(v) => {
                let r = self.find(*v);
                let s = &self.state[r];
                ColAbs {
                    konst: s.konst.clone(),
                    range: if s.is_int { s.range } else { Interval::TOP },
                }
            }
        }
    }

    fn apply(
        &mut self,
        catalog: &Catalog,
        preds: &HashMap<PredId, PredAbs>,
        li: usize,
        lit: &Literal,
    ) {
        match lit {
            Literal::Pred { negated: true, .. } => {}
            Literal::Pred { pred, args, .. } | Literal::Delta { pred, args, .. } => {
                let Some(pa) = preds.get(pred) else { return };
                if pa.empty {
                    self.empty = true;
                    return;
                }
                let sig = &catalog.def(*pred).signature;
                for (i, t) in args.iter().enumerate() {
                    let (ck, cr) = pa
                        .cols
                        .get(i)
                        .map(|c| (c.konst.clone(), c.range))
                        .unwrap_or((ConstDom::Top, Interval::TOP));
                    // A non-⊤ column range is itself integer evidence:
                    // ranges are only ever narrowed on integer classes.
                    let col_int = sig.get(i) == Some(&TypeId::INTEGER) || !cr.is_top();
                    match t {
                        Term::Var(v) => self.narrow(*v, &ck, cr, col_int),
                        Term::Const(c) => {
                            if let ConstDom::Const(k) = &ck {
                                if !const_eq(k, c) {
                                    self.empty = true;
                                    return;
                                }
                            }
                            if let Value::Int(k) = c {
                                if !cr.contains(*k) {
                                    self.empty = true;
                                    return;
                                }
                            }
                        }
                    }
                }
            }
            Literal::Cmp { op, lhs, rhs } => self.apply_cmp(li, *op, lhs, rhs),
            Literal::Arith {
                op,
                result,
                lhs,
                rhs,
            } => self.apply_arith(*op, result, lhs, rhs),
            Literal::Unify { lhs, rhs } => self.apply_unify(li, lhs, rhs),
        }
    }

    fn apply_cmp(&mut self, li: usize, op: CmpOp, lhs: &Term, rhs: &Term) {
        if let (Term::Var(a), Term::Var(b)) = (lhs, rhs) {
            if self.same_class(*a, *b) {
                match op {
                    CmpOp::Eq | CmpOp::Le | CmpOp::Ge => self.trivially_true.push(li),
                    CmpOp::Lt | CmpOp::Gt | CmpOp::Ne => self.empty = true,
                }
                return;
            }
        }
        let (lk, lr, lint, lc) = self.operand(lhs);
        let (rk, rr, rint, rc) = self.operand(rhs);
        if let (ConstDom::Const(a), ConstDom::Const(b)) = (&lk, &rk) {
            match op.apply(a, b) {
                Ok(true) => {
                    if matches!((lhs, rhs), (Term::Const(_), Term::Const(_))) {
                        self.trivially_true.push(li);
                    }
                }
                Ok(false) => self.empty = true,
                Err(_) => {}
            }
            return;
        }
        if op == CmpOp::Eq {
            // Equality propagates constants of any type.
            if let (Term::Var(v), ConstDom::Const(k)) = (lhs, &rk) {
                let k = k.clone();
                self.narrow(*v, &ConstDom::Const(k), Interval::TOP, false);
            }
            if let (Term::Var(v), ConstDom::Const(k)) = (rhs, &lk) {
                let k = k.clone();
                self.narrow(*v, &ConstDom::Const(k), Interval::TOP, false);
            }
            if self.empty {
                return;
            }
        }
        if lint && rint && !lr.is_empty() && !rr.is_empty() {
            if !can_sat(op, lr, rr) {
                self.empty = true;
                return;
            }
            let (nl, nr) = narrow_ranges(op, lr, rr);
            if let Some(c) = lc {
                self.set_range(c, nl);
            }
            if self.empty {
                return;
            }
            if let Some(c) = rc {
                self.set_range(c, nr);
            }
        }
    }

    fn apply_arith(&mut self, op: ArithOp, result: &Term, lhs: &Term, rhs: &Term) {
        let (lk, lr, lint, _) = self.operand(lhs);
        let (rk, rr, rint, _) = self.operand(rhs);
        if let (ConstDom::Const(a), ConstDom::Const(b)) = (&lk, &rk) {
            if let Ok(v) = op.apply(a, b) {
                match result {
                    Term::Var(rv) => {
                        let iv = match &v {
                            Value::Int(k) => Interval::point(*k),
                            _ => Interval::TOP,
                        };
                        let is_int = matches!(v, Value::Int(_));
                        self.narrow(*rv, &ConstDom::Const(v), iv, is_int);
                    }
                    Term::Const(c) => {
                        if !const_eq(c, &v) {
                            self.empty = true;
                        }
                    }
                }
            }
            return;
        }
        if lint && rint && op != ArithOp::Div && !lr.is_empty() && !rr.is_empty() {
            let iv = match op {
                ArithOp::Add => lr.add(rr),
                ArithOp::Sub => lr.sub(rr),
                ArithOp::Mul => lr.mul(rr),
                ArithOp::Div => unreachable!(),
            };
            match result {
                Term::Var(rv) => self.narrow(*rv, &ConstDom::Top, iv, true),
                Term::Const(Value::Int(k)) => {
                    if !iv.contains(*k) {
                        self.empty = true;
                    }
                }
                Term::Const(_) => {}
            }
        }
    }

    fn apply_unify(&mut self, li: usize, lhs: &Term, rhs: &Term) {
        match (lhs, rhs) {
            (Term::Const(a), Term::Const(b)) => {
                if a == b {
                    self.trivially_true.push(li);
                } else {
                    self.empty = true;
                }
            }
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                let iv = match c {
                    Value::Int(k) => Interval::point(*k),
                    _ => Interval::TOP,
                };
                self.narrow(
                    *v,
                    &ConstDom::Const(c.clone()),
                    iv,
                    matches!(c, Value::Int(_)),
                );
            }
            // var/var pairs were merged in the union step.
            (Term::Var(_), Term::Var(_)) => {}
        }
    }
}

/// Whether `a op b` can hold for some choice in the (nonempty) intervals.
fn can_sat(op: CmpOp, a: Interval, b: Interval) -> bool {
    match op {
        CmpOp::Eq => !a.meet(b).is_empty(),
        CmpOp::Ne => !(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo),
        CmpOp::Lt => a.lo < b.hi,
        CmpOp::Le => a.lo <= b.hi,
        CmpOp::Gt => a.hi > b.lo,
        CmpOp::Ge => a.hi >= b.lo,
    }
}

/// Whether `a op b` holds for every choice in the (nonempty) intervals.
fn must_sat(op: CmpOp, a: Interval, b: Interval) -> bool {
    match op {
        CmpOp::Eq => {
            a.lo == a.hi && b.lo == b.hi && a.lo == b.lo && a.lo != i64::MIN && a.lo != i64::MAX
        }
        CmpOp::Ne => a.meet(b).is_empty(),
        CmpOp::Lt => a.hi < b.lo,
        CmpOp::Le => a.hi <= b.lo,
        CmpOp::Gt => a.lo > b.hi,
        CmpOp::Ge => a.lo >= b.hi,
    }
}

fn inc(x: i64) -> i64 {
    if x == i64::MIN || x == i64::MAX {
        x
    } else {
        x + 1
    }
}

fn dec(x: i64) -> i64 {
    if x == i64::MIN || x == i64::MAX {
        x
    } else {
        x - 1
    }
}

/// Narrow both operand intervals assuming `a op b` holds.
fn narrow_ranges(op: CmpOp, a: Interval, b: Interval) -> (Interval, Interval) {
    match op {
        CmpOp::Eq => {
            let m = a.meet(b);
            (m, m)
        }
        CmpOp::Ne => {
            let mut a2 = a;
            let mut b2 = b;
            if b.lo == b.hi {
                if a2.lo == b.lo {
                    a2.lo = inc(a2.lo);
                }
                if a2.hi == b.lo {
                    a2.hi = dec(a2.hi);
                }
            }
            if a.lo == a.hi {
                if b2.lo == a.lo {
                    b2.lo = inc(b2.lo);
                }
                if b2.hi == a.lo {
                    b2.hi = dec(b2.hi);
                }
            }
            (a2, b2)
        }
        CmpOp::Lt => (
            Interval {
                lo: a.lo,
                hi: a.hi.min(dec(b.hi)),
            },
            Interval {
                lo: b.lo.max(inc(a.lo)),
                hi: b.hi,
            },
        ),
        CmpOp::Le => (
            Interval {
                lo: a.lo,
                hi: a.hi.min(b.hi),
            },
            Interval {
                lo: b.lo.max(a.lo),
                hi: b.hi,
            },
        ),
        CmpOp::Gt => (
            Interval {
                lo: a.lo.max(inc(b.lo)),
                hi: a.hi,
            },
            Interval {
                lo: b.lo,
                hi: b.hi.min(dec(a.hi)),
            },
        ),
        CmpOp::Ge => (
            Interval {
                lo: a.lo.max(b.lo),
                hi: a.hi,
            },
            Interval {
                lo: b.lo,
                hi: b.hi.min(a.hi),
            },
        ),
    }
}

// ---------------------------------------------------------------------
// L006 — type mismatch
// ---------------------------------------------------------------------

/// The registry type a constant value inhabits (`None` for OIDs, whose
/// user type the registry cannot recover from the value alone).
fn value_type_id(v: &Value) -> Option<TypeId> {
    match v {
        Value::Bool(_) => Some(TypeId::BOOLEAN),
        Value::Int(_) => Some(TypeId::INTEGER),
        Value::Real(_) => Some(TypeId::REAL),
        Value::Str(_) => Some(TypeId::CHARSTRING),
        Value::Oid(_) => None,
    }
}

fn is_numeric(ty: TypeId) -> bool {
    ty == TypeId::INTEGER || ty == TypeId::REAL
}

/// Greatest lower bound in the type lattice, with numeric blur:
/// `integer` and `real` are mutually compatible (the runtime promotes),
/// and everything is a subtype of `object`.
fn type_meet(types: &TypeRegistry, a: TypeId, b: TypeId) -> Option<TypeId> {
    if types.is_subtype(a, b) {
        Some(a)
    } else if types.is_subtype(b, a) {
        Some(b)
    } else if is_numeric(a) && is_numeric(b) {
        Some(a)
    } else {
        None
    }
}

/// L006: type-check clause bodies against declared column signatures.
/// Reports a variable used at columns of incompatible types, constants
/// that cannot inhabit their column, comparisons between incompatible
/// operand types, and arithmetic over non-numeric operands.
///
/// `roots` restricts the check to predicates reachable from the given
/// set (like [`crate::check_stratification`]); `None` checks the whole
/// catalog. `spans` anchors findings by predicate.
pub fn check_types(
    config: &LintConfig,
    catalog: &Catalog,
    types: &TypeRegistry,
    roots: Option<&[PredId]>,
    spans: &dyn Fn(PredId) -> Option<Span>,
) -> Vec<Diagnostic> {
    let in_scope: Option<HashSet<PredId>> = roots.map(|rs| {
        let mut seen = HashSet::new();
        let mut stack: Vec<PredId> = rs.to_vec();
        while let Some(p) = stack.pop() {
            if seen.insert(p) {
                stack.extend(catalog.direct_influents(p));
            }
        }
        seen
    });
    let mut out = Vec::new();
    for def in catalog.iter() {
        if let Some(scope) = &in_scope {
            if !scope.contains(&def.id) {
                continue;
            }
        }
        let PredKind::Derived(clauses) = &def.kind else {
            continue;
        };
        let span = spans(def.id);
        let subject = def.name.as_str();
        for (ci, c) in clauses.iter().enumerate() {
            // Phase 1: column constraints from the head and every
            // predicate literal (negated ones included — a mistyped
            // negated literal is just as much a programmer error).
            let mut constraints: Vec<(Term, TypeId, String)> = Vec::new();
            for (i, t) in c.head.iter().enumerate() {
                if let Some(&ty) = def.signature.get(i) {
                    constraints.push((t.clone(), ty, format!("column {i} of {}", def.name)));
                }
            }
            for lit in &c.body {
                let (pred, args) = match lit {
                    Literal::Pred { pred, args, .. } | Literal::Delta { pred, args, .. } => {
                        (pred, args)
                    }
                    _ => continue,
                };
                let pdef = catalog.def(*pred);
                for (i, t) in args.iter().enumerate() {
                    if let Some(&ty) = pdef.signature.get(i) {
                        constraints.push((t.clone(), ty, format!("column {i} of {}", pdef.name)));
                    }
                }
            }
            let mut var_ty: HashMap<u32, (TypeId, String)> = HashMap::new();
            let mut conflicted: HashSet<u32> = HashSet::new();
            for (t, ty, what) in constraints {
                match t {
                    Term::Var(v) => match var_ty.get(&v.0) {
                        None => {
                            var_ty.insert(v.0, (ty, what));
                        }
                        Some((prev, pwhat)) => match type_meet(types, *prev, ty) {
                            Some(m) => {
                                let keep = if m == *prev {
                                    pwhat.clone()
                                } else {
                                    what.clone()
                                };
                                var_ty.insert(v.0, (m, keep));
                            }
                            None => {
                                if conflicted.insert(v.0) {
                                    out.extend(config.diag(
                                        LintCode::L006,
                                        span,
                                        Some(subject),
                                        format!(
                                            "clause {ci}: variable {v} is used both as {} \
                                             ({pwhat}) and as {} ({what})",
                                            types.name(*prev),
                                            types.name(ty)
                                        ),
                                    ));
                                }
                            }
                        },
                    },
                    Term::Const(cv) => {
                        if let Some(vt) = value_type_id(&cv) {
                            if type_meet(types, vt, ty).is_none() {
                                out.extend(config.diag(
                                    LintCode::L006,
                                    span,
                                    Some(subject),
                                    format!(
                                        "clause {ci}: constant {cv} has type {}, but {what} \
                                         is {}",
                                        types.name(vt),
                                        types.name(ty)
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            // Conflicted variables get no derived type: suppress cascades.
            let term_ty = |var_ty: &HashMap<u32, (TypeId, String)>, t: &Term| match t {
                Term::Var(v) => {
                    if conflicted.contains(&v.0) {
                        None
                    } else {
                        var_ty.get(&v.0).map(|(ty, _)| *ty)
                    }
                }
                Term::Const(cv) => value_type_id(cv),
            };
            // Phase 2: arithmetic operand/result typing.
            for lit in &c.body {
                let Literal::Arith {
                    result, lhs, rhs, ..
                } = lit
                else {
                    continue;
                };
                let mut op_tys = Vec::new();
                for t in [lhs, rhs] {
                    if let Some(ty) = term_ty(&var_ty, t) {
                        if !(is_numeric(ty) || ty == TypeId::OBJECT) {
                            out.extend(config.diag(
                                LintCode::L006,
                                span,
                                Some(subject),
                                format!(
                                    "clause {ci}: arithmetic operand {} has non-numeric \
                                     type {}",
                                    render_term(t),
                                    types.name(ty)
                                ),
                            ));
                        } else if is_numeric(ty) {
                            op_tys.push(ty);
                        }
                    }
                }
                if op_tys.len() == 2 {
                    let rty = if op_tys.contains(&TypeId::REAL) {
                        TypeId::REAL
                    } else {
                        TypeId::INTEGER
                    };
                    if let Some(ety) = term_ty(&var_ty, result) {
                        if type_meet(types, ety, rty).is_none() {
                            out.extend(config.diag(
                                LintCode::L006,
                                span,
                                Some(subject),
                                format!(
                                    "clause {ci}: arithmetic result {} is used as {}, but \
                                     the operation yields {}",
                                    render_term(result),
                                    types.name(ety),
                                    types.name(rty)
                                ),
                            ));
                        }
                    }
                }
            }
            // Phase 3: comparison operand compatibility.
            for lit in &c.body {
                let Literal::Cmp { op, lhs, rhs } = lit else {
                    continue;
                };
                if let (Some(a), Some(b)) = (term_ty(&var_ty, lhs), term_ty(&var_ty, rhs)) {
                    if type_meet(types, a, b).is_none() {
                        out.extend(config.diag(
                            LintCode::L006,
                            span,
                            Some(subject),
                            format!(
                                "clause {ci}: comparison {} {op} {} compares incompatible \
                                 types {} and {}",
                                render_term(lhs),
                                render_term(rhs),
                                types.name(a),
                                types.name(b)
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// L007 — provably-empty differential
// ---------------------------------------------------------------------

/// L007: report clauses (reachable from each condition) whose abstract
/// state is ⊥ — the semantic strengthening of L004's syntactic
/// statically-false check, which is skipped here to avoid duplicate
/// findings. The network builder prunes the matching differentials via
/// [`Analysis::clause_provably_empty`].
pub fn check_provably_empty(
    config: &LintConfig,
    catalog: &Catalog,
    analysis: &Analysis,
    conditions: &[(String, PredId)],
    spans: &dyn Fn(&str) -> Option<Span>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (rule, cond) in conditions {
        let span = spans(rule);
        let mut seen = HashSet::new();
        let mut stack = vec![*cond];
        while let Some(p) = stack.pop() {
            if !seen.insert(p) {
                continue;
            }
            let Some(clauses) = catalog.def(p).clauses() else {
                continue;
            };
            for (ci, c) in clauses.iter().enumerate() {
                for lit in &c.body {
                    if let Some(q) = lit.pred() {
                        stack.push(q);
                    }
                }
                if clause_statically_false(c) {
                    continue; // L004's finding, syntactically visible.
                }
                if analysis.clause_provably_empty(catalog, c) {
                    out.extend(config.diag(
                        LintCode::L007,
                        span,
                        Some(rule),
                        format!(
                            "clause {ci} of {} is provably empty under abstract \
                             interpretation; its differentials can never fire (pruned)",
                            catalog.name(p)
                        ),
                    ));
                }
            }
            if p == *cond && analysis.pred(p).is_some_and(|pa| pa.empty) {
                out.extend(config.diag(
                    LintCode::L007,
                    span,
                    Some(rule),
                    format!(
                        "condition {} is provably empty — rule {rule} can never fire",
                        catalog.name(p)
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// L008 — cross-rule condition subsumption
// ---------------------------------------------------------------------

/// L008: rule A's condition implies rule B's — every tuple A monitors
/// already satisfies B, so monitoring both is redundant. Implication is
/// established clause-wise: every clause of A must imply some clause of
/// B under a variable mapping seeded by the head columns, with B's
/// residual comparisons discharged by A's inferred intervals.
/// Syntactically identical conditions are left to L005's duplicate pass.
pub fn check_subsumption(
    config: &LintConfig,
    catalog: &Catalog,
    analysis: &Analysis,
    conditions: &[(String, PredId)],
    spans: &dyn Fn(&str) -> Option<Span>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, (ra, pa)) in conditions.iter().enumerate() {
        let Some(ca) = catalog.def(*pa).clauses() else {
            continue;
        };
        // An empty condition vacuously implies everything — that finding
        // belongs to L007, not here.
        if ca.is_empty() || analysis.pred(*pa).is_some_and(|x| x.empty) {
            continue;
        }
        for (j, (rb, pb)) in conditions.iter().enumerate() {
            if i == j || pa == pb {
                continue;
            }
            let Some(cb) = catalog.def(*pb).clauses() else {
                continue;
            };
            if cb.is_empty() || catalog.def(*pa).arity != catalog.def(*pb).arity {
                continue;
            }
            if format!("{ca:?}") == format!("{cb:?}") {
                continue; // exact duplicate — L005 reports it.
            }
            if ca
                .iter()
                .all(|c| cb.iter().any(|d| clause_implies(catalog, analysis, c, d)))
            {
                out.extend(config.diag(
                    LintCode::L008,
                    spans(ra),
                    Some(ra),
                    format!(
                        "condition of rule {ra} implies the condition of rule {rb}: every \
                         match of {ra} already satisfies {rb} (redundant monitoring)"
                    ),
                ));
            }
        }
    }
    out
}

/// Whether every satisfying assignment of `ac` yields a tuple of `bc`
/// (same head arity). Sound, not complete: B's predicate literals must
/// match A's under a consistent substitution θ (seeded by the heads),
/// and B's built-ins must either match an A literal exactly under θ or
/// be implied by A's abstract state.
fn clause_implies(catalog: &Catalog, analysis: &Analysis, ac: &Clause, bc: &Clause) -> bool {
    if ac.head.len() != bc.head.len() {
        return false;
    }
    if bc.body.iter().any(|l| matches!(l, Literal::Delta { .. })) {
        return false;
    }
    let mut ev = eval_clause(catalog, &analysis.preds, ac);
    if ev.empty {
        return true; // an empty A-clause implies anything.
    }
    let mut theta: HashMap<u32, Term> = HashMap::new();
    for (bt, at) in bc.head.iter().zip(ac.head.iter()) {
        if !bind(&mut ev, &mut theta, bt, at) {
            return false;
        }
    }
    let a_preds: Vec<&Literal> = ac
        .body
        .iter()
        .filter(|l| matches!(l, Literal::Pred { .. }))
        .collect();
    let b_preds: Vec<&Literal> = bc
        .body
        .iter()
        .filter(|l| matches!(l, Literal::Pred { .. }))
        .collect();
    let a_builtins: Vec<&Literal> = ac
        .body
        .iter()
        .filter(|l| !matches!(l, Literal::Pred { .. } | Literal::Delta { .. }))
        .collect();
    let b_builtins: Vec<&Literal> = bc
        .body
        .iter()
        .filter(|l| !matches!(l, Literal::Pred { .. } | Literal::Delta { .. }))
        .collect();
    search_match(
        &mut ev,
        &b_preds,
        &a_preds,
        &b_builtins,
        &a_builtins,
        &theta,
    )
}

/// Equality of A-side terms modulo A's union-find classes and constant
/// propagation.
fn terms_equal(ev: &mut ClauseEval, a: &Term, b: &Term) -> bool {
    match (a, b) {
        (Term::Var(x), Term::Var(y)) => ev.same_class(*x, *y),
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) => {
            matches!(ev.var_konst(*x), ConstDom::Const(k) if k == *c)
        }
    }
}

/// Extend θ so the B-term maps to the A-term; fails on inconsistency.
fn bind(ev: &mut ClauseEval, theta: &mut HashMap<u32, Term>, bt: &Term, at: &Term) -> bool {
    match bt {
        Term::Const(_) => terms_equal(ev, at, bt),
        Term::Var(v) => match theta.get(&v.0) {
            Some(prev) => {
                let prev = prev.clone();
                terms_equal(ev, &prev, at)
            }
            None => {
                theta.insert(v.0, at.clone());
                true
            }
        },
    }
}

fn subst(theta: &HashMap<u32, Term>, t: &Term) -> Option<Term> {
    match t {
        Term::Const(_) => Some(t.clone()),
        Term::Var(v) => theta.get(&v.0).cloned(),
    }
}

/// Backtracking match of B's predicate literals onto A's; when all are
/// placed, discharge B's built-ins under the final θ.
fn search_match(
    ev: &mut ClauseEval,
    b_rest: &[&Literal],
    a_preds: &[&Literal],
    b_builtins: &[&Literal],
    a_builtins: &[&Literal],
    theta: &HashMap<u32, Term>,
) -> bool {
    let Some((bl, rest)) = b_rest.split_first() else {
        return b_builtins
            .iter()
            .all(|l| builtin_implied(ev, a_builtins, l, theta));
    };
    let Literal::Pred {
        pred: bp,
        args: bargs,
        negated: bneg,
        epoch: bep,
    } = bl
    else {
        return false;
    };
    for al in a_preds {
        let Literal::Pred {
            pred: ap,
            args: aargs,
            negated: aneg,
            epoch: aep,
        } = al
        else {
            continue;
        };
        if ap != bp || aneg != bneg || aep != bep || aargs.len() != bargs.len() {
            continue;
        }
        let mut t2 = theta.clone();
        if bargs
            .iter()
            .zip(aargs.iter())
            .all(|(bt, at)| bind(ev, &mut t2, bt, at))
            && search_match(ev, rest, a_preds, b_builtins, a_builtins, &t2)
        {
            return true;
        }
    }
    false
}

/// Whether a B built-in, θ-substituted into A's variable space, is
/// guaranteed by A: an exact (or flipped) match against an A literal,
/// or implied by A's constant/interval state.
fn builtin_implied(
    ev: &mut ClauseEval,
    a_builtins: &[&Literal],
    lit: &Literal,
    theta: &HashMap<u32, Term>,
) -> bool {
    match lit {
        Literal::Cmp { op, lhs, rhs } => {
            let (Some(l), Some(r)) = (subst(theta, lhs), subst(theta, rhs)) else {
                return false;
            };
            for al in a_builtins {
                if let Literal::Cmp {
                    op: aop,
                    lhs: alh,
                    rhs: arh,
                } = al
                {
                    if *aop == *op && terms_equal(ev, alh, &l) && terms_equal(ev, arh, &r) {
                        return true;
                    }
                    if *aop == op.flipped() && terms_equal(ev, alh, &r) && terms_equal(ev, arh, &l)
                    {
                        return true;
                    }
                }
            }
            let (lk, lr, lint, _) = ev.operand(&l);
            let (rk, rr, rint, _) = ev.operand(&r);
            if let (ConstDom::Const(a), ConstDom::Const(b)) = (&lk, &rk) {
                return op.apply(a, b).unwrap_or(false);
            }
            lint && rint && !lr.is_empty() && !rr.is_empty() && must_sat(*op, lr, rr)
        }
        Literal::Unify { lhs, rhs } => {
            let (Some(l), Some(r)) = (subst(theta, lhs), subst(theta, rhs)) else {
                return false;
            };
            if terms_equal(ev, &l, &r) {
                return true;
            }
            a_builtins.iter().any(|al| {
                matches!(al, Literal::Unify { lhs: alh, rhs: arh }
                    if (terms_equal(ev, alh, &l) && terms_equal(ev, arh, &r))
                        || (terms_equal(ev, alh, &r) && terms_equal(ev, arh, &l)))
            })
        }
        Literal::Arith {
            op,
            result,
            lhs,
            rhs,
        } => {
            let (Some(res), Some(l), Some(r)) =
                (subst(theta, result), subst(theta, lhs), subst(theta, rhs))
            else {
                return false;
            };
            a_builtins.iter().any(|al| {
                matches!(al, Literal::Arith { op: aop, result: ares, lhs: alh, rhs: arh }
                    if *aop == *op
                        && terms_equal(ev, ares, &res)
                        && terms_equal(ev, alh, &l)
                        && terms_equal(ev, arh, &r))
            })
        }
        Literal::Pred { .. } | Literal::Delta { .. } => false,
    }
}

// ---------------------------------------------------------------------
// L009 — constant-foldable subcondition
// ---------------------------------------------------------------------

/// L009: subconditions that always hold (or fold to a constant) under
/// the abstraction, shown with the residual body after folding. A
/// comparison is judged against the fixpoint of the body *without* it
/// (leave-one-out), so a bound never justifies its own removal.
pub fn check_const_fold(
    config: &LintConfig,
    catalog: &Catalog,
    analysis: &Analysis,
    conditions: &[(String, PredId)],
    spans: &dyn Fn(&str) -> Option<Span>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (rule, cond) in conditions {
        let span = spans(rule);
        let Some(clauses) = catalog.def(*cond).clauses() else {
            continue;
        };
        for (ci, c) in clauses.iter().enumerate() {
            let base = eval_clause(catalog, &analysis.preds, c);
            if base.empty {
                continue; // L007's finding.
            }
            let mut reported: HashSet<usize> = HashSet::new();
            // State-independent trivial folds (skip const/const
            // comparisons — L005 already reports those).
            for &li in &base.trivially_true {
                let lit = &c.body[li];
                if matches!(
                    lit,
                    Literal::Cmp {
                        lhs: Term::Const(_),
                        rhs: Term::Const(_),
                        ..
                    }
                ) {
                    continue;
                }
                if reported.insert(li) {
                    out.extend(config.diag(
                        LintCode::L009,
                        span,
                        Some(rule),
                        format!(
                            "clause {ci}: subcondition {} always holds and can be folded \
                             away; residual: {}",
                            render_literal(catalog, lit),
                            render_residual(catalog, c, li)
                        ),
                    ));
                }
            }
            for (li, lit) in c.body.iter().enumerate() {
                if reported.contains(&li) {
                    continue;
                }
                match lit {
                    Literal::Cmp { op, lhs, rhs } => {
                        if matches!((lhs, rhs), (Term::Const(_), Term::Const(_))) {
                            continue; // L005's finding.
                        }
                        if literal_implied_without(catalog, analysis, c, li, *op, lhs, rhs)
                            && reported.insert(li)
                        {
                            out.extend(config.diag(
                                LintCode::L009,
                                span,
                                Some(rule),
                                format!(
                                    "clause {ci}: subcondition {} always holds and can be \
                                     folded away; residual: {}",
                                    render_literal(catalog, lit),
                                    render_residual(catalog, c, li)
                                ),
                            ));
                        }
                    }
                    Literal::Arith {
                        op,
                        lhs: Term::Const(a),
                        rhs: Term::Const(b),
                        ..
                    } => {
                        if let Ok(v) = op.apply(a, b) {
                            if reported.insert(li) {
                                out.extend(config.diag(
                                    LintCode::L009,
                                    span,
                                    Some(rule),
                                    format!(
                                        "clause {ci}: arithmetic {} folds to constant {v}; \
                                         residual: {}",
                                        render_literal(catalog, lit),
                                        render_residual(catalog, c, li)
                                    ),
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// Whether a comparison is implied by the fixpoint of the clause body
/// with that literal removed.
fn literal_implied_without(
    catalog: &Catalog,
    analysis: &Analysis,
    c: &Clause,
    li: usize,
    op: CmpOp,
    lhs: &Term,
    rhs: &Term,
) -> bool {
    let mut reduced = c.clone();
    reduced.body.remove(li);
    let mut ev = eval_clause(catalog, &analysis.preds, &reduced);
    if ev.empty {
        return false;
    }
    if let (Term::Var(a), Term::Var(b)) = (lhs, rhs) {
        if ev.same_class(*a, *b) {
            return matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge);
        }
    }
    let (lk, lr, lint, _) = ev.operand(lhs);
    let (rk, rr, rint, _) = ev.operand(rhs);
    if let (ConstDom::Const(a), ConstDom::Const(b)) = (&lk, &rk) {
        return op.apply(a, b).unwrap_or(false);
    }
    lint && rint && !lr.is_empty() && !rr.is_empty() && must_sat(op, lr, rr)
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn render_term(t: &Term) -> String {
    match t {
        Term::Var(v) => v.to_string(),
        Term::Const(c) => c.to_string(),
    }
}

/// Render one literal with catalog names (for residual display).
pub fn render_literal(catalog: &Catalog, lit: &Literal) -> String {
    let args_of = |args: &[Term]| args.iter().map(render_term).collect::<Vec<_>>().join(", ");
    match lit {
        Literal::Pred {
            pred,
            args,
            negated,
            epoch,
        } => format!(
            "{}{}{}({})",
            if *negated { "¬" } else { "" },
            catalog.name(*pred),
            if *epoch == StateEpoch::Old {
                "@old"
            } else {
                ""
            },
            args_of(args)
        ),
        Literal::Delta {
            pred,
            polarity,
            args,
        } => format!("{polarity}{}({})", catalog.name(*pred), args_of(args)),
        Literal::Cmp { op, lhs, rhs } => {
            format!("{} {op} {}", render_term(lhs), render_term(rhs))
        }
        Literal::Arith {
            op,
            result,
            lhs,
            rhs,
        } => format!(
            "{} = {} {op} {}",
            render_term(result),
            render_term(lhs),
            render_term(rhs)
        ),
        Literal::Unify { lhs, rhs } => {
            format!("{} = {}", render_term(lhs), render_term(rhs))
        }
    }
}

/// Render a clause body with one literal folded away.
fn render_residual(catalog: &Catalog, c: &Clause, skip: usize) -> String {
    let parts: Vec<String> = c
        .body
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != skip)
        .map(|(_, l)| render_literal(catalog, l))
        .collect();
    if parts.is_empty() {
        "true".to_string()
    } else {
        parts.join(" ∧ ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use amos_objectlog::clause::ClauseBuilder;
    use amos_storage::RelId;

    /// `quantity(item, integer)` plus helpers, mirroring the paper schema.
    fn typed_cat() -> (Catalog, TypeRegistry, PredId) {
        let mut types = TypeRegistry::new();
        let item = types.create("item", None).unwrap();
        let mut cat = Catalog::new();
        let q = cat
            .define_stored("quantity", vec![item, TypeId::INTEGER], RelId(0), 1)
            .unwrap();
        (cat, types, q)
    }

    #[test]
    fn interval_lattice_and_arith() {
        let a = Interval { lo: 0, hi: 10 };
        let b = Interval { lo: 5, hi: 20 };
        assert_eq!(a.meet(b), Interval { lo: 5, hi: 10 });
        assert_eq!(a.join(b), Interval { lo: 0, hi: 20 });
        assert!(Interval { lo: 3, hi: 2 }.is_empty());
        assert_eq!(a.width(), Some(11.0));
        assert_eq!(Interval::TOP.width(), None);
        assert_eq!(a.add(b), Interval { lo: 5, hi: 30 });
        assert_eq!(a.sub(b), Interval { lo: -20, hi: 5 });
        assert_eq!(
            Interval { lo: -2, hi: 3 }.mul(Interval { lo: 4, hi: 5 }),
            Interval { lo: -10, hi: 15 }
        );
        // Infinite bounds survive arithmetic as infinities.
        let half = Interval {
            lo: 0,
            hi: i64::MAX,
        };
        assert_eq!(
            half.add(Interval::point(5)),
            Interval {
                lo: 5,
                hi: i64::MAX
            }
        );
        assert!(must_sat(
            CmpOp::Lt,
            Interval { lo: 0, hi: 4 },
            Interval::point(5)
        ));
        assert!(!can_sat(
            CmpOp::Gt,
            Interval { lo: 0, hi: 4 },
            Interval::point(9)
        ));
        assert_eq!(
            format!(
                "{}",
                Interval {
                    lo: 1,
                    hi: i64::MAX
                }
            ),
            "[1, +∞]"
        );
    }

    #[test]
    fn analyze_infers_head_intervals_and_ndv_bounds() {
        let (mut cat, _types, q) = typed_cat();
        // val(G) ← quantity(X, G) ∧ G ≥ 0 ∧ G < 5
        let val = cat
            .define_derived(
                "val",
                vec![TypeId::INTEGER],
                vec![ClauseBuilder::new(2)
                    .head([Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Ge, Term::val(0))
                    .cmp(Term::var(1), CmpOp::Lt, Term::val(5))
                    .build()],
            )
            .unwrap();
        let analysis = analyze(&cat);
        assert_eq!(
            analysis.column_interval(val, 0),
            Some(Interval { lo: 0, hi: 4 })
        );
        assert_eq!(analysis.ndv_bound(val, 0), Some(5.0));
        assert!(!analysis.pred(val).unwrap().empty);
        // Stored predicates stay ⊤.
        assert_eq!(analysis.column_interval(q, 1), None);
    }

    #[test]
    fn cross_predicate_emptiness_is_semantic_not_syntactic() {
        let (mut cat, _types, q) = typed_cat();
        // mid(X, G) ← quantity(X, G) ∧ G ≥ 10
        let mid = cat
            .define_derived(
                "mid",
                vec![TypeId::OBJECT, TypeId::INTEGER],
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Ge, Term::val(10))
                    .build()],
            )
            .unwrap();
        // c(X) ← mid(X, G) ∧ G < 5 — empty only via mid's head interval.
        let c = cat
            .define_derived(
                "cnd_c",
                vec![TypeId::OBJECT],
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(mid, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Lt, Term::val(5))
                    .build()],
            )
            .unwrap();
        let analysis = analyze(&cat);
        let clause = &cat.def(c).clauses().unwrap()[0];
        assert!(!clause_statically_false(clause));
        assert!(analysis.clause_provably_empty(&cat, clause));
        assert!(analysis.pred(c).unwrap().empty);
        // The satisfiable sibling is not empty.
        assert!(!analysis.pred(mid).unwrap().empty);
    }

    #[test]
    fn delta_literals_and_unified_result_vars() {
        let (cat, _types, q) = typed_cat();
        // Differential-style body: Δ₊quantity(X, G1) ∧ G1 < 3 ∧
        // quantity(X, G2) ∧ G2 > 9 — G1/G2 unify (same call, new epoch).
        let clause = ClauseBuilder::new(3)
            .head([Term::var(0)])
            .delta(q, Polarity::Plus, [Term::var(0), Term::var(1)])
            .cmp(Term::var(1), CmpOp::Lt, Term::val(3))
            .pred(q, [Term::var(0), Term::var(2)])
            .cmp(Term::var(2), CmpOp::Gt, Term::val(9))
            .build();
        let analysis = analyze(&cat);
        assert!(analysis.clause_provably_empty(&cat, &clause));
        // Δ₋ reads the old state: no unification with the new-state call,
        // so the same bounds are satisfiable.
        let old_clause = ClauseBuilder::new(3)
            .head([Term::var(0)])
            .delta(q, Polarity::Minus, [Term::var(0), Term::var(1)])
            .cmp(Term::var(1), CmpOp::Lt, Term::val(3))
            .pred(q, [Term::var(0), Term::var(2)])
            .cmp(Term::var(2), CmpOp::Gt, Term::val(9))
            .build();
        assert!(!analysis.clause_provably_empty(&cat, &old_clause));
    }

    #[test]
    fn recursive_predicates_are_soundly_top() {
        let (mut cat, _types, q) = typed_cat();
        let tc = cat
            .define_derived("tc", vec![TypeId::OBJECT, TypeId::INTEGER], Vec::new())
            .unwrap();
        cat.replace_clauses(
            tc,
            vec![
                ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Lt, Term::val(5))
                    .build(),
                ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(1)])
                    .pred(tc, [Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(2), Term::var(1)])
                    .build(),
            ],
        )
        .unwrap();
        let analysis = analyze(&cat);
        // The recursive clause references tc itself (seeded ⊤), so the
        // join over clauses must stay ⊤-ish: no column interval claimed.
        assert!(!analysis.pred(tc).unwrap().empty);
        assert_eq!(analysis.column_interval(tc, 1), None);
    }

    #[test]
    fn l006_type_mismatch_positive_and_negative() {
        let mut types = TypeRegistry::new();
        let item = types.create("item", None).unwrap();
        let supplier = types.create("supplier", None).unwrap();
        let mut cat = Catalog::new();
        let q = cat
            .define_stored("quantity", vec![item, TypeId::INTEGER], RelId(0), 1)
            .unwrap();
        let owner = cat
            .define_stored("owner", vec![supplier, TypeId::CHARSTRING], RelId(1), 1)
            .unwrap();
        // bad(X) ← quantity(X, G) ∧ owner(X, N) ∧ N < G ∧ quantity("oops", G)
        let bad = cat
            .define_derived(
                "bad",
                vec![item],
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(owner, [Term::var(0), Term::var(2)])
                    .cmp(Term::var(2), CmpOp::Lt, Term::var(1))
                    .pred(q, [Term::val(Value::str("oops")), Term::var(1)])
                    .build()],
            )
            .unwrap();
        let config = LintConfig::default();
        let diags = check_types(&config, &cat, &types, None, &|p| {
            (p == bad).then_some(Span::new(7, 3))
        });
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("used both as item") && m.contains("as supplier")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("constant \"oops\" has type charstring")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("compares incompatible types charstring and integer")),
            "{msgs:?}"
        );
        assert!(diags.iter().all(|d| d.code == LintCode::L006));
        assert!(diags.iter().all(|d| d.severity == Severity::Deny));
        assert!(diags.iter().all(|d| d.span == Some(Span::new(7, 3))));
        // Negative: numeric blur (integer vs real) and object columns
        // are compatible.
        let price = cat
            .define_stored("price", vec![item, TypeId::REAL], RelId(2), 1)
            .unwrap();
        let ok = cat
            .define_derived(
                "ok",
                vec![item],
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(price, [Term::var(0), Term::var(2)])
                    .cmp(Term::var(1), CmpOp::Lt, Term::var(2))
                    .build()],
            )
            .unwrap();
        assert!(check_types(&config, &cat, &types, Some(&[ok]), &|_| None).is_empty());
    }

    #[test]
    fn l006_arith_on_non_numeric() {
        let mut types = TypeRegistry::new();
        let item = types.create("item", None).unwrap();
        let mut cat = Catalog::new();
        let name = cat
            .define_stored("name", vec![item, TypeId::CHARSTRING], RelId(0), 1)
            .unwrap();
        let bad = cat
            .define_derived(
                "badsum",
                vec![item],
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0)])
                    .pred(name, [Term::var(0), Term::var(1)])
                    .arith(Term::var(2), Term::var(1), ArithOp::Add, Term::val(1))
                    .build()],
            )
            .unwrap();
        let config = LintConfig::default();
        let diags = check_types(&config, &cat, &types, Some(&[bad]), &|_| None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("non-numeric type charstring"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn l007_positive_and_negative_with_spans() {
        let (mut cat, _types, q) = typed_cat();
        let mid = cat
            .define_derived(
                "mid",
                vec![TypeId::OBJECT, TypeId::INTEGER],
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Ge, Term::val(10))
                    .build()],
            )
            .unwrap();
        let dead = cat
            .define_derived(
                "cnd_dead",
                vec![TypeId::OBJECT],
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(mid, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Lt, Term::val(5))
                    .build()],
            )
            .unwrap();
        let live = cat
            .define_derived(
                "cnd_live",
                vec![TypeId::OBJECT],
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(mid, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Lt, Term::val(50))
                    .build()],
            )
            .unwrap();
        let analysis = analyze(&cat);
        let config = LintConfig::default();
        let conds = vec![("dead".to_string(), dead), ("live".to_string(), live)];
        let diags = check_provably_empty(&config, &cat, &analysis, &conds, &|r| {
            (r == "dead").then_some(Span::new(9, 1))
        });
        assert_eq!(diags.len(), 2, "{diags:?}"); // clause-level + condition-level
        assert!(diags.iter().all(|d| d.code == LintCode::L007));
        assert!(diags.iter().all(|d| d.rule.as_deref() == Some("dead")));
        assert!(diags.iter().all(|d| d.span == Some(Span::new(9, 1))));
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("provably empty under abstract")),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.message.contains("can never fire")),
            "{diags:?}"
        );
    }

    #[test]
    fn l008_subsumption_positive_and_negative() {
        let (mut cat, _types, q) = typed_cat();
        let mk = |hi: i64| {
            ClauseBuilder::new(2)
                .head([Term::var(0)])
                .pred(q, [Term::var(0), Term::var(1)])
                .cmp(Term::var(1), CmpOp::Lt, Term::val(hi))
                .build()
        };
        let tight = cat
            .define_derived("cnd_tight", vec![TypeId::OBJECT], vec![mk(5)])
            .unwrap();
        let loose = cat
            .define_derived("cnd_loose", vec![TypeId::OBJECT], vec![mk(10)])
            .unwrap();
        let other = cat
            .define_derived(
                "cnd_other",
                vec![TypeId::OBJECT],
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Gt, Term::val(100))
                    .build()],
            )
            .unwrap();
        let analysis = analyze(&cat);
        let config = LintConfig::default();
        let conds = vec![
            ("tight".to_string(), tight),
            ("loose".to_string(), loose),
            ("other".to_string(), other),
        ];
        let diags = check_subsumption(&config, &cat, &analysis, &conds, &|r| {
            (r == "tight").then_some(Span::new(11, 1))
        });
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::L008);
        assert_eq!(diags[0].rule.as_deref(), Some("tight"));
        assert_eq!(diags[0].span, Some(Span::new(11, 1)));
        assert!(
            diags[0]
                .message
                .contains("condition of rule tight implies the condition of rule loose"),
            "{}",
            diags[0].message
        );
        // Exact duplicates are L005's finding, not L008's.
        let dup = cat
            .define_derived("cnd_dup", vec![TypeId::OBJECT], vec![mk(5)])
            .unwrap();
        let analysis = analyze(&cat);
        let conds = vec![("tight".to_string(), tight), ("dup".to_string(), dup)];
        assert!(check_subsumption(&config, &cat, &analysis, &conds, &|_| None).is_empty());
    }

    #[test]
    fn l009_foldable_subcondition_with_residual() {
        let (mut cat, _types, q) = typed_cat();
        // redundant(X) ← quantity(X, G) ∧ G < 5 ∧ G < 10
        let red = cat
            .define_derived(
                "cnd_red",
                vec![TypeId::OBJECT],
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Lt, Term::val(5))
                    .cmp(Term::var(1), CmpOp::Lt, Term::val(10))
                    .build()],
            )
            .unwrap();
        let analysis = analyze(&cat);
        let config = LintConfig::default();
        let conds = vec![("red".to_string(), red)];
        let diags = check_const_fold(&config, &cat, &analysis, &conds, &|_| {
            Some(Span::new(13, 2))
        });
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::L009);
        assert_eq!(diags[0].span, Some(Span::new(13, 2)));
        assert_eq!(
            diags[0].message,
            "clause 0: subcondition _G1 < 10 always holds and can be folded away; \
             residual: quantity(_G0, _G1) ∧ _G1 < 5"
        );
        // Arithmetic over constants folds with a shown residual.
        let ar = cat
            .define_derived(
                "cnd_ar",
                vec![TypeId::OBJECT],
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .arith(Term::var(1), Term::val(2), ArithOp::Mul, Term::val(3))
                    .build()],
            )
            .unwrap();
        let analysis = analyze(&cat);
        let conds = vec![("ar".to_string(), ar)];
        let diags = check_const_fold(&config, &cat, &analysis, &conds, &|_| None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("folds to constant 6"),
            "{}",
            diags[0].message
        );
        // Negative: a single proper bound is not foldable.
        let tight = cat
            .define_derived(
                "cnd_tight2",
                vec![TypeId::OBJECT],
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Lt, Term::val(5))
                    .build()],
            )
            .unwrap();
        let analysis = analyze(&cat);
        let conds = vec![("tight2".to_string(), tight)];
        assert!(check_const_fold(&config, &cat, &analysis, &conds, &|_| None).is_empty());
    }

    #[test]
    fn real_typed_columns_are_not_interval_narrowed() {
        // 0 < x < 1 over a real column is satisfiable (x = 0.5): the
        // integer-evidence gate must keep the clause alive.
        let mut types = TypeRegistry::new();
        let item = types.create("item", None).unwrap();
        let mut cat = Catalog::new();
        let price = cat
            .define_stored("price", vec![item, TypeId::REAL], RelId(0), 1)
            .unwrap();
        let frac = cat
            .define_derived(
                "cnd_frac",
                vec![TypeId::OBJECT],
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(price, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Gt, Term::val(0))
                    .cmp(Term::var(1), CmpOp::Lt, Term::val(1))
                    .build()],
            )
            .unwrap();
        let analysis = analyze(&cat);
        assert!(!analysis.pred(frac).unwrap().empty);
        assert!(!analysis.clause_provably_empty(&cat, &cat.def(frac).clauses().unwrap()[0]));
    }
}
