//! # amos-lint
//!
//! Static analysis of rule conditions and the triggering graph. The
//! paper assumes rule conditions are *safe, stratifiable* ObjectLog and
//! that every generated partial differential is worth executing; this
//! crate checks those assumptions at `activate` time (and from the
//! `amosql lint` CLI) instead of letting them fail at run time.
//!
//! Passes, each with a stable diagnostic code:
//!
//! | code | pass |
//! |------|------|
//! | L001 | safety / range restriction (unbound head vars, vars only in negated literals or comparisons) |
//! | L002 | stratification (recursion through negation, mutual recursion over the whole catalog) |
//! | L003 | triggering-graph termination (action-writes → condition-influents cycles; self-disactivating rules) |
//! | L004 | dead differentials (Δ₋ on append-only relations, statically-false clause bodies) |
//! | L005 | unsatisfiable / subsumed conditions (constant folding, contradictory bounds, duplicate conditions) |
//! | L006 | type mismatch in clause bodies and comparisons (abstract type domain) |
//! | L007 | provably-empty differential (interval/constant fixpoint over the catalog) |
//! | L008 | cross-rule condition subsumption (one condition implies another) |
//! | L009 | constant-foldable subcondition (folded residual shown) |
//!
//! L001–L005 are syntactic, per-clause passes. L006–L009 sit on the
//! [`absint`] abstract-interpretation engine: a product domain of type,
//! constant, and integer-interval abstractions per predicate argument,
//! propagated to fixpoint across the whole catalog in Tarjan SCC order.
//!
//! The crate is a leaf over `amos-objectlog`/`amos-storage`: pure
//! analysis, no engine types. The engine supplies rule facts
//! ([`RuleFacts`]) and an append-only oracle; the network builder in
//! `amos-core` performs the actual L004/L007 pruning.

pub mod absint;

use std::collections::{HashMap, HashSet};
use std::fmt;

use amos_objectlog::catalog::{Catalog, PredId, PredKind};
use amos_objectlog::clause::{Clause, Literal, Term, Var};
use amos_storage::RelId;
use amos_types::{CmpOp, Value};

/// A source position (1-based), carried from the AMOSQL lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(line: usize, col: usize) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Diagnostic severity. `Allow` suppresses the finding entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Severity {
    /// Suppressed — the pass still runs but findings are dropped.
    Allow,
    /// Reported; does not block `activate`.
    #[default]
    Warn,
    /// Reported; `activate` refuses the rule.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Declarative registry of lint codes: one line per code declares the
/// variant, its one-line description, and its default severity, and the
/// macro derives every table that used to be maintained by hand —
/// `all()`, `parse()`, `describe()`, `index()`, `Display`, and the
/// [`LintConfig`] default-severity array. Adding a code is one line.
macro_rules! lint_codes {
    ($($(#[$meta:meta])* $code:ident => $title:literal, $default:ident;)+) => {
        /// Stable lint pass codes.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum LintCode {
            $($(#[$meta])* #[doc = $title] $code,)+
        }

        impl LintCode {
            /// Number of registered codes.
            pub const COUNT: usize = [$(LintCode::$code),+].len();

            /// All codes, in order.
            pub fn all() -> [LintCode; Self::COUNT] {
                [$(LintCode::$code),+]
            }

            /// Parse a code name like `"L001"` (case-insensitive).
            pub fn parse(s: &str) -> Option<LintCode> {
                $(if s.eq_ignore_ascii_case(stringify!($code)) {
                    return Some(LintCode::$code);
                })+
                None
            }

            /// One-line pass description.
            pub fn describe(self) -> &'static str {
                match self { $(LintCode::$code => $title,)+ }
            }

            /// Severity before any configuration overrides.
            pub fn default_severity(self) -> Severity {
                match self { $(LintCode::$code => Severity::$default,)+ }
            }

            fn index(self) -> usize {
                self as usize
            }
        }

        impl fmt::Display for LintCode {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(match self { $(LintCode::$code => stringify!($code),)+ })
            }
        }

        impl Default for LintConfig {
            fn default() -> Self {
                LintConfig {
                    levels: [$(Severity::$default),+],
                }
            }
        }
    };
}

lint_codes! {
    L001 => "safety / range restriction", Deny;
    L002 => "stratification", Deny;
    L003 => "triggering-graph termination", Warn;
    L004 => "dead differentials", Warn;
    L005 => "unsatisfiable or subsumed condition", Warn;
    L006 => "type mismatch", Deny;
    L007 => "provably-empty differential", Warn;
    L008 => "cross-rule condition subsumption", Warn;
    L009 => "constant-foldable subcondition", Warn;
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Pass code.
    pub code: LintCode,
    /// Effective severity under the configuration that produced it.
    pub severity: Severity,
    /// Source position of the offending statement, when known.
    pub span: Option<Span>,
    /// The rule (or function) the finding is about, when known.
    pub rule: Option<String>,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Render as `file:line:col: severity[code]: message`.
    pub fn render(&self, file: &str) -> String {
        let loc = match self.span {
            Some(s) => format!("{file}:{s}"),
            None => file.to_string(),
        };
        let subject = match &self.rule {
            Some(r) => format!(" [{r}]"),
            None => String::new(),
        };
        format!(
            "{loc}: {}[{}]: {}{subject}",
            self.severity, self.code, self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let subject = match &self.rule {
            Some(r) => format!(" [{r}]"),
            None => String::new(),
        };
        match self.span {
            Some(s) => write!(
                f,
                "{s}: {}[{}]: {}{subject}",
                self.severity, self.code, self.message
            ),
            None => write!(
                f,
                "{}[{}]: {}{subject}",
                self.severity, self.code, self.message
            ),
        }
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize diagnostics as a machine-readable JSON array (for
/// `amosql lint --format json` and the CI lint-gate artifact). Hand
/// rolled — the workspace carries no serialization dependency — and
/// stable: one object per finding with `file`, `code`, `severity`,
/// `line`/`col` (null when unknown), `rule` (null when unknown),
/// `message`, and the human `rendered` form.
pub fn diagnostics_to_json(file: &str, diags: &[Diagnostic]) -> String {
    diagnostics_report_json(&[(file.to_string(), diags.to_vec())])
}

/// Multi-file variant of [`diagnostics_to_json`]: one flat JSON array
/// over every `(file, findings)` pair, in input order.
pub fn diagnostics_report_json(entries: &[(String, Vec<Diagnostic>)]) -> String {
    let mut out = String::from("[");
    let mut i = 0usize;
    for (file, diags) in entries {
        for d in diags {
            if i > 0 {
                out.push(',');
            }
            i += 1;
            let (line, col) = match d.span {
                Some(s) => (s.line.to_string(), s.col.to_string()),
                None => ("null".to_string(), "null".to_string()),
            };
            let rule = match &d.rule {
                Some(r) => format!("\"{}\"", json_escape(r)),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "\n  {{\"file\": \"{}\", \"code\": \"{}\", \"severity\": \"{}\", \
                 \"line\": {line}, \"col\": {col}, \"rule\": {rule}, \
                 \"message\": \"{}\", \"rendered\": \"{}\"}}",
                json_escape(file),
                d.code,
                d.severity,
                json_escape(&d.message),
                json_escape(&d.render(file)),
            ));
        }
    }
    out.push_str("\n]\n");
    out
}

/// Per-code severity configuration.
///
/// Defaults come from the `lint_codes!` registry: passes whose findings
/// make a rule impossible to monitor correctly (L001/L002/L006) deny,
/// the rest warn (suspicious but executable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    levels: [Severity; LintCode::COUNT],
}

impl LintConfig {
    /// A configuration with every pass set to `severity`.
    pub fn uniform(severity: Severity) -> Self {
        LintConfig {
            levels: [severity; LintCode::COUNT],
        }
    }

    /// The severity of a code.
    pub fn level(&self, code: LintCode) -> Severity {
        self.levels[code.index()]
    }

    /// Override one code's severity.
    pub fn set_level(&mut self, code: LintCode, severity: Severity) -> &mut Self {
        self.levels[code.index()] = severity;
        self
    }

    /// Escalate every `Warn` to `Deny` (the CLI's `--deny-lints`).
    pub fn deny_warnings(&mut self) -> &mut Self {
        for l in &mut self.levels {
            if *l == Severity::Warn {
                *l = Severity::Deny;
            }
        }
        self
    }

    /// Build a diagnostic under this configuration; `None` if the code
    /// is set to `Allow`.
    pub fn diag(
        &self,
        code: LintCode,
        span: Option<Span>,
        rule: Option<&str>,
        message: String,
    ) -> Option<Diagnostic> {
        let severity = self.level(code);
        if severity == Severity::Allow {
            return None;
        }
        Some(Diagnostic {
            code,
            severity,
            span,
            rule: rule.map(str::to_string),
            message,
        })
    }
}

/// Whether any finding is deny-level.
pub fn has_deny(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Deny)
}

// ---------------------------------------------------------------------
// L001 — safety / range restriction
// ---------------------------------------------------------------------

/// Check range restriction of one clause, reporting **every** offending
/// variable (unlike [`Clause::unsafe_var`], which stops at the first).
/// `name_of` maps clause-local variables back to source names for the
/// message (fall back to the `_Gn` rendering).
pub fn check_safety(
    config: &LintConfig,
    clause: &Clause,
    name_of: &dyn Fn(Var) -> String,
    span: Option<Span>,
    rule: Option<&str>,
) -> Vec<Diagnostic> {
    let mut bindable: HashSet<Var> = HashSet::new();
    for lit in &clause.body {
        match lit {
            Literal::Pred { negated: false, .. } | Literal::Delta { .. } => {
                bindable.extend(lit.vars());
            }
            Literal::Arith { result, .. } => bindable.extend(result.as_var()),
            Literal::Unify { lhs, rhs } => {
                bindable.extend(lhs.as_var());
                bindable.extend(rhs.as_var());
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    let mut reported: HashSet<Var> = HashSet::new();
    let report = |out: &mut Vec<Diagnostic>, reported: &mut HashSet<Var>, v: Var, why: &str| {
        if reported.insert(v) {
            if let Some(d) = config.diag(
                LintCode::L001,
                span,
                rule,
                format!("unsafe variable {}: {why}", name_of(v)),
            ) {
                out.push(d);
            }
        }
    };
    for v in clause.head_vars() {
        if !bindable.contains(&v) {
            report(
                &mut out,
                &mut reported,
                v,
                "head variable is not bound by any positive literal",
            );
        }
    }
    for lit in &clause.body {
        match lit {
            Literal::Pred { negated: true, .. } => {
                for v in lit.vars() {
                    if !bindable.contains(&v) {
                        report(
                            &mut out,
                            &mut reported,
                            v,
                            "appears only in a negated literal",
                        );
                    }
                }
            }
            Literal::Cmp { lhs, rhs, .. } => {
                for v in [lhs, rhs].into_iter().filter_map(Term::as_var) {
                    if !bindable.contains(&v) {
                        report(&mut out, &mut reported, v, "appears only in a comparison");
                    }
                }
            }
            Literal::Arith { lhs, rhs, .. } => {
                for v in [lhs, rhs].into_iter().filter_map(Term::as_var) {
                    if !bindable.contains(&v) {
                        report(
                            &mut out,
                            &mut reported,
                            v,
                            "arithmetic operand is never bound",
                        );
                    }
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------
// L002 — stratification
// ---------------------------------------------------------------------

/// Full-catalog stratification check: Tarjan SCC over the derived-
/// predicate dependency graph with negation-labelled edges. A cycle
/// through a negated edge is non-stratifiable; a multi-predicate cycle
/// without negation is mutual recursion (unsupported by the §5 level
/// order); a positive self-loop is linear recursion and allowed.
///
/// `roots` restricts the check to predicates reachable from the given
/// set (used at `activate` to lint one rule's condition); `None` checks
/// the whole catalog.
pub fn check_stratification(
    config: &LintConfig,
    catalog: &Catalog,
    roots: Option<&[PredId]>,
    spans: &dyn Fn(PredId) -> Option<Span>,
) -> Vec<Diagnostic> {
    let in_scope: Option<HashSet<PredId>> = roots.map(|rs| {
        let mut seen = HashSet::new();
        let mut stack: Vec<PredId> = rs.to_vec();
        while let Some(p) = stack.pop() {
            if seen.insert(p) {
                stack.extend(catalog.direct_influents(p));
            }
        }
        seen
    });
    let mut nodes: Vec<PredId> = Vec::new();
    let mut edges: HashMap<PredId, Vec<(PredId, bool)>> = HashMap::new();
    for def in catalog.iter() {
        if let Some(scope) = &in_scope {
            if !scope.contains(&def.id) {
                continue;
            }
        }
        let PredKind::Derived(clauses) = &def.kind else {
            continue;
        };
        nodes.push(def.id);
        let outs = edges.entry(def.id).or_default();
        for c in clauses {
            for lit in &c.body {
                if let Literal::Pred { pred, negated, .. } = lit {
                    if matches!(catalog.def(*pred).kind, PredKind::Derived(_)) {
                        outs.push((*pred, *negated));
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for scc in tarjan_sccs(&nodes, &|p| {
        edges
            .get(&p)
            .map(|es| es.iter().map(|(q, _)| *q).collect())
            .unwrap_or_default()
    }) {
        let members: HashSet<PredId> = scc.iter().copied().collect();
        let self_loop = scc.len() == 1 && edges[&scc[0]].iter().any(|(q, _)| *q == scc[0]);
        if scc.len() == 1 && !self_loop {
            continue;
        }
        let negated_edge = scc.iter().find_map(|p| {
            edges[p]
                .iter()
                .find(|(q, neg)| *neg && members.contains(q))
                .map(|(q, _)| (*p, *q))
        });
        let cycle = scc
            .iter()
            .map(|p| catalog.name(*p))
            .collect::<Vec<_>>()
            .join(" → ");
        let anchor = scc.iter().find_map(|p| spans(*p));
        let rule = catalog.name(scc[0]).to_string();
        let diag = if let Some((p, q)) = negated_edge {
            config.diag(
                LintCode::L002,
                anchor,
                Some(&rule),
                format!(
                    "not stratifiable: {} depends negatively on {} inside the cycle {cycle}",
                    catalog.name(p),
                    catalog.name(q)
                ),
            )
        } else if scc.len() > 1 {
            config.diag(
                LintCode::L002,
                anchor,
                Some(&rule),
                format!("mutual recursion is unsupported: cycle {cycle}"),
            )
        } else {
            // positive self-loop — linear recursion, handled by the
            // per-node fixpoint.
            None
        };
        out.extend(diag);
    }
    out
}

/// Iterative Tarjan strongly-connected components.
fn tarjan_sccs(nodes: &[PredId], succs: &dyn Fn(PredId) -> Vec<PredId>) -> Vec<Vec<PredId>> {
    #[derive(Default)]
    struct State {
        index: HashMap<PredId, usize>,
        lowlink: HashMap<PredId, usize>,
        on_stack: HashSet<PredId>,
        stack: Vec<PredId>,
        next: usize,
        sccs: Vec<Vec<PredId>>,
    }
    let mut st = State::default();
    for &root in nodes {
        if st.index.contains_key(&root) {
            continue;
        }
        // Explicit DFS frames: (node, successor list, next successor).
        let mut frames: Vec<(PredId, Vec<PredId>, usize)> = Vec::new();
        st.index.insert(root, st.next);
        st.lowlink.insert(root, st.next);
        st.next += 1;
        st.stack.push(root);
        st.on_stack.insert(root);
        frames.push((root, succs(root), 0));
        while let Some(frame) = frames.last_mut() {
            let (v, ss, i) = (frame.0, frame.1.clone(), frame.2);
            if i < ss.len() {
                frame.2 += 1;
                let w = ss[i];
                if !st.index.contains_key(&w) {
                    st.index.insert(w, st.next);
                    st.lowlink.insert(w, st.next);
                    st.next += 1;
                    st.stack.push(w);
                    st.on_stack.insert(w);
                    frames.push((w, succs(w), 0));
                } else if st.on_stack.contains(&w) {
                    let wl = st.index[&w];
                    let vl = st.lowlink.get_mut(&v).unwrap();
                    *vl = (*vl).min(wl);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    let vl = st.lowlink[&v];
                    let pl = st.lowlink.get_mut(&parent.0).unwrap();
                    *pl = (*pl).min(vl);
                }
                if st.lowlink[&v] == st.index[&v] {
                    let mut scc = Vec::new();
                    while let Some(w) = st.stack.pop() {
                        st.on_stack.remove(&w);
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.reverse();
                    st.sccs.push(scc);
                }
            }
        }
    }
    st.sccs
}

// ---------------------------------------------------------------------
// L003 — triggering-graph termination
// ---------------------------------------------------------------------

/// One write a rule action can perform on a stored predicate.
/// `set f(k) = v` both deletes and inserts; `add` only inserts;
/// `remove` only deletes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleWrite {
    /// The stored predicate written.
    pub pred: PredId,
    /// Whether the write can insert tuples.
    pub inserts: bool,
    /// Whether the write can delete tuples.
    pub deletes: bool,
}

/// Facts about one activated (or defined) rule, supplied by the engine.
#[derive(Debug, Clone)]
pub struct RuleFacts {
    /// Rule name.
    pub name: String,
    /// Source position of the `create rule`, when known.
    pub span: Option<Span>,
    /// Transitive stored influents of the rule's condition.
    pub influents: Vec<PredId>,
    /// Stored predicates the rule's action writes.
    pub writes: Vec<RuleWrite>,
}

/// Triggering-graph analysis (§2 of Flesca & Greco's termination work):
/// edge `r → s` when `r`'s action writes a stored influent of `s`'s
/// condition; the edge is *growing* when the write can insert. A cycle
/// with a growing edge can re-trigger forever — Strict semantics only
/// cancels net-zero changes, it cannot bound a monotonically growing
/// relation — so it is reported. Delete-only cycles are bounded by the
/// relation size and exempt. A rule that deletes from its own influents
/// is separately flagged as self-disactivating.
pub fn check_triggering(
    config: &LintConfig,
    catalog: &Catalog,
    rules: &[RuleFacts],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Self-disactivation: the action can remove the very tuples that
    // made the condition true, mid-check-phase.
    for r in rules {
        for w in &r.writes {
            if w.deletes && r.influents.contains(&w.pred) {
                out.extend(config.diag(
                    LintCode::L003,
                    r.span,
                    Some(&r.name),
                    format!(
                        "self-disactivating: action deletes from own influent {}",
                        catalog.name(w.pred)
                    ),
                ));
            }
        }
    }
    // Cycle detection over the rule graph (indices as pseudo-PredIds).
    let nodes: Vec<PredId> = (0..rules.len()).map(|i| PredId(i as u32)).collect();
    let mut edges: Vec<Vec<(usize, bool)>> = vec![Vec::new(); rules.len()];
    for (i, r) in rules.iter().enumerate() {
        for (j, s) in rules.iter().enumerate() {
            let growing = r
                .writes
                .iter()
                .any(|w| w.inserts && s.influents.contains(&w.pred));
            let any = growing
                || r.writes
                    .iter()
                    .any(|w| w.deletes && s.influents.contains(&w.pred));
            if any {
                edges[i].push((j, growing));
            }
        }
    }
    for scc in tarjan_sccs(&nodes, &|p| {
        edges[p.0 as usize]
            .iter()
            .map(|(j, _)| PredId(*j as u32))
            .collect()
    }) {
        let members: HashSet<usize> = scc.iter().map(|p| p.0 as usize).collect();
        let self_loop = scc.len() == 1
            && edges[scc[0].0 as usize]
                .iter()
                .any(|(j, _)| *j == scc[0].0 as usize);
        if scc.len() == 1 && !self_loop {
            continue;
        }
        let growing = scc.iter().any(|p| {
            edges[p.0 as usize]
                .iter()
                .any(|(j, g)| *g && members.contains(j))
        });
        if !growing {
            continue; // delete-only cycle: bounded, terminates.
        }
        let cycle = scc
            .iter()
            .map(|p| rules[p.0 as usize].name.as_str())
            .collect::<Vec<_>>()
            .join(" → ");
        let first = &rules[scc[0].0 as usize];
        out.extend(config.diag(
            LintCode::L003,
            first.span,
            Some(&first.name),
            format!(
                "triggering cycle {cycle} contains growing writes; \
                 Strict semantics cannot guarantee termination"
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------
// L004 — dead differentials
// ---------------------------------------------------------------------

/// Report differentials that are provably dead before they are ever
/// generated: `Δ₋X` when `X` is backed by an append-only relation (its
/// Δ-set's minus side is always empty), and any differential of a
/// statically-false clause. The network builder in `amos-core` applies
/// the matching pruning; this pass explains *why* in diagnostics.
pub fn check_dead_differentials(
    config: &LintConfig,
    catalog: &Catalog,
    conditions: &[(String, PredId)],
    is_append_only: &dyn Fn(RelId) -> bool,
    spans: &dyn Fn(&str) -> Option<Span>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (rule, cond) in conditions {
        let span = spans(rule);
        // Walk every derived predicate reachable from the condition.
        let mut seen = HashSet::new();
        let mut stack = vec![*cond];
        while let Some(p) = stack.pop() {
            if !seen.insert(p) {
                continue;
            }
            let Some(clauses) = catalog.def(p).clauses() else {
                continue;
            };
            for (ci, c) in clauses.iter().enumerate() {
                if clause_statically_false(c) {
                    out.extend(config.diag(
                        LintCode::L004,
                        span,
                        Some(rule),
                        format!(
                            "clause {ci} of {} is statically false; its differentials are dead",
                            catalog.name(p)
                        ),
                    ));
                }
                let mut flagged: HashSet<PredId> = HashSet::new();
                for lit in &c.body {
                    let Literal::Pred { pred, .. } = lit else {
                        continue;
                    };
                    stack.push(*pred);
                    if let PredKind::Stored { rel, .. } = catalog.def(*pred).kind {
                        if is_append_only(rel) && flagged.insert(*pred) {
                            out.extend(config.diag(
                                LintCode::L004,
                                span,
                                Some(rule),
                                format!(
                                    "Δ{}/Δ₋{} is dead: {} is append-only, so its \
                                     deletion Δ-set is always empty (differential pruned)",
                                    catalog.name(p),
                                    catalog.name(*pred),
                                    catalog.name(*pred)
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Whether a clause body contains a built-in that can never succeed
/// (constant comparison folding to false, unification of unequal
/// constants).
pub fn clause_statically_false(c: &Clause) -> bool {
    c.body.iter().any(|lit| match lit {
        Literal::Cmp { op, lhs, rhs } => match (lhs, rhs) {
            (Term::Const(a), Term::Const(b)) => !op.apply(a, b).unwrap_or(true),
            _ => false,
        },
        Literal::Unify {
            lhs: Term::Const(a),
            rhs: Term::Const(b),
        } => a != b,
        _ => false,
    })
}

// ---------------------------------------------------------------------
// L005 — unsatisfiable / subsumed conditions
// ---------------------------------------------------------------------

/// Condition-satisfiability analysis for the given rule conditions.
///
/// Per clause: constant-fold comparisons (always-false ⇒ unsatisfiable,
/// always-true ⇒ redundant), then unify the result variables of
/// syntactically identical positive calls (`quantity(i) < 3 and
/// quantity(i) > 9` compiles to two literals with distinct result vars)
/// and run interval analysis over integer bounds to detect
/// contradictions. Across rules: flag duplicate conditions.
pub fn check_conditions(
    config: &LintConfig,
    catalog: &Catalog,
    rules: &[(String, PredId)],
    spans: &dyn Fn(&str) -> Option<Span>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut fingerprints: Vec<(String, String)> = Vec::new();
    for (rule, cond) in rules {
        let span = spans(rule);
        let Some(clauses) = catalog.def(*cond).clauses() else {
            continue;
        };
        for (ci, c) in clauses.iter().enumerate() {
            for lit in &c.body {
                let Literal::Cmp { op, lhs, rhs } = lit else {
                    continue;
                };
                if let (Term::Const(a), Term::Const(b)) = (lhs, rhs) {
                    match op.apply(a, b) {
                        Ok(false) => out.extend(config.diag(
                            LintCode::L005,
                            span,
                            Some(rule),
                            format!(
                                "clause {ci}: comparison {a} {op} {b} is always false — \
                                 the condition can never be satisfied"
                            ),
                        )),
                        Ok(true) => out.extend(config.diag(
                            LintCode::L005,
                            span,
                            Some(rule),
                            format!(
                                "clause {ci}: comparison {a} {op} {b} is always true (redundant)"
                            ),
                        )),
                        Err(_) => {}
                    }
                }
            }
            if let Some((name, lo, hi)) = contradictory_bounds(c) {
                out.extend(config.diag(
                    LintCode::L005,
                    span,
                    Some(rule),
                    format!(
                        "clause {ci}: contradictory bounds on {name} \
                         (requires ≥ {lo} and ≤ {hi}) — never satisfiable"
                    ),
                ));
            }
        }
        // Duplicate detection: normalized structural fingerprint of the
        // whole condition. Clauses compiled by the same path number
        // variables deterministically, so Debug equality is sound.
        let fp = format!("{clauses:?}");
        if let Some((prev, _)) = fingerprints.iter().find(|(_, f)| *f == fp) {
            out.extend(config.diag(
                LintCode::L005,
                span,
                Some(rule),
                format!("condition duplicates rule {prev}"),
            ));
        } else {
            fingerprints.push((rule.clone(), fp));
        }
    }
    out
}

/// Find a variable whose integer bounds are contradictory, after
/// unifying result variables of syntactically identical positive calls.
/// Returns `(rendered var, lower, upper)` with `lower > upper`.
fn contradictory_bounds(c: &Clause) -> Option<(String, i64, i64)> {
    // Union-find over clause variables.
    let n = c.n_vars as usize;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    };
    // Identical positive calls bind equal results: key on the predicate
    // plus every argument except the last (the function-result column).
    let mut groups: HashMap<String, usize> = HashMap::new();
    for lit in &c.body {
        match lit {
            Literal::Pred {
                pred,
                args,
                negated: false,
                ..
            } if args.len() >= 2 => {
                if let Some(res) = args.last().and_then(Term::as_var) {
                    let key = format!("{pred:?}{:?}", &args[..args.len() - 1]);
                    match groups.get(&key) {
                        Some(&prev) => union(&mut parent, prev, res.0 as usize),
                        None => {
                            groups.insert(key, res.0 as usize);
                        }
                    }
                }
            }
            Literal::Unify {
                lhs: Term::Var(a),
                rhs: Term::Var(b),
            } => union(&mut parent, a.0 as usize, b.0 as usize),
            _ => {}
        }
    }
    // Interval per equivalence class.
    let mut lo: HashMap<usize, i64> = HashMap::new();
    let mut hi: HashMap<usize, i64> = HashMap::new();
    let mut names: HashMap<usize, Var> = HashMap::new();
    let constrain = |parent: &mut Vec<usize>,
                     lo: &mut HashMap<usize, i64>,
                     hi: &mut HashMap<usize, i64>,
                     names: &mut HashMap<usize, Var>,
                     v: Var,
                     op: CmpOp,
                     k: i64| {
        let root = find(parent, v.0 as usize);
        names.entry(root).or_insert(v);
        let (l, h) = (
            lo.entry(root).or_insert(i64::MIN),
            hi.entry(root).or_insert(i64::MAX),
        );
        match op {
            CmpOp::Eq => {
                *l = (*l).max(k);
                *h = (*h).min(k);
            }
            CmpOp::Lt => *h = (*h).min(k.saturating_sub(1)),
            CmpOp::Le => *h = (*h).min(k),
            CmpOp::Gt => *l = (*l).max(k.saturating_add(1)),
            CmpOp::Ge => *l = (*l).max(k),
            CmpOp::Ne => {}
        }
    };
    for lit in &c.body {
        let Literal::Cmp { op, lhs, rhs } = lit else {
            continue;
        };
        match (lhs, rhs) {
            (Term::Var(v), Term::Const(Value::Int(k))) => {
                constrain(&mut parent, &mut lo, &mut hi, &mut names, *v, *op, *k)
            }
            (Term::Const(Value::Int(k)), Term::Var(v)) => constrain(
                &mut parent,
                &mut lo,
                &mut hi,
                &mut names,
                *v,
                op.flipped(),
                *k,
            ),
            _ => {}
        }
    }
    // Also fold `v = const` unifications into the interval.
    for lit in &c.body {
        if let Literal::Unify { lhs, rhs } = lit {
            let pair = match (lhs, rhs) {
                (Term::Var(v), Term::Const(Value::Int(k)))
                | (Term::Const(Value::Int(k)), Term::Var(v)) => Some((*v, *k)),
                _ => None,
            };
            if let Some((v, k)) = pair {
                constrain(&mut parent, &mut lo, &mut hi, &mut names, v, CmpOp::Eq, k);
            }
        }
    }
    for (root, l) in &lo {
        let h = hi.get(root).copied().unwrap_or(i64::MAX);
        if *l > h {
            return Some((names[root].to_string(), *l, h));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_objectlog::clause::ClauseBuilder;
    use amos_types::TypeId;

    fn cat() -> Catalog {
        Catalog::new()
    }

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    fn g(v: Var) -> String {
        v.to_string()
    }

    #[test]
    fn l001_reports_every_unsafe_var() {
        let config = LintConfig::default();
        let c = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(1)])
            .pred(PredId(0), [Term::var(0)])
            .cmp(Term::var(2), CmpOp::Lt, Term::val(3))
            .build();
        let diags = check_safety(&config, &c, &g, Some(Span::new(4, 1)), Some("r"));
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == LintCode::L001));
        assert!(diags.iter().all(|d| d.severity == Severity::Deny));
        assert!(diags[0].message.contains("_G1"));
        assert!(diags[1].message.contains("_G2"));
        assert_eq!(diags[0].span, Some(Span::new(4, 1)));
    }

    #[test]
    fn l001_safe_clause_is_clean() {
        let config = LintConfig::default();
        let c = ClauseBuilder::new(2)
            .head([Term::var(0)])
            .pred(PredId(0), [Term::var(0), Term::var(1)])
            .cmp(Term::var(1), CmpOp::Lt, Term::val(3))
            .build();
        assert!(check_safety(&config, &c, &g, None, None).is_empty());
    }

    #[test]
    fn l002_detects_mutual_recursion_through_negation() {
        let config = LintConfig::default();
        let mut cat = cat();
        let a = cat.define_derived("a", sig(1), Vec::new()).unwrap();
        let b = cat.define_derived("b", sig(1), Vec::new()).unwrap();
        let base = cat.define_stored("base", sig(1), RelId(0), 1).unwrap();
        // a(X) ← base(X) ∧ ¬b(X);  b(X) ← a(X).
        cat.replace_clauses(
            a,
            vec![ClauseBuilder::new(1)
                .head([Term::var(0)])
                .pred(base, [Term::var(0)])
                .not_pred(b, [Term::var(0)])
                .build()],
        )
        .unwrap();
        cat.replace_clauses(
            b,
            vec![ClauseBuilder::new(1)
                .head([Term::var(0)])
                .pred(a, [Term::var(0)])
                .build()],
        )
        .unwrap();
        let diags = check_stratification(&config, &cat, None, &|_| None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::L002);
        assert!(
            diags[0].message.contains("not stratifiable"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn l002_allows_linear_self_recursion_and_scoping() {
        let config = LintConfig::default();
        let mut cat = cat();
        let base = cat.define_stored("base", sig(2), RelId(0), 1).unwrap();
        let tc = cat.define_derived("tc", sig(2), Vec::new()).unwrap();
        cat.replace_clauses(
            tc,
            vec![
                ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(base, [Term::var(0), Term::var(1)])
                    .build(),
                ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(1)])
                    .pred(base, [Term::var(0), Term::var(2)])
                    .pred(tc, [Term::var(2), Term::var(1)])
                    .build(),
            ],
        )
        .unwrap();
        assert!(check_stratification(&config, &cat, None, &|_| None).is_empty());
        // Mutual positive recursion elsewhere is flagged…
        let x = cat.define_derived("x", sig(1), Vec::new()).unwrap();
        let y = cat.define_derived("y", sig(1), Vec::new()).unwrap();
        cat.replace_clauses(
            x,
            vec![ClauseBuilder::new(1)
                .head([Term::var(0)])
                .pred(y, [Term::var(0)])
                .build()],
        )
        .unwrap();
        cat.replace_clauses(
            y,
            vec![ClauseBuilder::new(1)
                .head([Term::var(0)])
                .pred(x, [Term::var(0)])
                .build()],
        )
        .unwrap();
        let diags = check_stratification(&config, &cat, None, &|_| None);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("mutual recursion"));
        // …but a scope rooted at `tc` does not reach it.
        assert!(check_stratification(&config, &cat, Some(&[tc]), &|_| None).is_empty());
    }

    #[test]
    fn l003_growing_cycle_and_self_disactivation() {
        let config = LintConfig::default();
        let mut cat = cat();
        let q = cat.define_stored("quantity", sig(2), RelId(0), 1).unwrap();
        let p = cat.define_stored("price", sig(2), RelId(1), 1).unwrap();
        let rules = vec![
            RuleFacts {
                name: "r_a".into(),
                span: Some(Span::new(1, 1)),
                influents: vec![q],
                writes: vec![RuleWrite {
                    pred: p,
                    inserts: true,
                    deletes: true,
                }],
            },
            RuleFacts {
                name: "r_b".into(),
                span: Some(Span::new(2, 1)),
                influents: vec![p],
                writes: vec![RuleWrite {
                    pred: q,
                    inserts: true,
                    deletes: true,
                }],
            },
        ];
        let diags = check_triggering(&config, &cat, &rules);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("triggering cycle"));
        // Self-disactivating rule: deletes from its own influent.
        let rules = vec![RuleFacts {
            name: "self".into(),
            span: None,
            influents: vec![q],
            writes: vec![RuleWrite {
                pred: q,
                inserts: false,
                deletes: true,
            }],
        }];
        let diags = check_triggering(&config, &cat, &rules);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("self-disactivating"));
        // Independent rules: no findings.
        let rules = vec![RuleFacts {
            name: "indep".into(),
            span: None,
            influents: vec![q],
            writes: vec![RuleWrite {
                pred: p,
                inserts: true,
                deletes: false,
            }],
        }];
        assert!(check_triggering(&config, &cat, &rules).is_empty());
    }

    #[test]
    fn l004_append_only_minus_is_dead() {
        let config = LintConfig::default();
        let mut cat = cat();
        let ev = cat.define_stored("events", sig(2), RelId(0), 1).unwrap();
        let cnd = cat
            .define_derived(
                "cnd_r",
                sig(1),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(ev, [Term::var(0), Term::var(1)])
                    .cmp(Term::var(1), CmpOp::Gt, Term::val(10))
                    .build()],
            )
            .unwrap();
        let conds = vec![("r".to_string(), cnd)];
        let diags = check_dead_differentials(&config, &cat, &conds, &|r| r == RelId(0), &|_| None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::L004);
        assert!(diags[0].message.contains("append-only"));
        // Not append-only → clean.
        assert!(check_dead_differentials(&config, &cat, &conds, &|_| false, &|_| None).is_empty());
    }

    #[test]
    fn l005_contradiction_constant_fold_and_duplicates() {
        let config = LintConfig::default();
        let mut cat = cat();
        let q = cat.define_stored("quantity", sig(2), RelId(0), 1).unwrap();
        // quantity(I, G1) ∧ G1 < 3 ∧ quantity(I, G2) ∧ G2 > 9
        let contradictory = ClauseBuilder::new(3)
            .head([Term::var(0)])
            .pred(q, [Term::var(0), Term::var(1)])
            .cmp(Term::var(1), CmpOp::Lt, Term::val(3))
            .pred(q, [Term::var(0), Term::var(2)])
            .cmp(Term::var(2), CmpOp::Gt, Term::val(9))
            .build();
        let c1 = cat
            .define_derived("cnd_c", sig(1), vec![contradictory])
            .unwrap();
        // constant-false comparison
        let false_cmp = ClauseBuilder::new(2)
            .head([Term::var(0)])
            .pred(q, [Term::var(0), Term::var(1)])
            .cmp(Term::val(1), CmpOp::Gt, Term::val(2))
            .build();
        let c2 = cat
            .define_derived("cnd_f", sig(1), vec![false_cmp])
            .unwrap();
        assert!(clause_statically_false(&cat.def(c2).clauses().unwrap()[0]));
        // duplicates
        let mk = || {
            ClauseBuilder::new(2)
                .head([Term::var(0)])
                .pred(q, [Term::var(0), Term::var(1)])
                .cmp(Term::var(1), CmpOp::Lt, Term::val(5))
                .build()
        };
        let d1 = cat.define_derived("cnd_d1", sig(1), vec![mk()]).unwrap();
        let d2 = cat.define_derived("cnd_d2", sig(1), vec![mk()]).unwrap();
        let rules = vec![
            ("c".to_string(), c1),
            ("f".to_string(), c2),
            ("d1".to_string(), d1),
            ("d2".to_string(), d2),
        ];
        let diags = check_conditions(&config, &cat, &rules, &|_| None);
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("contradictory bounds")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("always false")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("duplicates rule d1")),
            "{msgs:?}"
        );
        assert_eq!(diags.len(), 3);
    }

    #[test]
    fn config_levels_and_escalation() {
        let mut config = LintConfig::default();
        assert_eq!(config.level(LintCode::L001), Severity::Deny);
        assert_eq!(config.level(LintCode::L004), Severity::Warn);
        config.set_level(LintCode::L001, Severity::Allow);
        assert!(config
            .diag(LintCode::L001, None, None, "x".into())
            .is_none());
        config.deny_warnings();
        assert_eq!(config.level(LintCode::L004), Severity::Deny);
        // Allow stays allow under deny_warnings.
        assert_eq!(config.level(LintCode::L001), Severity::Allow);
        assert_eq!(LintCode::parse("l003"), Some(LintCode::L003));
        let d = Diagnostic {
            code: LintCode::L002,
            severity: Severity::Deny,
            span: Some(Span::new(3, 7)),
            rule: Some("r".into()),
            message: "cycle".into(),
        };
        assert_eq!(d.render("bad.osql"), "bad.osql:3:7: deny[L002]: cycle [r]");
        assert!(has_deny(&[d]));
    }

    #[test]
    fn json_output_is_stable_and_escaped() {
        let diags = vec![
            Diagnostic {
                code: LintCode::L002,
                severity: Severity::Deny,
                span: Some(Span::new(3, 7)),
                rule: Some("r".into()),
                message: "cycle".into(),
            },
            Diagnostic {
                code: LintCode::L006,
                severity: Severity::Deny,
                span: None,
                rule: None,
                message: "constant \"oops\"\nhas wrong type".into(),
            },
        ];
        let json = diagnostics_to_json("bad.osql", &diags);
        assert_eq!(
            json,
            "[\n  {\"file\": \"bad.osql\", \"code\": \"L002\", \"severity\": \"deny\", \
             \"line\": 3, \"col\": 7, \"rule\": \"r\", \"message\": \"cycle\", \
             \"rendered\": \"bad.osql:3:7: deny[L002]: cycle [r]\"},\n  \
             {\"file\": \"bad.osql\", \"code\": \"L006\", \"severity\": \"deny\", \
             \"line\": null, \"col\": null, \"rule\": null, \
             \"message\": \"constant \\\"oops\\\"\\nhas wrong type\", \
             \"rendered\": \"bad.osql: deny[L006]: constant \\\"oops\\\"\\nhas wrong type\"}\n]\n"
        );
        assert_eq!(diagnostics_to_json("a.osql", &[]), "[\n]\n");
    }
}
